"""Operational analytics: a row store with an updatable columnstore index.

The paper's motivating scenario for updatable column stores: run analytic
queries directly on operational data, without a separate warehouse. The
``USING both`` storage keeps a row-store heap (with a B+tree index for
point lookups) AND a columnstore index over the same rows — OLTP-style
point reads and updates go to the row side, analytics run in batch mode
over the column side, and DML keeps the two consistent.

Run with:  python examples/operational_analytics.py
"""

import random
import time

from repro import Database, StoreConfig


def main() -> None:
    random.seed(11)
    db = Database(StoreConfig(rowgroup_size=8192, bulk_load_threshold=1000,
                              delta_close_rows=8192))
    db.sql(
        "CREATE TABLE orders ("
        "  order_id INT NOT NULL,"
        "  customer VARCHAR NOT NULL,"
        "  status VARCHAR NOT NULL,"
        "  amount DECIMAL(10,2),"
        "  placed DATE) USING both"
    )
    # Point-lookup index on the row-store side.
    db.table("orders").create_index("by_order_id", ["order_id"])

    print("Loading 30,000 historical orders ...")
    statuses = ["open", "shipped", "billed"]
    db.bulk_load(
        "orders",
        [
            (
                i,
                f"cust{i % 300}",
                statuses[i % 3],
                round(random.uniform(5, 500), 2),
                f"2024-{i % 12 + 1:02d}-{i % 28 + 1:02d}",
            )
            for i in range(30_000)
        ],
    )

    print("\n-- OLTP side: point lookup through the B+tree index")
    index = db.table("orders").indexes["by_order_id"]
    start = time.perf_counter()
    rid = next(iter(index.seek_equal((12_345,))))
    row = db.table("orders").rowstore.get(rid)
    lookup_ms = (time.perf_counter() - start) * 1000
    print(f"   order 12345 -> {row[:3]}...  ({lookup_ms:.2f} ms, no table scan)")

    print("\n-- OLTP side: a burst of order updates (delete+insert per row)")
    updated = db.sql("UPDATE orders SET status = 'shipped' WHERE status = 'open' "
                     "AND amount > 450").scalar()
    print(f"   expedited {updated} large open orders")

    print("\n-- OLAP side: batch-mode analytics over the SAME table")
    queries = {
        "revenue by status": (
            "SELECT status, COUNT(*) AS n, SUM(amount) AS revenue "
            "FROM orders GROUP BY status ORDER BY revenue DESC"
        ),
        "top customers": (
            "SELECT customer, SUM(amount) AS spend FROM orders "
            "GROUP BY customer ORDER BY spend DESC LIMIT 3"
        ),
        "monthly open exposure": (
            "SELECT month(placed) AS m, SUM(amount) AS exposure FROM orders "
            "WHERE status = 'open' GROUP BY m ORDER BY m LIMIT 4"
        ),
    }
    for label, sql in queries.items():
        start = time.perf_counter()
        result = db.sql(sql, mode="batch")
        elapsed = (time.perf_counter() - start) * 1000
        print(f"   {label} ({elapsed:.1f} ms batch mode):")
        for row in result.rows[:3]:
            print(f"      {row}")

    print("\n-- Consistency: both storages agree after the mixed workload")
    table = db.table("orders")
    batch_count = db.sql("SELECT COUNT(*) AS n FROM orders", mode="batch").scalar()
    row_count = db.sql("SELECT COUNT(*) AS n FROM orders", mode="row").scalar()
    print(f"   columnstore rows: {batch_count:,}   rowstore rows: {row_count:,}")
    assert batch_count == row_count == table.rowstore.row_count

    # The update burst left rows in delta stores and marks in the delete
    # bitmap; a tuple-mover pass compacts the analytic copy again.
    db.run_tuple_mover("orders", include_open=True)
    report = table.size_report()
    print(
        f"\n-- Footprint after tuple mover: rowstore "
        f"{report['rowstore_used_bytes'] / 1024:,.0f} KiB, columnstore index "
        f"{report['columnstore_bytes'] / 1024:,.0f} KiB "
        f"({report['columnstore_bytes'] / report['rowstore_used_bytes']:.0%} "
        "of the operational data)"
    )


if __name__ == "__main__":
    main()
