"""Updatable columnstore lifecycle: delta stores, tuple mover, REBUILD,
archival compression.

Walks the full life of a columnstore index under a mixed workload: a bulk
history load, a stream of trickle inserts landing in delta stores, a
tuple-mover pass compressing them, deletes accumulating in the delete
bitmap, a REBUILD reclaiming the space, and finally switching the cold
index to archival compression.

Run with:  python examples/updatable_columnstore.py
"""

import datetime

from repro import Database, StoreConfig


def describe(db: Database, label: str) -> None:
    index = db.table("events").columnstore
    print(
        f"  [{label}] live={index.live_rows:,}  compressed={index.compressed_rows:,}  "
        f"delta={index.delta_rows:,}  deleted-marks={index.delete_bitmap.total_deleted:,}  "
        f"row-groups={len(index.directory)}  size={index.size_bytes / 1024:,.0f} KiB"
    )


def main() -> None:
    # Small row groups so the lifecycle is visible at example scale.
    db = Database(StoreConfig(rowgroup_size=4096, bulk_load_threshold=2000,
                              delta_close_rows=4096))
    db.sql(
        "CREATE TABLE events ("
        "  event_id INT NOT NULL,"
        "  device VARCHAR NOT NULL,"
        "  level VARCHAR,"
        "  happened DATE,"
        "  value FLOAT)"
    )

    print("1. Bulk-load 20,000 historical events (direct-compress path):")
    base = datetime.date(2024, 1, 1)
    history = [
        (
            i,
            f"device-{i % 40}",
            ["info", "warn", "error"][i % 3],
            base + datetime.timedelta(days=i % 120),
            float(i % 1000) / 10,
        )
        for i in range(20_000)
    ]
    db.bulk_load("events", history)
    describe(db, "after bulk load")

    print("\n2. Trickle-insert 6,000 live events (they land in delta stores):")
    live = [
        (100_000 + i, f"device-{i % 40}", "info",
         base + datetime.timedelta(days=120), float(i))
        for i in range(6_000)
    ]
    db.insert("events", live)
    describe(db, "after trickle inserts")
    index = db.table("events").columnstore
    print(f"  fraction of rows in delta stores: {index.fraction_in_delta:.1%}")

    print("\n3. Run the tuple mover (compresses closed delta stores):")
    report = db.run_tuple_mover("events", include_open=True)
    print(
        f"  moved {report.rows_moved:,} rows from "
        f"{report.delta_stores_compressed} delta stores into "
        f"{report.row_groups_created} new row groups"
    )
    describe(db, "after tuple mover")

    print("\n4. Delete old 'error' events (marks the delete bitmap):")
    deleted = db.sql("DELETE FROM events WHERE level = 'error'").scalar()
    print(f"  deleted {deleted:,} rows (still physically present)")
    describe(db, "after delete")

    print("\n5. REBUILD physically removes deleted rows:")
    db.rebuild("events")
    describe(db, "after rebuild")

    print("\n6. Archive the now-cold index (extra LZ77 compression):")
    before = db.table("events").columnstore.size_bytes
    db.set_archival("events", True)
    after = db.table("events").columnstore.size_bytes
    print(f"  {before / 1024:,.0f} KiB -> {after / 1024:,.0f} KiB "
          f"({before / after:.2f}x extra)")
    describe(db, "archived")

    print("\n7. Queries keep working throughout:")
    result = db.sql(
        "SELECT level, COUNT(*) AS n, AVG(value) AS mean "
        "FROM events GROUP BY level ORDER BY level"
    )
    for row in result:
        print("  ", row)


if __name__ == "__main__":
    main()
