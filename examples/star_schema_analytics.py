"""Star-schema analytics: the paper's headline scenario.

Loads a 100k-row star schema twice — once as clustered columnstore, once
as a row-store heap — and runs representative warehouse queries on both,
showing the batch-over-columnstore speedups and what the optimizer does
(segment elimination, bitmap pushdown).

Run with:  python examples/star_schema_analytics.py
"""

import time

from repro.bench.queries import query_by_id
from repro.bench.star_schema import build_star_schema
from repro.storage.config import StoreConfig

FACT_ROWS = 100_000
SHOWCASE = ["Q02", "Q06", "Q07", "Q13", "Q17", "Q21"]


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000


def main() -> None:
    print(f"Building star schema with {FACT_ROWS:,} fact rows ...")
    config = StoreConfig(rowgroup_size=16_384, bulk_load_threshold=1000)
    columnstore = build_star_schema(FACT_ROWS, storage="columnstore", config=config)
    rowstore = build_star_schema(FACT_ROWS, storage="rowstore")

    fact = columnstore.db.table("store_sales")
    report = fact.size_report()
    print(
        f"columnstore size: {report['columnstore_bytes'] / 1024:,.0f} KiB "
        f"(raw {report['columnstore_raw_bytes'] / 1024:,.0f} KiB, "
        f"{report['columnstore_raw_bytes'] / report['columnstore_bytes']:.1f}x compression)"
    )

    print(f"\n{'query':<6} {'description':<44} {'batch':>9} {'row':>9} {'speedup':>8}")
    print("-" * 80)
    for qid in SHOWCASE:
        query = query_by_id(qid)
        # Warm once, then time.
        columnstore.db.sql(query.sql, mode="batch")
        batch_result, batch_ms = timed(lambda: columnstore.db.sql(query.sql, mode="batch"))
        row_result, row_ms = timed(lambda: rowstore.db.sql(query.sql, mode="row"))
        assert len(batch_result.rows) == len(row_result.rows)
        print(
            f"{qid:<6} {query.description[:44]:<44} {batch_ms:>7.1f}ms "
            f"{row_ms:>7.1f}ms {row_ms / batch_ms:>7.1f}x"
        )

    print("\nWhat the batch plan looks like for the star join (Q06):")
    print(columnstore.db.explain(query_by_id("Q06").sql))

    print("\nSegment elimination in action (narrow date range):")
    from repro.exec.expressions import Between, col, lit
    from repro.exec.operators.scan import ColumnStoreScan

    scan = ColumnStoreScan(
        fact.columnstore,
        ["ss_net_paid"],
        predicate=Between(col("ss_date_id"), lit(100), lit(110)),
    )
    rows = sum(batch.active_count for batch in scan.batches())
    print(
        f"  scanned {scan.stats.units_seen - scan.stats.units_eliminated} of "
        f"{scan.stats.units_seen} row groups "
        f"({scan.stats.units_eliminated} eliminated by metadata), "
        f"{rows:,} qualifying rows"
    )


if __name__ == "__main__":
    main()
