"""Compression explorer: how column segments encode different data.

Loads the six synthetic dataset regimes and prints, per column segment,
which encoding the compressor chose (dictionary / value / raw; RLE vs
bit-pack) and what it achieved — the machinery behind the paper's
compression results.

Run with:  python examples/compression_explorer.py
"""

from repro.bench.datagen import DATASET_SPECS, make_dataset
from repro.storage.columnstore import ColumnStoreIndex
from repro.storage.config import StoreConfig
from repro.storage.encodings import BitpackBlock, RawBlock
from repro.storage.rle import RleBlock

ROWS = 50_000


def stream_kind(segment) -> str:
    if isinstance(segment.stream, RleBlock):
        return f"RLE ({segment.stream.n_runs:,} runs)"
    if isinstance(segment.stream, BitpackBlock):
        return f"bitpack ({segment.stream.width} bits)"
    assert isinstance(segment.stream, RawBlock)
    return "raw"


def main() -> None:
    for spec in DATASET_SPECS:
        dataset = make_dataset(spec.name, ROWS, seed=42)
        index = ColumnStoreIndex(dataset.table_schema, StoreConfig())
        index.bulk_load_columns(dataset.columns)

        print(f"\n=== {spec.name}: {spec.description}")
        print(
            f"    total: {index.directory.raw_size_bytes / 1024:,.0f} KiB raw -> "
            f"{index.size_bytes / 1024:,.0f} KiB "
            f"({index.directory.raw_size_bytes / index.size_bytes:,.1f}x)"
        )
        group = next(index.directory.row_groups())
        print(f"    {'column':<14} {'scheme':<7} {'stream':<22} "
              f"{'ndv':>7} {'raw KiB':>8} {'enc KiB':>8} {'ratio':>7}")
        for name in dataset.table_schema.names:
            segment = group.segment(name)
            ndv = len(segment.dictionary) if segment.dictionary is not None else "-"
            print(
                f"    {name:<14} {segment.scheme.value:<7} {stream_kind(segment):<22} "
                f"{str(ndv):>7} {segment.raw_size_bytes / 1024:>8.1f} "
                f"{segment.encoded_size_bytes / 1024:>8.1f} "
                f"{segment.compression_ratio:>6.1f}x"
            )

        # Show the archival layer on the most string-heavy dataset.
        if spec.name == "skewed_strings":
            plain = index.size_bytes
            index.archive()
            print(
                f"    archival: {plain / 1024:,.0f} KiB -> "
                f"{index.size_bytes / 1024:,.0f} KiB "
                f"({plain / index.size_bytes:.2f}x extra)"
            )


if __name__ == "__main__":
    main()
