"""Quickstart: create a columnstore table, load data, run SQL.

Run with:  python examples/quickstart.py
"""

from repro import Database


def main() -> None:
    db = Database()

    # Tables default to clustered-columnstore storage (the paper's 2014
    # enhancement: the columnstore IS the base storage).
    db.sql(
        "CREATE TABLE sales ("
        "  id INT NOT NULL,"
        "  region VARCHAR,"
        "  product VARCHAR,"
        "  amount DECIMAL(10,2),"
        "  sold_on DATE)"
    )

    db.sql(
        "INSERT INTO sales VALUES "
        "(1, 'east',  'widget', 19.99, '2024-01-03'),"
        "(2, 'west',  'widget', 24.50, '2024-01-04'),"
        "(3, 'east',  'gadget', 99.00, '2024-01-04'),"
        "(4, 'north', 'widget', 19.99, '2024-01-05'),"
        "(5, 'east',  'gadget', 89.00, '2024-02-01'),"
        "(6, 'west',  'sprocket', 5.25, '2024-02-02')"
    )

    print("All January sales over $15:")
    result = db.sql(
        "SELECT id, region, amount FROM sales "
        "WHERE sold_on BETWEEN '2024-01-01' AND '2024-01-31' AND amount > 15 "
        "ORDER BY amount DESC"
    )
    for row in result:
        print("  ", row)

    print("\nRevenue by region:")
    result = db.sql(
        "SELECT region, COUNT(*) AS n, SUM(amount) AS revenue "
        "FROM sales GROUP BY region ORDER BY revenue DESC"
    )
    for region, n, revenue in result:
        print(f"   {region:<6} {n} sales, ${revenue:,.2f}")

    # Updates and deletes work against the columnstore: deletes mark the
    # delete bitmap, updates are delete + insert.
    db.sql("UPDATE sales SET amount = 21.99 WHERE id = 1")
    db.sql("DELETE FROM sales WHERE product = 'sprocket'")
    print("\nAfter update + delete:", db.sql("SELECT COUNT(*) AS n FROM sales").scalar(), "rows")

    # EXPLAIN shows the optimized logical plan and the physical (batch-
    # mode) operator tree, including pushed-down predicates.
    print("\nEXPLAIN of a filtered aggregate:")
    print(db.explain(
        "SELECT region, SUM(amount) AS r FROM sales "
        "WHERE sold_on >= '2024-02-01' GROUP BY region"
    ))


if __name__ == "__main__":
    main()
