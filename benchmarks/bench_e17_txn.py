"""E17 — Transaction overhead: explicit BEGIN/COMMIT vs auto-commit.

Two questions about the transaction layer's cost model:

1. What does statement-level atomicity cost when nothing fails? Every
   auto-commit statement runs against a throwaway undo context; the
   bookkeeping must be cheap relative to the storage work itself.
2. What does batching statements into explicit transactions buy under
   per-commit durability? In-transaction statements append WAL records
   but defer the fsync to COMMIT, so a BEGIN..COMMIT block of K
   statements should pay ~1 fsync instead of K — the same amortization
   group commit buys, but under application control and with all-or-
   nothing semantics.

We also measure ROLLBACK: undoing a K-statement transaction walks its
physical undo log backwards, so rollback time should scale with the
amount of work being discarded, not with database size.

Expected shape: txn-batched throughput >> auto-commit throughput under
per-commit durability, with fsyncs ~= number of COMMITs; rollback cost
linear in statements rolled back. Counters come from the engine's
``storage.wal.*`` / ``txn.*`` registry, not timing.
"""

from __future__ import annotations

import time

import pytest

from conftest import save_report, scaled
from repro.bench.harness import ReportTable
from repro.db.database import Database
from repro.observability import MetricsRegistry
from repro.observability.registry import set_registry
from repro.storage.config import StoreConfig

_CONFIG = StoreConfig(rowgroup_size=4096, bulk_load_threshold=1000)

BATCH_SIZES = (1, 16, 64)  # 1 == auto-commit


def _row(i: int):
    return [(i, f"g{i % 7}", float(i % 100))]


def run_batch_sweep(tmp_path, statements: int) -> list[dict]:
    """The same insert stream, auto-committed vs batched in explicit
    transactions of K statements, under per-commit durability."""
    results = []
    for batch in BATCH_SIZES:
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            db = Database.open(
                str(tmp_path / f"batch_{batch}"),
                durability="per-commit",
                default_config=_CONFIG,
            )
            db.sql("CREATE TABLE s (id INT NOT NULL, grp VARCHAR, v FLOAT)")
            start = time.perf_counter()
            if batch == 1:
                for i in range(statements):
                    db.insert("s", _row(i))
            else:
                for base in range(0, statements, batch):
                    with db.transaction():
                        for i in range(base, min(base + batch, statements)):
                            db.insert("s", _row(i))
            elapsed = time.perf_counter() - start
            assert db.sql("SELECT COUNT(*) AS n FROM s").scalar() == statements
            db.close()
            counters = registry.snapshot()
        finally:
            set_registry(previous)
        results.append(
            {
                "batch": batch,
                "statements": statements,
                "seconds": elapsed,
                "stmt_per_s": statements / elapsed,
                "fsyncs": counters.get("storage.wal.fsyncs", 0),
                "commits": counters.get("txn.commits", 0),
            }
        )
    return results


def run_rollback_sweep(tmp_path, sizes: list[int]) -> list[dict]:
    """ROLLBACK cost vs the number of statements being discarded."""
    results = []
    db = Database(_CONFIG)
    db.sql("CREATE TABLE s (id INT NOT NULL, grp VARCHAR, v FLOAT)")
    db.insert("s", [(10_000_000 + i, "base", 0.0) for i in range(100)])
    for size in sizes:
        db.begin()
        for i in range(size):
            db.insert("s", _row(i))
        start = time.perf_counter()
        db.rollback()
        elapsed = time.perf_counter() - start
        assert db.sql("SELECT COUNT(*) AS n FROM s").scalar() == 100
        results.append(
            {"size": size, "seconds": elapsed, "undo_per_s": size / elapsed}
        )
    return results


@pytest.fixture(scope="module")
def statements() -> int:
    return max(192, scaled(1000) // 2)


def test_e17_txn_overhead(benchmark, report_dir, tmp_path, statements):
    def run():
        batches = run_batch_sweep(tmp_path / "batch", statements)
        rollbacks = run_rollback_sweep(
            tmp_path / "rb", [statements // 4, statements // 2, statements]
        )
        return batches, rollbacks

    batches, rollbacks = benchmark.pedantic(run, rounds=1, iterations=1)

    report = ReportTable(
        f"E17: txn batching vs auto-commit, per-commit durability "
        f"({statements} statements)",
        ["batch", "stmt/s", "fsyncs", "fsyncs/stmt", "speedup"],
    )
    base = batches[0]  # auto-commit
    for r in batches:
        report.add_row(
            "auto-commit" if r["batch"] == 1 else f"txn({r['batch']})",
            f"{r['stmt_per_s']:,.0f}",
            int(r["fsyncs"]),
            f"{r['fsyncs'] / r['statements']:.3f}",
            f"{r['stmt_per_s'] / base['stmt_per_s']:.2f}x",
        )
    report.add_note("fsync counts from storage.wal.* / txn.* engine counters")

    rb_report = ReportTable(
        "E17: ROLLBACK cost vs statements discarded",
        ["statements", "rollback ms", "undo/s"],
    )
    for r in rollbacks:
        rb_report.add_row(
            r["size"], round(r["seconds"] * 1000, 2), f"{r['undo_per_s']:,.0f}"
        )
    rb_report.add_note("in-memory database: isolates undo-walk cost")
    save_report(
        report_dir,
        "e17_txn.txt",
        report.render() + "\n\n" + rb_report.render(),
    )

    by_batch = {r["batch"]: r for r in batches}
    auto, big = by_batch[1], by_batch[BATCH_SIZES[-1]]
    # Auto-commit under per-commit durability fsyncs every statement.
    assert auto["fsyncs"] >= auto["statements"] - 1
    # A K-statement transaction pays ~1 fsync per COMMIT, not per
    # statement (plus a bounded number for DDL / close).
    assert big["fsyncs"] <= big["commits"] + 4, (
        f"txn({big['batch']}) issued {big['fsyncs']} fsyncs for "
        f"{big['commits']} commits"
    )
    # Deferred durability buys real throughput (the acceptance criterion).
    assert big["stmt_per_s"] >= 2 * auto["stmt_per_s"], (
        f"txn({big['batch']}) {big['stmt_per_s']:.0f} stmt/s vs "
        f"auto-commit {auto['stmt_per_s']:.0f} stmt/s"
    )
    # Rollback is roughly linear in discarded work.
    small, large = rollbacks[0], rollbacks[-1]
    ratio = (large["seconds"] / large["size"]) / (small["seconds"] / small["size"])
    assert ratio < 3.0, f"rollback per-statement cost grew {ratio:.1f}x"
