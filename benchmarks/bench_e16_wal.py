"""E16 — Write-ahead log: durability cost and recovery-replay time.

Two questions the paper's transactional integration raises:

1. What does trickle-insert durability cost? We run the same insert
   stream under the three durability modes and report statements/second.
   Group commit must amortize — its fsync count (from the engine's
   ``storage.wal.*`` counters, not timing) must be well below one per
   commit, and its throughput well above per-commit mode's.
2. What does recovery cost? Replay time must scale roughly linearly with
   the length of the replayed log tail, and checkpoints must reset it.

Expected shape: ``off`` >= ``group`` >> ``per-commit`` throughput, with
group within a small factor of off; replay time linear in log length.
"""

from __future__ import annotations

import time

import pytest

from conftest import save_report, scaled
from repro.bench.harness import ReportTable
from repro.db.database import Database
from repro.observability import MetricsRegistry
from repro.observability.registry import set_registry
from repro.storage.config import StoreConfig

_CONFIG = StoreConfig(rowgroup_size=4096, bulk_load_threshold=1000)

MODES = ("off", "group", "per-commit")


def _rows(start: int, count: int):
    return [(start + i, f"g{i % 7}", float(i % 100)) for i in range(count)]


def run_durability_sweep(tmp_path, statements: int) -> list[dict]:
    results = []
    for mode in MODES:
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            db = Database.open(
                str(tmp_path / f"mode_{mode}"),
                durability=mode,
                group_commit_size=16,
                default_config=_CONFIG,
            )
            db.sql("CREATE TABLE s (id INT NOT NULL, grp VARCHAR, v FLOAT)")
            start = time.perf_counter()
            for i in range(statements):
                db.insert("s", _rows(i, 1))
            elapsed = time.perf_counter() - start
            db.close()
            counters = registry.snapshot()
        finally:
            set_registry(previous)
        results.append(
            {
                "mode": mode,
                "statements": statements,
                "seconds": elapsed,
                "stmt_per_s": statements / elapsed,
                "commits": counters.get("storage.wal.commits", 0),
                "fsyncs": counters.get("storage.wal.fsyncs", 0),
                "bytes": counters.get("storage.wal.bytes_appended", 0),
            }
        )
    return results


def run_replay_sweep(tmp_path, tail_lengths: list[int]) -> list[dict]:
    results = []
    for tail in tail_lengths:
        target = tmp_path / f"replay_{tail}"
        db = Database.open(str(target), durability="off", default_config=_CONFIG)
        db.sql("CREATE TABLE s (id INT NOT NULL, grp VARCHAR, v FLOAT)")
        db.save(str(target))  # checkpoint: the log tail starts empty
        for i in range(tail):
            db.insert("s", _rows(i * 2, 2))
        db.wal.flush()
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            start = time.perf_counter()
            recovered = Database.open(str(target), default_config=_CONFIG)
            elapsed = time.perf_counter() - start
            replayed = registry.snapshot().get("storage.wal.replay.records", 0)
        finally:
            set_registry(previous)
        assert replayed == tail
        assert (
            recovered.sql("SELECT COUNT(*) AS n FROM s").scalar() == tail * 2
        )
        results.append(
            {"tail": tail, "seconds": elapsed, "records_per_s": tail / elapsed}
        )
    return results


@pytest.fixture(scope="module")
def statements() -> int:
    return max(200, scaled(1000) // 2)


def test_e16_wal_durability_and_replay(benchmark, report_dir, tmp_path, statements):
    def run():
        durability = run_durability_sweep(tmp_path / "dur", statements)
        replay = run_replay_sweep(
            tmp_path / "rep", [statements // 4, statements // 2, statements]
        )
        return durability, replay

    durability, replay = benchmark.pedantic(run, rounds=1, iterations=1)

    report = ReportTable(
        f"E16: trickle-insert durability cost ({statements} statements)",
        ["durability", "stmt/s", "commits", "fsyncs", "fsyncs/commit", "slowdown"],
    )
    base = durability[0]  # "off"
    by_mode = {r["mode"]: r for r in durability}
    for r in durability:
        report.add_row(
            r["mode"],
            f"{r['stmt_per_s']:,.0f}",
            int(r["commits"]),
            int(r["fsyncs"]),
            f"{r['fsyncs'] / max(1, r['commits']):.3f}",
            f"{base['stmt_per_s'] / r['stmt_per_s']:.2f}x",
        )
    report.add_note("fsync counts from the storage.wal.* engine counters")

    replay_report = ReportTable(
        "E16: recovery-replay time vs log-tail length",
        ["replayed records", "replay ms", "records/s"],
    )
    for r in replay:
        replay_report.add_row(
            r["tail"], round(r["seconds"] * 1000, 1), f"{r['records_per_s']:,.0f}"
        )
    replay_report.add_note("each point: checkpoint, then a trickle-insert tail")
    save_report(
        report_dir,
        "e16_wal.txt",
        report.render() + "\n\n" + replay_report.render(),
    )

    group, per_commit = by_mode["group"], by_mode["per-commit"]
    # Group commit amortizes: far fewer fsyncs than commits ...
    assert group["fsyncs"] < group["commits"] / 4
    # ... while per-commit mode fsyncs every statement.
    assert per_commit["fsyncs"] >= per_commit["commits"] - 1
    # The amortization buys real throughput (the acceptance criterion).
    assert group["stmt_per_s"] >= 3 * per_commit["stmt_per_s"], (
        f"group {group['stmt_per_s']:.0f} stmt/s vs per-commit "
        f"{per_commit['stmt_per_s']:.0f} stmt/s"
    )
    # Replay is roughly linear: 4x the tail must not cost ~10x the time.
    small, large = replay[0], replay[-1]
    ratio = (large["seconds"] / large["tail"]) / (small["seconds"] / small["tail"])
    assert ratio < 2.5, f"replay per-record cost grew {ratio:.1f}x with tail length"
