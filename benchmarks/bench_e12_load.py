"""E12 (ablation) — Bulk load vs trickle insert throughput.

The paper's bulk-insert path compresses large batches straight into row
groups, bypassing delta stores; small inserts go through the B-tree delta
store. This ablation loads the same rows both ways.

Expected shape: bulk load achieves much higher rows/second; after a
tuple-mover pass the trickle-loaded index converges to the same
compressed state (size within noise of the bulk-loaded one).
"""

from __future__ import annotations

from conftest import save_report, scaled
from repro.bench.harness import ReportTable, fmt_bytes, time_call
from repro.bench.star_schema import STORE_SALES_SCHEMA, generate_star_data
from repro.storage.columnstore import ColumnStoreIndex
from repro.storage.config import StoreConfig
from repro.storage.tuple_mover import TupleMover

ROWS = scaled(60_000)


def make_rows():
    return generate_star_data(ROWS, seed=13)["store_sales"]


def run_comparison() -> dict:
    rows = make_rows()
    config = StoreConfig(rowgroup_size=16_384, bulk_load_threshold=1000)

    def bulk():
        index = ColumnStoreIndex(STORE_SALES_SCHEMA, config)
        index.bulk_load(rows)
        return index

    def trickle():
        index = ColumnStoreIndex(STORE_SALES_SCHEMA, config)
        for row in rows:
            index.insert(row)
        return index

    bulk_timing = time_call(bulk, repeat=2)
    trickle_timing = time_call(trickle, repeat=1)

    bulk_index = bulk()
    trickle_index = trickle()
    trickle_size_before = trickle_index.size_bytes
    mover_timing = time_call(
        lambda: TupleMover(trickle_index).run(include_open=True), repeat=1
    )
    return {
        "bulk_s": bulk_timing.seconds,
        "trickle_s": trickle_timing.seconds,
        "mover_s": mover_timing.seconds,
        "bulk_size": bulk_index.size_bytes,
        "trickle_size_before": trickle_size_before,
        "trickle_size_after": trickle_index.size_bytes,
        "bulk_rows": bulk_index.live_rows,
        "trickle_rows": trickle_index.live_rows,
    }


def test_e12_load_paths(benchmark, report_dir):
    r = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report = ReportTable(
        f"E12 (ablation): bulk load vs trickle insert ({ROWS:,} rows)",
        ["path", "load time s", "rows/s", "resulting size"],
    )
    report.add_row(
        "bulk load (direct compress)",
        round(r["bulk_s"], 2),
        int(ROWS / r["bulk_s"]),
        fmt_bytes(r["bulk_size"]),
    )
    report.add_row(
        "trickle insert (delta stores)",
        round(r["trickle_s"], 2),
        int(ROWS / r["trickle_s"]),
        fmt_bytes(r["trickle_size_before"]),
    )
    report.add_row(
        "trickle + tuple mover",
        round(r["trickle_s"] + r["mover_s"], 2),
        int(ROWS / (r["trickle_s"] + r["mover_s"])),
        fmt_bytes(r["trickle_size_after"]),
    )
    report.add_note("tuple mover converges trickle-loaded data to compressed form")
    save_report(report_dir, "e12_load_paths.txt", report.render())

    assert r["bulk_rows"] == r["trickle_rows"] == ROWS
    assert r["bulk_s"] < r["trickle_s"], "bulk load must be faster"
    assert r["trickle_size_before"] > r["bulk_size"], "delta stores are bigger"
    assert r["trickle_size_after"] < r["trickle_size_before"] / 2
