"""E22 — Hot backup and point-in-time restore cost.

Three questions the backup subsystem must answer quantitatively:

1. What does the barrier cost the writers? The backup's exclusive phase
   is a flush + a handful of metadata captures; writers stalled behind
   it should lose microseconds, not the duration of the copy. We measure
   writer throughput with no backup, then with a backup running
   mid-stream, and report the slowdown.
2. What does the copy cost in absolute terms? Bytes and files per
   second, from the engine's ``backup.*`` counters, not wall clock
   alone.
3. What does restore cost? Records replayed per second via the restore
   path (image lay-down + clipped-WAL replay through ``Database.load``),
   and how point-in-time targets scale with distance past the base
   image.

Expected shape: writers keep committing for the whole copy (the copy
holds no lock — the slowdown is CPU sharing, bounded well below a
stall); restore replay within a small factor of plain recovery replay
(E16) — it IS the same replay path.
"""

from __future__ import annotations

import threading
import time

from conftest import save_report, scaled
from repro.backup import restore_backup
from repro.bench.harness import ReportTable
from repro.concurrency.database import ConcurrentDatabase
from repro.db.database import Database
from repro.observability import MetricsRegistry
from repro.observability.registry import set_registry
from repro.storage.config import StoreConfig

_CONFIG = StoreConfig(rowgroup_size=4096, bulk_load_threshold=1000)


def _seed_database(path, rows: int) -> ConcurrentDatabase:
    cdb = ConcurrentDatabase.open(
        str(path), durability="group", default_config=_CONFIG
    )
    cdb.sql("CREATE TABLE s (id INT NOT NULL, grp VARCHAR, v FLOAT)")
    for base in range(0, rows, 1000):
        cdb.db.insert(
            "s",
            [
                (base + i, f"g{i % 7}", float(i % 100))
                for i in range(min(1000, rows - base))
            ],
        )
    cdb.save(str(path))
    return cdb


def _writer_throughput(cdb, statements: int, concurrent_backup=None) -> dict:
    """Insert ``statements`` single-row statements; optionally kick off a
    backup once a third of them have landed."""
    backup_result = {}
    backup_thread = None
    start = time.perf_counter()
    for i in range(statements):
        if concurrent_backup is not None and i == statements // 3:

            def run_backup():
                backup_result["result"] = cdb.backup(concurrent_backup)

            backup_thread = threading.Thread(target=run_backup)
            backup_thread.start()
        cdb.sql(f"INSERT INTO s VALUES ({10_000_000 + i}, 'w', {float(i)})")
    elapsed = time.perf_counter() - start
    if backup_thread is not None:
        backup_thread.join()
    return {
        "seconds": elapsed,
        "stmt_per_s": statements / elapsed,
        "backup": backup_result.get("result"),
    }


def run_backup_bench(tmp_path, rows: int, statements: int) -> dict:
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        cdb = _seed_database(tmp_path / "src", rows)
        baseline = _writer_throughput(cdb, statements)
        hot = _writer_throughput(
            cdb, statements, concurrent_backup=str(tmp_path / "bk_hot")
        )
        # A quiesced backup for the pure copy rate.
        start = time.perf_counter()
        cold = cdb.backup(str(tmp_path / "bk_cold"))
        cold_seconds = time.perf_counter() - start
        cdb.close()
        counters = registry.snapshot()
    finally:
        set_registry(previous)
    return {
        "baseline": baseline,
        "hot": hot,
        "cold": cold,
        "cold_seconds": cold_seconds,
        "counters": counters,
    }


def run_restore_bench(tmp_path, backup_dir, archive_dir, targets) -> list[dict]:
    results = []
    for label, to_lsn in targets:
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            dest = tmp_path / f"restore_{label}"
            start = time.perf_counter()
            restored = restore_backup(
                backup_dir, dest, to_lsn=to_lsn, archive=archive_dir
            )
            db = Database.load(str(dest))
            elapsed = time.perf_counter() - start
            replayed = registry.snapshot().get("storage.wal.replay.records", 0)
            count = db.sql("SELECT COUNT(*) AS n FROM s").scalar()
            db.close()
        finally:
            set_registry(previous)
        results.append(
            {
                "label": label,
                "target_lsn": restored.target_lsn,
                "records": restored.records,
                "replayed": replayed,
                "rows": count,
                "seconds": elapsed,
                "records_per_s": max(replayed, 1) / elapsed,
            }
        )
    return results


def test_e22_backup_restore(benchmark, report_dir, tmp_path):
    rows = scaled(20_000)
    statements = max(300, scaled(1000) // 2)

    def run():
        return run_backup_bench(tmp_path, rows, statements)

    bench = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline, hot, cold = bench["baseline"], bench["hot"], bench["cold"]
    slowdown = baseline["stmt_per_s"] / hot["stmt_per_s"]

    report = ReportTable(
        f"E22: hot backup under load ({rows:,} base rows, "
        f"{statements} writer statements)",
        ["scenario", "stmt/s", "slowdown", "backup MB", "files", "copy s"],
    )
    report.add_row(
        "writers only", f"{baseline['stmt_per_s']:,.0f}", "1.00x", "-", "-", "-"
    )
    report.add_row(
        "writers + hot backup",
        f"{hot['stmt_per_s']:,.0f}",
        f"{slowdown:.2f}x",
        f"{hot['backup'].bytes / 1e6:.1f}",
        hot["backup"].files,
        "-",
    )
    report.add_row(
        "quiesced backup",
        "-",
        "-",
        f"{cold.bytes / 1e6:.1f}",
        cold.files,
        f"{bench['cold_seconds']:.2f}",
    )
    report.add_note(
        "only the barrier (flush + epoch pin + manifest capture) excludes "
        "writers; the copy runs lock-free"
    )

    # Restore: to the cold backup's cut, using the source archive for
    # nothing (the backup's own WAL suffices at its cut line).
    restores = run_restore_bench(
        tmp_path,
        tmp_path / "bk_cold",
        (tmp_path / "src" / "wal_archive"),
        [("to-cut", None)],
    )
    restore_report = ReportTable(
        "E22: restore cost (image lay-down + clipped-WAL replay)",
        ["target", "wal records", "replayed", "rows", "seconds", "records/s"],
    )
    for r in restores:
        restore_report.add_row(
            r["label"],
            r["records"],
            int(r["replayed"]),
            f"{r['rows']:,}",
            f"{r['seconds']:.2f}",
            f"{r['records_per_s']:,.0f}",
        )
    save_report(
        report_dir,
        "e22_backup.txt",
        report.render() + "\n\n" + restore_report.render(),
    )

    # Acceptance: writers keep making progress through the whole copy.
    # In-process, the copy shares the GIL with the writers, so some
    # slowdown is CPU contention — but a copy that held the write lock
    # would stall writers for its full duration, an order of magnitude
    # worse than this bound.
    assert slowdown < 6.0, (
        f"hot backup slowed writers {slowdown:.2f}x — the copy phase "
        "looks lock-bound, not CPU-bound"
    )
    # The restored database holds every row committed before the cut.
    assert restores[0]["rows"] >= rows
    # The backup captured real data.
    assert cold.bytes > 0 and cold.files > 0
