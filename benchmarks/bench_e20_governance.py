"""E20 — Query governance: cancellation latency and checkpoint overhead.

Two questions about the governance layer (DESIGN.md "Query governance"):

1. **How fast does a KILL land?** Cooperative cancellation is only
   useful if the checkpoints are dense enough — the time from setting a
   context's cancel flag to the statement fully unwinding (locks and
   pins released, registry deregistered) must be well under a human
   "did it stop?" threshold. The PR's acceptance bar is 250 ms.

2. **What do the checkpoints cost when nothing fires?** Every batch
   boundary, scan unit and row-engine stride calls ``ctx.check()``. The
   benchmark runs the same scan-heavy query with and without an active
   context and reports the ratio, plus the number of checks actually
   executed (from the context's own counter) so the overhead has a
   denominator.
"""

from __future__ import annotations

import threading
import time

import pytest

from conftest import save_report, scaled
from repro.bench.harness import ReportTable
from repro.db.database import Database
from repro.errors import QueryCancelledError
from repro.governance import get_query_registry, governed

CANCEL_ROUNDS = 5
CANCEL_BUDGET_SECONDS = 0.25  # the PR's acceptance bar
OVERHEAD_RUNS = 5

# Scan-heavy with a fan-out join: long enough to kill mid-flight.
SLOW_QUERY = (
    "SELECT t1.a FROM t t1 JOIN t t2 ON t1.b = t2.b ORDER BY t1.a"
)
SCAN_QUERY = "SELECT a, b FROM t WHERE a % 3 = 0"


def _build(rows: int) -> Database:
    db = Database()
    db.sql("CREATE TABLE t (a INT NOT NULL, b INT NOT NULL)")
    db.insert("t", [(i, i % 11) for i in range(rows)])
    db.run_tuple_mover("t", include_open=True)
    return db


def run_cancellation_latency(db: Database) -> list[float]:
    """KILL a running statement; time flag-set → full unwind."""
    latencies = []
    for _ in range(CANCEL_ROUNDS):
        started = threading.Event()
        unwound = []

        def victim():
            try:
                db.sql(SLOW_QUERY)
                unwound.append(("finished", time.perf_counter()))
            except QueryCancelledError:
                unwound.append(("cancelled", time.perf_counter()))

        thread = threading.Thread(target=victim)
        thread.start()
        registry = get_query_registry()
        deadline = time.monotonic() + 10.0
        running = []
        while time.monotonic() < deadline and not running:
            running = registry.list_running()
        assert running, "victim never registered"
        kill_at = time.perf_counter()
        db.sql(f"KILL {running[0].query_id}")
        thread.join(timeout=30.0)
        assert not thread.is_alive(), "victim did not unwind"
        state, done_at = unwound[0]
        if state == "cancelled":  # a too-fast finish carries no signal
            latencies.append(done_at - kill_at)
    assert latencies, "every round finished before the KILL landed"
    return latencies


def run_checkpoint_overhead(db: Database) -> dict:
    """The same plan with and without an active governance context."""
    from repro.sql.runner import plan_query

    plan = plan_query(db, SCAN_QUERY)

    def timed_ungoverned() -> float:
        physical, dtypes = db._prepare(plan)
        start = time.perf_counter()
        db._run_physical(physical, dtypes)
        return time.perf_counter() - start

    def timed_governed() -> tuple[float, int]:
        ctx = db.new_query_context(sql=SCAN_QUERY)
        with governed(ctx):
            physical, dtypes = db._prepare(plan)
            start = time.perf_counter()
            db._run_physical(physical, dtypes)
            elapsed = time.perf_counter() - start
        return elapsed, ctx.checks

    # Warm both paths once, then take the best of several runs each —
    # min is the right statistic for "what does the code cost" timing.
    timed_ungoverned(), timed_governed()
    off = min(timed_ungoverned() for _ in range(OVERHEAD_RUNS))
    governed_runs = [timed_governed() for _ in range(OVERHEAD_RUNS)]
    on = min(t for t, _ in governed_runs)
    checks = max(c for _, c in governed_runs)
    return {"off_s": off, "on_s": on, "ratio": on / off if off else 1.0, "checks": checks}


@pytest.fixture(scope="module")
def db() -> Database:
    return _build(scaled(30_000))


def test_e20_governance(benchmark, report_dir, db):
    def run():
        return run_cancellation_latency(db), run_checkpoint_overhead(db)

    latencies, overhead = benchmark.pedantic(run, rounds=1, iterations=1)

    latency_report = ReportTable(
        f"E20: cancellation latency (KILL → full unwind), "
        f"{len(latencies)} measured rounds",
        ["min (ms)", "median (ms)", "max (ms)", "budget (ms)"],
    )
    ordered = sorted(latencies)
    latency_report.add_row(
        f"{ordered[0] * 1000:.1f}",
        f"{ordered[len(ordered) // 2] * 1000:.1f}",
        f"{ordered[-1] * 1000:.1f}",
        f"{CANCEL_BUDGET_SECONDS * 1000:.0f}",
    )
    latency_report.add_note(
        "cooperative checkpoints: per batch, per scan unit, per 256 scanned rows"
    )

    overhead_report = ReportTable(
        "E20: checkpoint overhead on a scan-heavy query (best of "
        f"{OVERHEAD_RUNS})",
        ["governance off (ms)", "governance on (ms)", "ratio", "checks/query"],
    )
    overhead_report.add_row(
        f"{overhead['off_s'] * 1000:.2f}",
        f"{overhead['on_s'] * 1000:.2f}",
        f"{overhead['ratio']:.3f}x",
        int(overhead["checks"]),
    )
    overhead_report.add_note(
        "off = same compiled plan run without an active QueryContext"
    )
    save_report(
        report_dir,
        "e20_governance.txt",
        latency_report.render() + "\n\n" + overhead_report.render(),
    )

    # The acceptance bar: every measured cancellation landed inside the
    # budget, and the governed run actually exercised checkpoints.
    assert max(latencies) < CANCEL_BUDGET_SECONDS, (
        f"cancellation took {max(latencies) * 1000:.0f}ms "
        f"(budget {CANCEL_BUDGET_SECONDS * 1000:.0f}ms)"
    )
    assert overhead["checks"] > 0
    # Checkpoints are cheap: allow generous slack for timer noise, but a
    # 2x regression would mean checking far too often.
    assert overhead["ratio"] < 2.0, f"checkpoint overhead {overhead['ratio']:.2f}x"
    assert len(get_query_registry()) == 0
