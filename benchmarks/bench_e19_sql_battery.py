"""E19 — SQL battery throughput: batch vs row engine over the full surface.

The differential battery in ``tests/sql_battery`` is primarily a
correctness net: every statement (filters, aggregates, joins, subqueries,
CTEs, windows, TPC-H-derived queries) must agree between the batch and
row engines and, where expressible, with sqlite3. This experiment reuses
the same statement corpus as a *workload* and asks the performance
question: how much does vectorized execution buy across a broad SQL
surface, feature family by feature family?

Expected shape: at this corpus's deliberately tiny scale (hundreds of
rows, so the sqlite oracle stays cheap) per-statement fixed costs
dominate and the row engine is competitive or ahead — the batch engine's
advantage only appears once tables span many vectors (see E3/E4 for
that crossover). What this experiment pins down is the *relative* cost
of each feature family and that neither engine collapses on any of them.
"""

from __future__ import annotations

import sys
import time
from collections import defaultdict
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from conftest import save_report
from repro.bench.harness import ReportTable
from repro.bench.tpch_tiny import build_tpch_tiny
from tests.sql_battery.battery_lib import load_statements


@pytest.fixture(scope="module")
def battery_db():
    return build_tpch_tiny(storage="columnstore", seed=7)


def run_battery(db, mode: str) -> dict[str, dict]:
    """Run every battery statement in one mode; aggregate times per family."""
    families: dict[str, dict] = defaultdict(lambda: {"n": 0, "seconds": 0.0, "rows": 0})
    for stmt in load_statements():
        family = stmt.source.split(":")[0]
        start = time.perf_counter()
        result = db.sql(stmt.sql, mode=mode)
        elapsed = time.perf_counter() - start
        bucket = families[family]
        bucket["n"] += 1
        bucket["seconds"] += elapsed
        bucket["rows"] += len(result.rows)
    return dict(families)


def test_e19_sql_battery(benchmark, report_dir, battery_db):
    def run():
        return run_battery(battery_db, "batch"), run_battery(battery_db, "row")

    batch, row = benchmark.pedantic(run, rounds=1, iterations=1)

    report = ReportTable(
        "E19: SQL battery, batch vs row engine (statements by feature family)",
        ["family", "stmts", "batch stmt/s", "row stmt/s", "batch speedup"],
    )
    total_n = 0
    total_batch = 0.0
    total_row = 0.0
    for family in sorted(batch):
        b, r = batch[family], row[family]
        assert b["n"] == r["n"]
        assert b["rows"] == r["rows"], f"engines returned different row counts for {family}"
        report.add_row(
            family,
            b["n"],
            f"{b['n'] / b['seconds']:,.0f}",
            f"{r['n'] / r['seconds']:,.0f}",
            f"{r['seconds'] / b['seconds']:.2f}x",
        )
        total_n += b["n"]
        total_batch += b["seconds"]
        total_row += r["seconds"]
    report.add_row(
        "TOTAL",
        total_n,
        f"{total_n / total_batch:,.0f}",
        f"{total_n / total_row:,.0f}",
        f"{total_row / total_batch:.2f}x",
    )
    report.add_note(
        "same corpus as tests/sql_battery (plan-shape, engine-agreement, "
        "and sqlite3-oracle checked there)"
    )
    save_report(report_dir, "e19_sql_battery.txt", report.render())

    # The battery floor the CI job also enforces: the workload stays broad.
    assert total_n >= 200
    families = set(batch)
    for expected in ("subqueries", "ctes", "windows", "tpch"):
        assert expected in families, f"battery lost its {expected} family"
