"""E8 — Delete-bitmap overhead: scan cost vs fraction of deleted rows.

DELETE against compressed row groups only marks the delete bitmap; the
rows stay in the segments and every scan must subtract them. We sweep the
deleted fraction and also measure REBUILD, which physically removes them.

Expected shape: scan cost stays roughly flat (masking is cheap) while
results shrink; REBUILD restores a deleted-row-free index whose scans are
proportionally cheaper.
"""

from __future__ import annotations

from conftest import save_report, scaled
from repro.bench.harness import ReportTable, time_call
from repro.bench.star_schema import build_star_schema
from repro.storage.config import StoreConfig

ROWS = scaled(120_000)
QUERY = "SELECT COUNT(*) AS n, SUM(ss_net_paid) AS s FROM store_sales"
FRACTIONS = [0.0, 0.1, 0.25, 0.5]


def run_sweep() -> list[dict]:
    results = []
    for fraction in FRACTIONS:
        config = StoreConfig(rowgroup_size=16_384, bulk_load_threshold=1000)
        star = build_star_schema(ROWS, storage="columnstore", seed=6, config=config)
        if fraction > 0:
            threshold = int(ROWS * fraction)
            star.db.sql(f"DELETE FROM store_sales WHERE ss_id < {threshold}")
        index = star.db.table("store_sales").columnstore
        timing = time_call(lambda: star.db.sql(QUERY), repeat=3)
        results.append(
            {
                "fraction": fraction,
                "deleted": index.delete_bitmap.total_deleted,
                "live": index.live_rows,
                "query_ms": timing.seconds * 1000,
                "star": star,
            }
        )
    # REBUILD the most-deleted configuration.
    worst = results[-1]["star"]
    worst.db.rebuild("store_sales")
    timing = time_call(lambda: worst.db.sql(QUERY), repeat=3)
    index = worst.db.table("store_sales").columnstore
    results.append(
        {
            "fraction": FRACTIONS[-1],
            "deleted": index.delete_bitmap.total_deleted,
            "live": index.live_rows,
            "query_ms": timing.seconds * 1000,
            "star": worst,
            "rebuilt": True,
        }
    )
    return results


def test_e8_delete_bitmap(benchmark, report_dir):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report = ReportTable(
        f"E8: scan cost vs deleted fraction ({ROWS:,} fact rows)",
        ["config", "deleted rows", "live rows", "full-scan query ms"],
    )
    for r in results:
        label = "after REBUILD" if r.get("rebuilt") else f"{r['fraction']:.0%} deleted"
        report.add_row(label, r["deleted"], r["live"], round(r["query_ms"], 1))
    report.add_note("deletes mark the bitmap; REBUILD physically drops marked rows")
    save_report(report_dir, "e8_delete_bitmap.txt", report.render())

    clean = results[0]
    half = results[len(FRACTIONS) - 1]
    rebuilt = results[-1]
    assert half["live"] == clean["live"] - half["deleted"]
    assert rebuilt["deleted"] == 0
    assert rebuilt["live"] == half["live"]
    # Masking overhead stays modest: within 2x of the clean scan.
    assert half["query_ms"] < clean["query_ms"] * 2.0
