"""E3 — The headline figure: columnstore+batch vs rowstore+row, 22 queries.

The abstract's claim: batch mode on column stores improves typical data-
warehouse queries "routinely by 10X and in some cases by a 100X or more"
over row-mode row-store execution. This benchmark runs the full 22-query
star-schema suite on identical data in both configurations, verifying the
results match before timing.

Expected shape: batch+columnstore wins every query; median speedup around
an order of magnitude; join- and string-heavy queries at the high end.
(Absolute factors are compressed relative to the paper: our baseline is
interpreted Python rather than compiled row-mode C++, and our batch mode
is NumPy rather than hand-tuned SIMD — see EXPERIMENTS.md.)
"""

from __future__ import annotations

import statistics

from conftest import save_report
from repro.bench.harness import ReportTable, assert_same_result, time_query
from repro.bench.queries import QUERY_SUITE


def run_suite(star_columnstore, star_rowstore) -> list[dict]:
    results = []
    for query in QUERY_SUITE:
        rows = assert_same_result(
            star_columnstore.db, star_rowstore.db, query.sql, "batch", "row"
        )
        batch = time_query(star_columnstore.db, query.sql, mode="batch", repeat=2)
        row = time_query(star_rowstore.db, query.sql, mode="row", repeat=1)
        results.append(
            {
                "qid": query.qid,
                "description": query.description,
                "rows": rows,
                "batch_ms": batch.seconds * 1000,
                "row_ms": row.seconds * 1000,
                "speedup": row.seconds / max(batch.seconds, 1e-9),
            }
        )
    return results


def test_e3_speedup_per_query(benchmark, report_dir, star_columnstore, star_rowstore):
    results = benchmark.pedantic(
        run_suite, args=(star_columnstore, star_rowstore), rounds=1, iterations=1
    )
    report = ReportTable(
        f"E3: per-query speedup, columnstore+batch vs rowstore+row "
        f"({star_columnstore.fact_rows:,} fact rows)",
        ["query", "description", "batch ms", "row ms", "speedup"],
    )
    for r in results:
        report.add_row(
            r["qid"],
            r["description"][:42],
            round(r["batch_ms"], 1),
            round(r["row_ms"], 1),
            f"{r['speedup']:.1f}x",
        )
    speedups = [r["speedup"] for r in results]
    report.add_note(
        f"median speedup {statistics.median(speedups):.1f}x, "
        f"min {min(speedups):.1f}x, max {max(speedups):.1f}x"
    )
    save_report(report_dir, "e3_speedup.txt", report.render())

    assert all(s > 1.0 for s in speedups), "batch+columnstore must win every query"
    assert statistics.median(speedups) >= 4.0
    assert max(speedups) >= 15.0


def test_e3_single_star_join_batch(benchmark, star_columnstore):
    """Micro: the representative star join (Q06) in batch mode."""
    from repro.bench.queries import query_by_id

    sql = query_by_id("Q06").sql
    benchmark.pedantic(
        lambda: star_columnstore.db.sql(sql, mode="batch"), rounds=3, iterations=1
    )


def test_e3_single_star_join_row(benchmark, star_rowstore):
    """Micro: the same star join (Q06) on the row-mode baseline."""
    from repro.bench.queries import query_by_id

    sql = query_by_id("Q06").sql
    benchmark.pedantic(
        lambda: star_rowstore.db.sql(sql, mode="row"), rounds=1, iterations=1
    )
