"""E11 (ablation) — Vertipaq-style row reordering before compression.

Rows inside a row group may be stored in any order, so the loader sorts
low-cardinality columns first to manufacture long runs for RLE. This
ablation compresses identical data with reordering on vs off.

Expected shape: reordering shrinks encoded size whenever the data is not
already run-friendly; the win is largest on shuffled categorical data.
"""

from __future__ import annotations

import numpy as np

from conftest import save_report, scaled
from repro.bench.datagen import DATASET_SPECS, make_dataset
from repro.bench.harness import ReportTable, fmt_bytes
from repro.storage.columnstore import ColumnStoreIndex
from repro.storage.config import StoreConfig

ROWS = scaled(80_000)


def sizes_for(name: str) -> dict:
    dataset = make_dataset(name, ROWS, seed=31)
    # Shuffle first: reordering should EARN its keep, not inherit
    # generator ordering.
    rng = np.random.default_rng(77)
    perm = rng.permutation(ROWS)
    shuffled = {k: v[perm] for k, v in dataset.columns.items()}

    def load(reorder: bool) -> int:
        index = ColumnStoreIndex(
            dataset.table_schema, StoreConfig(reorder_rows=reorder)
        )
        index.bulk_load_columns({k: v.copy() for k, v in shuffled.items()})
        return index.size_bytes

    with_reorder = load(True)
    without_reorder = load(False)
    return {
        "name": name,
        "with": with_reorder,
        "without": without_reorder,
        "win": without_reorder / with_reorder,
    }


def run_ablation() -> list[dict]:
    return [sizes_for(spec.name) for spec in DATASET_SPECS]


def test_e11_row_reordering(benchmark, report_dir):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report = ReportTable(
        f"E11 (ablation): row reordering before compression ({ROWS:,} shuffled rows)",
        ["dataset", "size with reorder", "size without", "reorder win"],
    )
    for r in results:
        report.add_row(
            r["name"], fmt_bytes(r["with"]), fmt_bytes(r["without"]),
            f"{r['win']:.2f}x",
        )
    report.add_note("input shuffled first so ordering must be re-created")
    save_report(report_dir, "e11_reordering.txt", report.render())

    by_name = {r["name"]: r for r in results}
    assert by_name["low_ndv_ints"]["win"] > 1.5, "categorical data must win big"
    assert by_name["long_runs"]["win"] > 1.5
    wins = sum(1 for r in results if r["win"] >= 0.99)
    assert wins >= len(results) - 1, "reordering should (almost) never hurt"
