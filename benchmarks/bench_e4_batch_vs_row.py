"""E4 — Batch vs row execution isolated on identical (columnstore) storage.

Separates the two contributions the paper combines: E3 mixes storage
format and execution model; here both engines read the SAME columnstore,
so the measured gap is the vectorization benefit alone (row mode pays
per-tuple interpretation over decompressed row groups — the paper's
"row mode over a columnstore" plan shape).

Expected shape: batch wins everywhere, but by less than E3's combined gap.
"""

from __future__ import annotations

import statistics

from conftest import save_report
from repro.bench.harness import ReportTable, assert_same_result, time_query
from repro.bench.queries import query_by_id

QUERY_IDS = ["Q01", "Q02", "Q04", "Q06", "Q08", "Q12", "Q17", "Q21"]


def run_comparison(star_columnstore) -> list[dict]:
    db = star_columnstore.db
    results = []
    for qid in QUERY_IDS:
        query = query_by_id(qid)
        rows = assert_same_result(db, db, query.sql, "batch", "row")
        batch = time_query(db, query.sql, mode="batch", repeat=2)
        row = time_query(db, query.sql, mode="row", repeat=1)
        results.append(
            {
                "qid": qid,
                "rows": rows,
                "batch_ms": batch.seconds * 1000,
                "row_ms": row.seconds * 1000,
                "speedup": row.seconds / max(batch.seconds, 1e-9),
            }
        )
    return results


def test_e4_execution_model_isolated(benchmark, report_dir, star_columnstore):
    results = benchmark.pedantic(
        run_comparison, args=(star_columnstore,), rounds=1, iterations=1
    )
    report = ReportTable(
        "E4: batch vs row execution over the SAME columnstore "
        f"({star_columnstore.fact_rows:,} fact rows)",
        ["query", "batch ms", "row-over-columnstore ms", "speedup"],
    )
    for r in results:
        report.add_row(
            r["qid"], round(r["batch_ms"], 1), round(r["row_ms"], 1),
            f"{r['speedup']:.1f}x",
        )
    speedups = [r["speedup"] for r in results]
    report.add_note(
        f"median {statistics.median(speedups):.1f}x — execution-model share "
        "of the E3 end-to-end gap"
    )
    save_report(report_dir, "e4_batch_vs_row.txt", report.render())

    assert all(s > 1.0 for s in speedups)
    assert statistics.median(speedups) >= 3.0
