"""E1 — Columnstore compression vs PAGE row compression ("Table 1").

The paper reports compression ratios of columnstore indexes against raw
and PAGE-compressed row storage across customer databases. We reproduce
the comparison over the six synthetic dataset regimes of
:mod:`repro.bench.datagen` (see DESIGN.md's substitution table).

Expected shape: columnstore beats PAGE compression on every dataset, with
the largest wins on low-NDV / long-run data.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import save_report, scaled
from repro.bench.datagen import DATASET_SPECS, make_dataset
from repro.bench.harness import ReportTable, fmt_bytes
from repro.rowstore.compression import table_page_compressed_size
from repro.rowstore.table import RowStoreTable
from repro.storage.columnstore import ColumnStoreIndex
from repro.storage.config import StoreConfig

ROWS = scaled(100_000)


def measure_dataset(name: str) -> dict:
    dataset = make_dataset(name, ROWS, seed=11)
    index = ColumnStoreIndex(dataset.table_schema, StoreConfig())
    index.bulk_load_columns(dataset.columns)

    heap = RowStoreTable(dataset.table_schema)
    heap.insert_many(dataset.rows())

    raw = heap.used_bytes
    page_compressed = table_page_compressed_size(heap)
    columnstore = index.size_bytes
    return {
        "name": name,
        "raw": raw,
        "page": page_compressed,
        "columnstore": columnstore,
        "page_ratio": raw / page_compressed,
        "cs_ratio": raw / columnstore,
    }


def run_experiment() -> list[dict]:
    return [measure_dataset(spec.name) for spec in DATASET_SPECS]


def test_e1_compression_table(benchmark, report_dir):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ReportTable(
        f"E1: compression ratios over raw row storage ({ROWS:,} rows/dataset)",
        ["dataset", "raw size", "PAGE ratio", "columnstore ratio", "CS vs PAGE"],
    )
    for r in results:
        report.add_row(
            r["name"],
            fmt_bytes(r["raw"]),
            round(r["page_ratio"], 2),
            round(r["cs_ratio"], 2),
            round(r["cs_ratio"] / r["page_ratio"], 2),
        )
    report.add_note("paper's Table-1 analogue: COLUMNSTORE vs PAGE compression")
    save_report(report_dir, "e1_compression.txt", report.render())

    # Shape assertions (the claims this experiment exercises).
    for r in results:
        assert r["cs_ratio"] > r["page_ratio"], (
            f"{r['name']}: columnstore ({r['cs_ratio']:.2f}x) must beat "
            f"PAGE ({r['page_ratio']:.2f}x)"
        )
    by_name = {r["name"]: r for r in results}
    assert by_name["low_ndv_ints"]["cs_ratio"] > by_name["high_ndv_ints"]["cs_ratio"]
    assert by_name["long_runs"]["cs_ratio"] > 10


@pytest.mark.parametrize("spec", DATASET_SPECS, ids=lambda s: s.name)
def test_e1_segment_compression_speed(benchmark, spec):
    """Micro: cost of compressing one row group of each dataset."""
    dataset = make_dataset(spec.name, min(ROWS, 1 << 17), seed=3)

    def compress_once():
        index = ColumnStoreIndex(dataset.table_schema, StoreConfig())
        index.bulk_load_columns(dataset.columns)
        return index.size_bytes

    size = benchmark.pedantic(compress_once, rounds=2, iterations=1)
    assert size > 0
