"""E9 — String predicates evaluated on encoded (dictionary) data.

The paper improved string filtering by evaluating predicates against the
dictionary (once per distinct value) instead of row by row on decoded
strings. We compare the scan with encoded-space evaluation on vs off for
equality, IN, and LIKE predicates over dictionary-encoded columns.

Expected shape: encoded evaluation wins, most for expensive predicates
(LIKE's regex) and low-NDV columns.
"""

from __future__ import annotations

import pytest

from conftest import save_report, scaled
from repro.bench.datagen import make_dataset
from repro.bench.harness import ReportTable, time_call
from repro.exec.expressions import Comparison, InList, Like, col, lit
from repro.exec.operators.scan import ColumnStoreScan
from repro.storage.columnstore import ColumnStoreIndex
from repro.storage.config import StoreConfig

ROWS = scaled(150_000)

PREDICATES = [
    ("equality", lambda: Comparison("=", col("country"), lit("DE"))),
    ("IN (3 values)", lambda: InList(col("country"), ["DE", "JP", "BR"])),
    ("LIKE on url", lambda: Like(col("url"), "/products/category-1%")),
    ("LIKE on agent", lambda: Like(col("agent"), "%rv:1.%")),
]


@pytest.fixture(scope="module")
def index():
    dataset = make_dataset("skewed_strings", ROWS, seed=8)
    store = ColumnStoreIndex(dataset.table_schema, StoreConfig(rowgroup_size=32_768))
    store.bulk_load_columns(dataset.columns)
    return store


def scan_rows(index, predicate, encoded: bool, out_col: str = "country") -> int:
    scan = ColumnStoreScan(
        index, [out_col], predicate=predicate, encoded_eval=encoded
    )
    return sum(batch.active_count for batch in scan.batches())


def run_sweep(index) -> list[dict]:
    results = []
    for label, make_predicate in PREDICATES:
        predicate = make_predicate()
        rows_on = scan_rows(index, predicate, True)
        rows_off = scan_rows(index, predicate, False)
        assert rows_on == rows_off, "encoded evaluation must not change results"
        timing_on = time_call(lambda: scan_rows(index, predicate, True), repeat=3)
        timing_off = time_call(lambda: scan_rows(index, predicate, False), repeat=3)
        results.append(
            {
                "label": label,
                "rows": rows_on,
                "on_ms": timing_on.seconds * 1000,
                "off_ms": timing_off.seconds * 1000,
            }
        )
    return results


def test_e9_run_space_int_predicates(benchmark, report_dir):
    """Companion: per-run evaluation on RLE value-encoded int columns."""
    import numpy as np

    from repro import schema as make_schema, types
    from repro.exec.expressions import Between

    n = scaled(200_000)
    sch = make_schema(("batch_id", types.INT, False), ("payload", types.INT, False))
    store = ColumnStoreIndex(
        sch, StoreConfig(rowgroup_size=65_536, bulk_load_threshold=10, reorder_rows=False)
    )
    run = 500
    store.bulk_load_columns(
        {
            "batch_id": np.repeat(np.arange(n // run, dtype=np.int32), run)[:n],
            "payload": (np.arange(n, dtype=np.int64) * 977).astype(np.int32),
        }
    )
    predicate = Between(col("batch_id"), lit(10), lit(40))

    def run_both():
        on = time_call(lambda: scan_rows(store, predicate, True, "payload"), repeat=5)
        off = time_call(lambda: scan_rows(store, predicate, False, "payload"), repeat=5)
        assert scan_rows(store, predicate, True, "payload") == scan_rows(
            store, predicate, False, "payload"
        )
        return on.seconds * 1000, off.seconds * 1000

    on_ms, off_ms = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report = ReportTable(
        f"E9b: per-run (RLE) predicate evaluation ({n:,} rows, runs of {run})",
        ["predicate", "run-space ms", "decode-then-eval ms", "win"],
    )
    report.add_row("BETWEEN over run column", round(on_ms, 2), round(off_ms, 2),
                   f"{off_ms / max(on_ms, 1e-9):.2f}x")
    report.add_note(
        "int predicates are cheap either way under NumPy (RLE decode is one "
        "np.repeat); the big encoded-space wins are the per-evaluation-"
        "expensive predicates of E9 (LIKE over dictionaries)"
    )
    save_report(report_dir, "e9b_run_space.txt", report.render())
    # For cheap vectorized predicates the honest claim is PARITY (see the
    # note above): assert run-space evaluation stays within noise of the
    # decode path rather than inventing a win the substrate cannot show.
    assert on_ms <= off_ms * 1.6


def test_e9_encoded_string_predicates(benchmark, report_dir, index):
    results = benchmark.pedantic(run_sweep, args=(index,), rounds=1, iterations=1)
    report = ReportTable(
        f"E9: string predicates on encoded vs decoded data ({ROWS:,} rows)",
        ["predicate", "matching rows", "encoded-space ms", "decode-then-eval ms", "win"],
    )
    for r in results:
        report.add_row(
            r["label"],
            r["rows"],
            round(r["on_ms"], 2),
            round(r["off_ms"], 2),
            f"{r['off_ms'] / max(r['on_ms'], 1e-9):.1f}x",
        )
    report.add_note("encoded space: one predicate evaluation per distinct value")
    save_report(report_dir, "e9_string_predicates.txt", report.render())

    for r in results:
        assert r["on_ms"] < r["off_ms"], f"{r['label']}: encoded eval must win"
    like_win = results[3]["off_ms"] / results[3]["on_ms"]
    assert like_win > 3.0, f"LIKE should win big, got {like_win:.1f}x"
