"""E18 — Multi-session concurrency: reader scaling and read/write mix.

Two questions about the session layer (DESIGN.md "Concurrency"):

1. **Do readers scale?** Snapshot-pinned SELECTs hold the shared lock
   only through bind/compile/pin and then execute lock-free, so N
   reader threads should achieve materially more aggregate statements/s
   than one (bounded by the GIL — the win comes from overlapping the
   numpy kernels that release it, not from magic).
2. **What does a writer cost readers?** With a writer streaming
   INSERTs, readers keep running against pinned snapshots; aggregate
   read throughput should degrade, not collapse — the writer serializes
   against *pins*, which are short, not against *executions*.

The fingerprint check from the stress test rides along: every reader
validates per-batch COUNT/SUM invariants on the fly, so the benchmark
doubles as a long-running consistency run. Wait counters come from the
``concurrency.*`` registry, not timing.
"""

from __future__ import annotations

import threading
import time

import pytest

from conftest import save_report, scaled
from repro.bench.harness import ReportTable
from repro.concurrency import ConcurrentDatabase
from repro.observability import MetricsRegistry
from repro.observability.registry import set_registry
from repro.storage.config import StoreConfig

_CONFIG = StoreConfig(rowgroup_size=8192, bulk_load_threshold=1000)

READER_COUNTS = (1, 2, 4, 8)
BATCH_ROWS = 50
READ_SECONDS = 1.0

_QUERY = (
    "SELECT batch, COUNT(*) AS c, SUM(v) AS s FROM f "
    "WHERE batch % 3 = 0 GROUP BY batch"
)


def _build(rows: int) -> ConcurrentDatabase:
    from repro.db.database import Database

    cdb = ConcurrentDatabase(Database(_CONFIG))
    with cdb.session("loader") as session:
        session.sql("CREATE TABLE f (batch INT NOT NULL, v INT NOT NULL)")
    batches = rows // BATCH_ROWS
    data = []
    for b in range(batches):
        data.extend((b, b * 100 + i) for i in range(BATCH_ROWS))
    cdb.db.insert("f", data)
    cdb.db.run_tuple_mover("f", include_open=True)
    return cdb


def _reader_loop(cdb, name, stop, counts, failures):
    ran = 0
    with cdb.session(name) as session:
        while not stop.is_set():
            result = session.sql(_QUERY)
            for batch_id, c, sm in result.rows:
                if c != BATCH_ROWS or sm != sum(
                    batch_id * 100 + i for i in range(BATCH_ROWS)
                ):
                    failures.append(f"{name}: torn batch {batch_id}")
                    stop.set()
                    return
            ran += 1
    counts.append(ran)


def run_reader_scaling(rows: int) -> list[dict]:
    """Aggregate read-only throughput vs number of reader sessions."""
    results = []
    for readers in READER_COUNTS:
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            cdb = _build(rows)
            stop = threading.Event()
            counts: list[int] = []
            failures: list[str] = []
            threads = [
                threading.Thread(
                    target=_reader_loop,
                    args=(cdb, f"r{i}", stop, counts, failures),
                )
                for i in range(readers)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            time.sleep(READ_SECONDS)
            stop.set()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            cdb.close()
            assert failures == []
            counters = registry.snapshot()
        finally:
            set_registry(previous)
        results.append(
            {
                "readers": readers,
                "statements": sum(counts),
                "stmt_per_s": sum(counts) / elapsed,
                "pins": counters.get("concurrency.snapshot_pins", 0),
                "read_waits": counters.get("concurrency.read_waits", 0),
            }
        )
    return results


def run_mixed_load(rows: int) -> dict:
    """Reader throughput while one writer streams committed inserts."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        cdb = _build(rows)
        stop = threading.Event()
        counts: list[int] = []
        failures: list[str] = []
        inserted = [0]

        def writer():
            next_batch = rows // BATCH_ROWS
            with cdb.session("writer") as session:
                while not stop.is_set():
                    b = next_batch
                    values = ", ".join(
                        f"({b}, {b * 100 + i})" for i in range(BATCH_ROWS)
                    )
                    session.sql(f"INSERT INTO f VALUES {values}")
                    next_batch += 1
                    inserted[0] += 1

        readers = [
            threading.Thread(
                target=_reader_loop, args=(cdb, f"r{i}", stop, counts, failures)
            )
            for i in range(4)
        ]
        writer_thread = threading.Thread(target=writer)
        start = time.perf_counter()
        for t in readers:
            t.start()
        writer_thread.start()
        time.sleep(READ_SECONDS)
        stop.set()
        for t in readers:
            t.join()
        writer_thread.join()
        elapsed = time.perf_counter() - start
        cdb.close()
        assert failures == []
        counters = registry.snapshot()
    finally:
        set_registry(previous)
    return {
        "readers": 4,
        "read_stmt_per_s": sum(counts) / elapsed,
        "writes_per_s": inserted[0] / elapsed,
        "read_waits": counters.get("concurrency.read_waits", 0),
        "write_waits": counters.get("concurrency.write_waits", 0),
    }


@pytest.fixture(scope="module")
def rows() -> int:
    return scaled(20_000)


def test_e18_concurrency(benchmark, report_dir, rows):
    def run():
        return run_reader_scaling(rows), run_mixed_load(rows)

    scaling, mixed = benchmark.pedantic(run, rounds=1, iterations=1)

    report = ReportTable(
        f"E18: snapshot-read scaling, {rows:,}-row table, "
        f"{READ_SECONDS:.0f}s per point",
        ["readers", "stmt/s", "pins", "read waits", "scale vs 1"],
    )
    base = scaling[0]
    for r in scaling:
        report.add_row(
            r["readers"],
            f"{r['stmt_per_s']:,.0f}",
            int(r["pins"]),
            int(r["read_waits"]),
            f"{r['stmt_per_s'] / base['stmt_per_s']:.2f}x",
        )
    report.add_note("every statement pinned a snapshot and ran lock-free")

    mixed_report = ReportTable(
        "E18: 4 readers + 1 writer streaming committed INSERTs",
        ["read stmt/s", "writes/s", "read waits", "write waits"],
    )
    mixed_report.add_row(
        f"{mixed['read_stmt_per_s']:,.0f}",
        f"{mixed['writes_per_s']:,.0f}",
        int(mixed["read_waits"]),
        int(mixed["write_waits"]),
    )
    mixed_report.add_note("readers validated per-batch fingerprints throughout")
    save_report(
        report_dir,
        "e18_concurrency.txt",
        report.render() + "\n\n" + mixed_report.render(),
    )

    # Readers actually read, and every read pinned (nothing fell back to
    # running under the lock).
    for r in scaling:
        assert r["statements"] > 0
        assert r["pins"] >= r["statements"]
    # The mixed load made progress on both sides: snapshot isolation is
    # worthless if the writer starves (or vice versa).
    assert mixed["read_stmt_per_s"] > 0
    assert mixed["writes_per_s"] > 0
