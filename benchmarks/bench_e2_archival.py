"""E2 — Archival compression (COLUMNSTORE_ARCHIVE): extra ratio and scan cost.

The paper's archival option runs encoded segments through an LZ77 codec
for cold data. Expected shape: a meaningful extra size reduction (the
paper cites ~1.3x-2x overall on top of columnstore compression) paid for
with slower scans.
"""

from __future__ import annotations

import time

from conftest import save_report, scaled
from repro.bench.datagen import DATASET_SPECS, make_dataset
from repro.bench.harness import ReportTable
from repro.storage.columnstore import ColumnStoreIndex
from repro.storage.config import StoreConfig

ROWS = scaled(40_000)


def _scan_all(index: ColumnStoreIndex) -> float:
    start = time.perf_counter()
    for group in index.directory.row_groups():
        for column in index.schema.names:
            group.decode_column(column)
    return time.perf_counter() - start


def run_experiment() -> list[dict]:
    results = []
    for spec in DATASET_SPECS:
        dataset = make_dataset(spec.name, ROWS, seed=23)
        index = ColumnStoreIndex(dataset.table_schema, StoreConfig())
        index.bulk_load_columns(dataset.columns)
        plain_size = index.size_bytes
        plain_scan = min(_scan_all(index) for _ in range(3))
        index.archive()
        archive_size = index.size_bytes
        archive_scan = min(_scan_all(index) for _ in range(3))
        results.append(
            {
                "name": spec.name,
                "plain": plain_size,
                "archive": archive_size,
                "extra_ratio": plain_size / archive_size,
                "plain_scan_ms": plain_scan * 1000,
                "archive_scan_ms": archive_scan * 1000,
                "scan_slowdown": archive_scan / max(plain_scan, 1e-9),
            }
        )
    return results


def test_e2_archival_table(benchmark, report_dir):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report = ReportTable(
        f"E2: archival compression on top of columnstore encoding ({ROWS:,} rows)",
        ["dataset", "plain KiB", "archive KiB", "extra ratio",
         "scan ms (plain)", "scan ms (archive)", "scan slowdown"],
    )
    for r in results:
        report.add_row(
            r["name"],
            round(r["plain"] / 1024, 1),
            round(r["archive"] / 1024, 1),
            round(r["extra_ratio"], 2),
            round(r["plain_scan_ms"], 2),
            round(r["archive_scan_ms"], 2),
            round(r["scan_slowdown"], 2),
        )
    report.add_note("archive = LZ77 (XPRESS stand-in) over encoded segments")
    save_report(report_dir, "e2_archival.txt", report.render())

    mean_extra = sum(r["extra_ratio"] for r in results) / len(results)
    assert mean_extra >= 1.15, f"archive extra ratio too small: {mean_extra:.2f}"
    slower = sum(1 for r in results if r["scan_slowdown"] > 1.0)
    assert slower >= len(results) - 1, "archive scans should be slower"


def test_e2_archive_roundtrip_speed(benchmark):
    """Micro: archiving one loaded index (compression throughput)."""
    dataset = make_dataset("skewed_strings", min(ROWS, 20_000), seed=5)
    index = ColumnStoreIndex(dataset.table_schema, StoreConfig())
    index.bulk_load_columns(dataset.columns)

    def archive_cycle():
        index.archive()
        size = index.size_bytes
        index.unarchive()
        return size

    assert benchmark.pedantic(archive_cycle, rounds=2, iterations=1) > 0
