"""E23 — Encoded-space aggregation: aggregate without decoding.

Scalar aggregates over an RLE column are folded run-by-run (one update
per run, weighted by surviving run length) and GROUP BY on a dictionary
column accumulates into a codes-sized table, decoding only the surviving
group keys. We run each query with the encoded path on and off and
compare wall time plus the storage counters that prove *why* it is
faster: ``storage.segments.decode_requests`` drops, and
``storage.scan.agg_runs_processed`` is a tiny fraction of the rows
aggregated.

Expected shape: encoded-on does near-zero decodes for the RLE scalar
query, processes ~runs (not ~rows), and produces bit-identical results.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import save_report, scaled

from repro import types
from repro.bench.harness import ReportTable, time_call
from repro.exec.operators.hash_aggregate import BatchHashAggregate, agg, count_star
from repro.exec.operators.scan import ColumnStoreScan, build_encoded_agg_request
from repro.observability import get_registry, snapshot_delta
from repro.schema import schema
from repro.storage.columnstore import ColumnStoreIndex
from repro.storage.config import StoreConfig

KEYS = np.array(
    ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"],
    dtype=object,
)


@pytest.fixture(scope="module")
def store():
    """Sorted fact table: ``run`` RLE-compresses, ``k`` dictionary-encodes."""
    rows = scaled(400_000)
    sch = schema(
        ("run", types.INT, False),
        ("k", types.VARCHAR, False),
        ("v", types.INT, False),
    )
    index = ColumnStoreIndex(
        sch,
        StoreConfig(
            rowgroup_size=max(4096, rows // 8),
            bulk_load_threshold=1000,
            reorder_rows=False,
        ),
    )
    rng = np.random.default_rng(23)
    run = np.sort(rng.integers(0, max(2, rows // 2000), size=rows)).astype(np.int64)
    k = KEYS[rng.integers(0, len(KEYS), size=rows)]
    v = rng.integers(0, 10_000, size=rows).astype(np.int64)
    index.bulk_load_columns({"run": run, "k": k, "v": v})
    return index


QUERIES = [
    (
        "scalar over RLE",
        ["run"],
        [],
        [count_star("n"), agg("sum", "run", "s"), agg("min", "run", "lo"),
         agg("max", "run", "hi")],
    ),
    (
        "GROUP BY dict key",
        ["k", "v"],
        ["k"],
        [count_star("n"), agg("sum", "v", "s"), agg("max", "v", "hi")],
    ),
]


def run_query(store, columns, keys, aggs, encoded):
    scan = ColumnStoreScan(store, columns)
    op = BatchHashAggregate(scan, keys, aggs)
    if encoded:
        op.encoded_request = build_encoded_agg_request(keys, aggs, columns)
        assert op.encoded_request is not None
    rows = []
    for batch in op.batches():
        rows.extend(batch.to_rows())
    return rows


def run_arms(store):
    registry = get_registry()
    results = []
    for label, columns, keys, aggs in QUERIES:
        arms = {}
        for encoded in (True, False):
            before = registry.snapshot()
            rows = run_query(store, columns, keys, aggs, encoded)
            counters = snapshot_delta(before, registry.snapshot())
            timing = time_call(
                lambda e=encoded: run_query(store, columns, keys, aggs, e), repeat=3
            )
            arms[encoded] = {
                "rows": rows,
                "ms": timing.seconds * 1000,
                "decodes": counters.get("storage.segments.decode_requests", 0),
                "runs": counters.get("storage.scan.agg_runs_processed", 0),
                "groups": counters.get("storage.scan.agg_code_space_groups", 0),
                "fallbacks": counters.get("storage.scan.agg_fallbacks", 0),
            }
        results.append({"label": label, "on": arms[True], "off": arms[False]})
    return results


def test_e23_encoded_aggregation(benchmark, report_dir, store):
    results = benchmark.pedantic(run_arms, args=(store,), rounds=1, iterations=1)
    rows_total = sum(g.row_count for g in store.directory.row_groups())
    report = ReportTable(
        f"E23: encoded-space aggregation ({rows_total:,} rows)",
        ["query", "ms (encoded)", "ms (decoded)", "win", "decodes on/off",
         "runs processed", "code-space groups"],
    )

    def sort_key(row):
        return tuple((v is None, str(type(v)), 0 if v is None else v) for v in row)

    for r in results:
        on, off = r["on"], r["off"]
        # The whole point: identical answers, bit for bit.
        assert sorted(on["rows"], key=sort_key) == sorted(off["rows"], key=sort_key)
        win = off["ms"] / max(on["ms"], 1e-9)
        report.add_row(
            r["label"],
            round(on["ms"], 2),
            round(off["ms"], 2),
            f"{win:.1f}x",
            f"{on['decodes']}/{off['decodes']}",
            on["runs"],
            on["groups"],
        )
    report.add_note("run-granular folding + code-space GROUP BY; results verified equal")
    save_report(report_dir, "e23_encoded_agg.txt", report.render())

    scalar, grouped = results[0], results[1]
    # Encoded-on must decode strictly fewer segments than decoded-off.
    assert scalar["on"]["decodes"] < scalar["off"]["decodes"]
    assert grouped["on"]["decodes"] < grouped["off"]["decodes"]
    # Run-granular folding touches runs, not rows.
    assert 0 < scalar["on"]["runs"] < rows_total / 10
    assert scalar["on"]["fallbacks"] == 0
    # GROUP BY accumulated in code space (bounded by dictionary size).
    assert grouped["on"]["groups"] > 0
    assert scalar["off"]["runs"] == 0 and grouped["off"]["groups"] == 0
