"""E14 (ablation) — Query-optimization enhancements on/off.

The paper's final contribution is optimizer work: pushing predicates into
scans, pruning columns, picking join sides, placing bitmaps. This
ablation compiles the same logical plans with the rewrite pipeline
disabled (`optimize=False`: filters stay above scans, scans read all
columns, no bitmaps) and compares.

Expected shape: the optimized plan wins on every query; the win is
largest when pushdown enables segment elimination or column pruning
drops wide columns.
"""

from __future__ import annotations

import pytest

from conftest import save_report, scaled
from repro.bench.harness import ReportTable, time_call
from repro.bench.star_schema import build_star_schema
from repro.sql.runner import plan_query
from repro.storage.config import StoreConfig

QUERIES = [
    ("narrow date range", "SELECT COUNT(*) AS n FROM store_sales WHERE ss_date_id BETWEEN 100 AND 120"),
    ("one column of many", "SELECT SUM(ss_net_paid) AS s FROM store_sales"),
    ("star join w/ dim filter",
     "SELECT COUNT(*) AS n FROM store_sales s JOIN customer c "
     "ON s.ss_customer_id = c.c_id WHERE c.c_region = 'east'"),
    ("selective conjunction",
     "SELECT COUNT(*) AS n FROM store_sales "
     "WHERE ss_quantity > 15 AND ss_sales_price > 250 AND ss_date_id < 200"),
]


@pytest.fixture(scope="module")
def star():
    config = StoreConfig(rowgroup_size=16_384, bulk_load_threshold=1000)
    return build_star_schema(scaled(150_000), storage="columnstore", seed=21, config=config)


def run_ablation(star) -> list[dict]:
    db = star.db
    results = []
    for label, sql in QUERIES:
        plan_opt = plan_query(db, sql)
        plan_naive = plan_query(db, sql)
        optimized = db.compile(plan_opt, optimize=True)
        naive = db.compile(plan_naive, optimize=False)
        rows_opt = sorted(optimized.rows())
        rows_naive = sorted(naive.rows())
        assert rows_opt == rows_naive, f"optimization changed results for {label}"
        t_opt = time_call(
            lambda: list(db.compile(plan_query(db, sql), optimize=True).rows()),
            repeat=3,
        )
        t_naive = time_call(
            lambda: list(db.compile(plan_query(db, sql), optimize=False).rows()),
            repeat=3,
        )
        results.append(
            {
                "label": label,
                "opt_ms": t_opt.seconds * 1000,
                "naive_ms": t_naive.seconds * 1000,
            }
        )
    return results


def test_e14_optimizer_ablation(benchmark, report_dir, star):
    results = benchmark.pedantic(run_ablation, args=(star,), rounds=1, iterations=1)
    report = ReportTable(
        f"E14 (ablation): optimizer rewrites on vs off ({star.fact_rows:,} fact rows)",
        ["query", "optimized ms", "naive plan ms", "win"],
    )
    for r in results:
        report.add_row(
            r["label"],
            round(r["opt_ms"], 1),
            round(r["naive_ms"], 1),
            f"{r['naive_ms'] / max(r['opt_ms'], 1e-9):.1f}x",
        )
    report.add_note(
        "naive = no pushdown / pruning / bitmap placement (filters above full scans)"
    )
    save_report(report_dir, "e14_optimizer.txt", report.render())

    for r in results:
        assert r["opt_ms"] <= r["naive_ms"] * 1.1, f"{r['label']}: optimizer must not lose"
    best = max(r["naive_ms"] / r["opt_ms"] for r in results)
    assert best >= 2.0, "at least one query should benefit substantially"
