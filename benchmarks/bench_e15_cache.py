"""E15 (extension) — Decoded-segment caching: cold vs warm scans.

The 2011/2013 engine caches decompressed column segments in memory, so
repeated scans of hot data skip decompression. We compare repeated query
latency with the cache off (every scan decompresses) and on (first scan
warms, later scans hit), on plain and archival-compressed data.

Expected shape: warm scans with the cache beat cold scans; the win is
largest for archival compression (whose decode is the most expensive).
"""

from __future__ import annotations

import pytest

from conftest import save_report, scaled
from repro.bench.harness import ReportTable, time_call
from repro.bench.star_schema import build_star_schema
from repro.storage.config import StoreConfig

QUERY = "SELECT SUM(ss_net_paid) AS s, AVG(ss_sales_price) AS p FROM store_sales"
ROWS = scaled(150_000)


def build(cache_bytes: int, archival: bool):
    config = StoreConfig(
        rowgroup_size=32_768,
        bulk_load_threshold=1000,
        segment_cache_bytes=cache_bytes,
    )
    star = build_star_schema(ROWS, storage="columnstore", seed=29, config=config)
    if archival:
        star.db.set_archival("store_sales", True)
    return star


def run_matrix() -> list[dict]:
    results = []
    for archival in (False, True):
        baseline = None
        for label, cache_bytes in (("cache off", 0), ("cache on (64 MiB)", 64 << 20)):
            star = build(cache_bytes, archival)
            star.db.sql(QUERY)  # warm (no-op when cache off)
            timing = time_call(lambda: star.db.sql(QUERY), repeat=3)
            index = star.db.table("store_sales").columnstore
            hit_rate = (
                index.segment_cache.stats.hit_rate if index.segment_cache else 0.0
            )
            if baseline is None:
                baseline = timing.seconds
            results.append(
                {
                    "storage": "archival" if archival else "plain",
                    "label": label,
                    "ms": timing.seconds * 1000,
                    "hit_rate": hit_rate,
                    "win": baseline / timing.seconds,
                }
            )
    return results


def test_e15_segment_cache(benchmark, report_dir):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    report = ReportTable(
        f"E15 (extension): decoded-segment cache, warm scans ({ROWS:,} rows)",
        ["storage", "config", "query ms", "cache hit rate", "win vs cache-off"],
    )
    for r in results:
        report.add_row(
            r["storage"],
            r["label"],
            round(r["ms"], 1),
            f"{r['hit_rate']:.0%}",
            f"{r['win']:.1f}x",
        )
    report.add_note("cache models SQL Server's in-memory decompressed-segment cache")
    save_report(report_dir, "e15_segment_cache.txt", report.render())

    by_key = {(r["storage"], r["label"]): r for r in results}
    plain_win = by_key[("plain", "cache on (64 MiB)")]["win"]
    archive_win = by_key[("archival", "cache on (64 MiB)")]["win"]
    assert plain_win > 1.1, "warm cached scans must beat decompress-every-time"
    assert archive_win > plain_win, "archival decode is dearest, so caching wins most"
    assert by_key[("plain", "cache on (64 MiB)")]["hit_rate"] > 0.5
