"""E5 — Segment elimination: scan cost vs predicate width.

Date-ordered fact data means narrow date-range predicates can skip whole
row groups using only segment [min, max] metadata. We sweep the predicate
width and compare scans with elimination on vs off.

Expected shape: with elimination on, time falls roughly in proportion to
the fraction of row groups touched; with it off, time stays flat.
"""

from __future__ import annotations

from conftest import save_report, scaled
from repro.bench.harness import ReportTable, time_call
from repro.bench.star_schema import build_star_schema
from repro.exec.expressions import Between, col, lit
from repro.exec.operators.scan import ColumnStoreScan
from repro.observability import get_registry, snapshot_delta
from repro.storage.config import StoreConfig

import pytest

# (label, date-id range) — fact dates span [0, 730).
SWEEP = [
    ("1 day", (100, 100)),
    ("1 week", (100, 106)),
    ("1 month", (100, 129)),
    ("1 quarter", (100, 189)),
    ("half year", (100, 282)),
    ("full range", (0, 729)),
]


@pytest.fixture(scope="module")
def star():
    # A dozen or so row groups model a many-row-group fact table at any
    # REPRO_BENCH_SCALE (the paper's tables have thousands of 2^20-row
    # groups); the low bulk-load threshold keeps reduced-scale runs on
    # the compressed path instead of in delta stores.
    rows = scaled(200_000)
    config = StoreConfig(rowgroup_size=max(1024, rows // 12), bulk_load_threshold=1000)
    return build_star_schema(rows, storage="columnstore", seed=2, config=config)


def scan_once(index, low, high, eliminate):
    scan = ColumnStoreScan(
        index,
        ["ss_net_paid"],
        predicate=Between(col("ss_date_id"), lit(low), lit(high)),
        segment_elimination=eliminate,
    )
    total = 0
    for batch in scan.batches():
        total += batch.active_count
    return scan, total


def run_sweep(star) -> list[dict]:
    index = star.db.table("store_sales").columnstore
    results = []
    registry = get_registry()
    for label, (low, high) in SWEEP:
        before = registry.snapshot()
        scan_on, rows_on = scan_once(index, low, high, True)
        counters = snapshot_delta(before, registry.snapshot())
        timing_on = time_call(lambda: scan_once(index, low, high, True), repeat=3)
        timing_off = time_call(lambda: scan_once(index, low, high, False), repeat=3)
        _, rows_off = scan_once(index, low, high, False)
        assert rows_on == rows_off, "elimination must not change results"
        # The engine-level counter must agree with the operator's own stats.
        eliminated = counters.get("storage.scan.units_eliminated", 0)
        assert eliminated == scan_on.stats.units_eliminated
        results.append(
            {
                "label": label,
                "rows": rows_on,
                "eliminated": eliminated,
                "total_units": counters.get("storage.scan.units_seen", 0),
                "on_ms": timing_on.seconds * 1000,
                "off_ms": timing_off.seconds * 1000,
            }
        )
    return results


def test_e5_segment_elimination(benchmark, report_dir, star):
    results = benchmark.pedantic(run_sweep, args=(star,), rounds=1, iterations=1)
    report = ReportTable(
        f"E5: segment elimination by date-range width "
        f"({star.fact_rows:,} date-ordered fact rows)",
        ["range", "qualifying rows", "groups skipped", "scan ms (elim on)",
         "scan ms (elim off)", "win"],
    )
    for r in results:
        win = r["off_ms"] / max(r["on_ms"], 1e-9)
        report.add_row(
            r["label"],
            r["rows"],
            f"{r['eliminated']}/{r['total_units']}",
            round(r["on_ms"], 2),
            round(r["off_ms"], 2),
            f"{win:.1f}x",
        )
    report.add_note("metadata-only skipping; identical results verified per point")
    save_report(report_dir, "e5_segment_elimination.txt", report.render())

    narrow, wide = results[0], results[-1]
    assert narrow["eliminated"] > 0, "narrow ranges must skip row groups"
    assert wide["eliminated"] == 0, "the full range cannot skip anything"
    assert narrow["on_ms"] < narrow["off_ms"] / 2, "elimination must pay off when narrow"
    # Monotone-ish: wider ranges touch at least as many groups.
    touched = [r["total_units"] - r["eliminated"] for r in results]
    assert touched == sorted(touched)
