"""E6 — Bitmap (Bloom) filter pushdown in star joins.

A hash join on a filtered dimension builds a bitmap over its join keys
and pushes it into the fact scan, so non-matching fact rows die before
reaching the join. We sweep the dimension predicate's selectivity and
compare with/without pushdown.

Expected shape: pushdown wins when the dimension predicate is selective
(few surviving build keys) and is ~neutral when it passes everything.
"""

from __future__ import annotations

import pytest

from conftest import save_report, scaled
from repro.bench.harness import ReportTable, time_call
from repro.bench.star_schema import build_star_schema

# c_region IN (...) of increasing width: 1 of 5 regions ... all 5.
REGION_SETS = [
    ("1 of 5 regions", "('east')"),
    ("2 of 5 regions", "('east', 'west')"),
    ("3 of 5 regions", "('east', 'west', 'north')"),
    ("all 5 regions", "('east', 'west', 'north', 'south', 'central')"),
]

SQL_TEMPLATE = (
    "SELECT COUNT(*) AS n, SUM(s.ss_net_paid) AS revenue FROM store_sales s "
    "JOIN customer c ON s.ss_customer_id = c.c_id "
    "WHERE c.c_region IN {regions}"
)


@pytest.fixture(scope="module")
def star():
    from repro.storage.config import StoreConfig

    config = StoreConfig(rowgroup_size=32_768, bulk_load_threshold=1000)
    return build_star_schema(
        scaled(150_000), storage="columnstore", seed=3, config=config
    )


def run_sweep(star) -> list[dict]:
    db = star.db
    results = []
    for label, regions in REGION_SETS:
        sql = SQL_TEMPLATE.format(regions=regions)
        with_bitmap = db.sql(sql, enable_bitmaps=True)
        without_bitmap = db.sql(sql, enable_bitmaps=False)
        assert with_bitmap.rows == without_bitmap.rows, "pushdown must not change results"
        timing_on = time_call(lambda: db.sql(sql, enable_bitmaps=True), repeat=3)
        timing_off = time_call(lambda: db.sql(sql, enable_bitmaps=False), repeat=3)
        results.append(
            {
                "label": label,
                "matching": with_bitmap.rows[0][0],
                "on_ms": timing_on.seconds * 1000,
                "off_ms": timing_off.seconds * 1000,
            }
        )
    return results


def test_e6_bitmap_pushdown(benchmark, report_dir, star):
    results = benchmark.pedantic(run_sweep, args=(star,), rounds=1, iterations=1)
    report = ReportTable(
        f"E6: bitmap pushdown in a star join ({star.fact_rows:,} fact rows)",
        ["dimension predicate", "matching fact rows", "with bitmap ms",
         "without bitmap ms", "win"],
    )
    for r in results:
        report.add_row(
            r["label"],
            r["matching"],
            round(r["on_ms"], 1),
            round(r["off_ms"], 1),
            f"{r['off_ms'] / max(r['on_ms'], 1e-9):.2f}x",
        )
    report.add_note("bitmap built by the join build side, probed inside the fact scan")
    save_report(report_dir, "e6_bitmap_pushdown.txt", report.render())

    selective = results[0]
    assert selective["on_ms"] < selective["off_ms"], (
        "pushdown must win on the selective predicate"
    )
    # Wider predicates shrink the win (monotone matching-row counts).
    matches = [r["matching"] for r in results]
    assert matches == sorted(matches)
