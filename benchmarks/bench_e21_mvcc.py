"""E21 — MVCC: lock-free readers under a sustained writer; disjoint-table
writer scaling.

Two claims from DESIGN.md "Multi-versioning", proven with engine
counters rather than wall clock alone:

1. **Readers never block on writers.** Reader threads hammer snapshot
   SELECTs while a writer commits continuously into the *same* table.
   The read path must take zero RW-lock waits (``concurrency.read_waits``
   delta == 0) and every read must go through the lock-free pinned path
   (``mvcc.lockfree_reads`` grows by exactly the statement count).

2. **Disjoint-table writers commit concurrently.** Two writers on
   different columnstore tables hold only the shared lock side plus
   their own table latches: the exclusive side is never taken
   (``concurrency.write_waits`` delta == 0), the latches never contend
   (``concurrency.latch_waits`` delta == 0), and every statement
   installed its own epoch (``mvcc.versions_installed`` delta == the
   committed statement count).
"""

from __future__ import annotations

import threading
import time

import pytest

from conftest import SCALE, save_report, scaled
from repro.bench.harness import ReportTable
from repro.concurrency import ConcurrentDatabase
from repro.db.database import Database
from repro.observability import registry as metrics

READERS = 3
READ_SECONDS = max(0.5, min(3.0, 2.0 * SCALE))
READ_QUERY = "SELECT COUNT(*) AS n, SUM(b) AS s FROM r WHERE a % 3 = 0"
WRITER_BATCH = 16


def _build() -> ConcurrentDatabase:
    db = Database()
    db.sql("CREATE TABLE r (a INT NOT NULL, b INT NOT NULL)")
    db.insert("r", [(i, i % 13) for i in range(scaled(20_000))])
    db.run_tuple_mover("r", include_open=True)
    db.sql("CREATE TABLE w1 (a INT NOT NULL, b INT NOT NULL)")
    db.sql("CREATE TABLE w2 (a INT NOT NULL, b INT NOT NULL)")
    return ConcurrentDatabase(db)


# ---------------------------------------------------------------------- #
# Phase 1: reader throughput while a writer commits into the same table
# ---------------------------------------------------------------------- #
def _read_loop(cdb, stop, latencies):
    with cdb.session() as session:
        while not stop.is_set():
            start = time.perf_counter()
            session.sql(READ_QUERY)
            latencies.append(time.perf_counter() - start)


def _sustained_writer(cdb, stop, counter, next_key):
    with cdb.session("sustained-writer") as session:
        key = next_key
        while not stop.is_set():
            values = ", ".join(f"({key + i}, {(key + i) % 13})" for i in range(WRITER_BATCH))
            session.sql(f"INSERT INTO r VALUES {values}")
            key += WRITER_BATCH
            counter.append(None)


def run_reader_throughput(cdb) -> dict:
    registry = metrics.get_registry()

    def measure(with_writer: bool) -> dict:
        before = registry.snapshot()
        stop = threading.Event()
        latencies = [[] for _ in range(READERS)]
        commits: list = []
        threads = [
            threading.Thread(target=_read_loop, args=(cdb, stop, latencies[i]))
            for i in range(READERS)
        ]
        if with_writer:
            threads.append(
                threading.Thread(
                    target=_sustained_writer,
                    args=(cdb, stop, commits, 10_000_000),
                )
            )
        started = time.perf_counter()
        for t in threads:
            t.start()
        time.sleep(READ_SECONDS)
        stop.set()
        for t in threads:
            t.join(timeout=30.0)
        elapsed = time.perf_counter() - started
        after = registry.snapshot()
        flat = sorted(lat for per in latencies for lat in per)
        return {
            "reads": len(flat),
            "reads_per_s": len(flat) / elapsed,
            "p50_ms": flat[len(flat) // 2] * 1000 if flat else float("nan"),
            "p99_ms": flat[int(len(flat) * 0.99)] * 1000 if flat else float("nan"),
            "commits": len(commits),
            "read_waits": after.get("concurrency.read_waits", 0)
            - before.get("concurrency.read_waits", 0),
            "lockfree_delta": after.get("mvcc.lockfree_reads", 0)
            - before.get("mvcc.lockfree_reads", 0),
        }

    quiet = measure(with_writer=False)
    contended = measure(with_writer=True)
    return {"quiet": quiet, "contended": contended}


# ---------------------------------------------------------------------- #
# Phase 2: two disjoint-table writers, serial vs concurrent
# ---------------------------------------------------------------------- #
def _writer_statements(table: str, statements: int, base: int) -> list[str]:
    return [
        "INSERT INTO %s VALUES %s"
        % (
            table,
            ", ".join(f"({base + n * 20 + k}, {k})" for k in range(20)),
        )
        for n in range(statements)
    ]


def run_disjoint_writers(cdb) -> dict:
    statements = max(40, int(300 * SCALE))
    registry = metrics.get_registry()
    work = {
        "w1": _writer_statements("w1", statements, 0),
        "w2": _writer_statements("w2", statements, 1_000_000),
    }

    def run_table(table: str) -> None:
        with cdb.session() as session:
            for statement in work[table]:
                session.sql(statement)

    serial_start = time.perf_counter()
    run_table("w1")
    run_table("w2")
    serial = time.perf_counter() - serial_start

    cdb.sql("DELETE FROM w1")
    cdb.sql("DELETE FROM w2")

    before = registry.snapshot()
    epoch_before = cdb.db.mvcc.current
    threads = [
        threading.Thread(target=run_table, args=(table,)) for table in ("w1", "w2")
    ]
    concurrent_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    concurrent = time.perf_counter() - concurrent_start
    after = registry.snapshot()

    return {
        "statements": statements * 2,
        "serial_s": serial,
        "concurrent_s": concurrent,
        "speedup": serial / concurrent if concurrent else float("nan"),
        "write_waits": after.get("concurrency.write_waits", 0)
        - before.get("concurrency.write_waits", 0),
        "latch_waits": after.get("concurrency.latch_waits", 0)
        - before.get("concurrency.latch_waits", 0),
        "epochs": cdb.db.mvcc.current - epoch_before,
    }


@pytest.fixture(scope="module")
def cdb() -> ConcurrentDatabase:
    with _build() as instance:
        yield instance


def test_e21_mvcc(benchmark, report_dir, cdb):
    def run():
        return run_reader_throughput(cdb), run_disjoint_writers(cdb)

    readers, writers = benchmark.pedantic(run, rounds=1, iterations=1)

    reader_report = ReportTable(
        f"E21: {READERS} snapshot readers, {READ_SECONDS:.1f}s windows",
        [
            "writer",
            "reads/s",
            "p50 (ms)",
            "p99 (ms)",
            "writer commits",
            "rwlock read waits",
        ],
    )
    for label, key in (("off", "quiet"), ("on (same table)", "contended")):
        stats = readers[key]
        reader_report.add_row(
            label,
            f"{stats['reads_per_s']:.0f}",
            f"{stats['p50_ms']:.2f}",
            f"{stats['p99_ms']:.2f}",
            stats["commits"],
            int(stats["read_waits"]),
        )
    reader_report.add_note(
        "every read pinned an epoch snapshot and ran with no lock held"
    )

    writer_report = ReportTable(
        f"E21: 2 disjoint-table writers, {writers['statements']} statements total",
        [
            "serial (s)",
            "concurrent (s)",
            "speedup",
            "excl-lock waits",
            "latch waits",
            "epochs installed",
        ],
    )
    writer_report.add_row(
        f"{writers['serial_s']:.2f}",
        f"{writers['concurrent_s']:.2f}",
        f"{writers['speedup']:.2f}x",
        int(writers["write_waits"]),
        int(writers["latch_waits"]),
        int(writers["epochs"]),
    )
    writer_report.add_note(
        "writers hold the shared lock side + their own table latch only"
    )
    save_report(
        report_dir,
        "e21_mvcc.txt",
        reader_report.render() + "\n\n" + writer_report.render(),
    )

    # Claim 1: the read path is lock-free under a sustained writer.
    contended = readers["contended"]
    assert contended["reads"] > 0 and contended["commits"] > 0
    assert contended["read_waits"] == 0, (
        f"snapshot reads took {contended['read_waits']} RW-lock waits"
    )
    assert contended["lockfree_delta"] >= contended["reads"]
    # Generous latency sanity bound — the claim is counters, not clocks.
    assert contended["p50_ms"] < 1000

    # Claim 2: disjoint-table writers never serialized on the exclusive
    # lock or on each other's latches, and each statement committed its
    # own epoch.
    assert writers["write_waits"] == 0, (
        f"{writers['write_waits']} exclusive-lock waits between disjoint writers"
    )
    assert writers["latch_waits"] == 0, (
        f"{writers['latch_waits']} latch waits between disjoint-table writers"
    )
    assert writers["epochs"] == writers["statements"]  # one epoch per commit
