"""E7 — Updatable columnstore: delta-store overhead and the tuple mover.

The 2014 enhancement makes column stores updatable via delta stores. Two
costs follow: trickle inserts are slower than bulk loads (they pay B-tree
maintenance), and queries slow down as more data sits uncompressed in
delta stores — until the tuple mover compresses it.

Expected shape: query time grows with the fraction of rows in delta
stores; running the tuple mover restores compressed-scan speed.
"""

from __future__ import annotations

import pytest

from conftest import save_report, scaled
from repro.bench.harness import ReportTable, time_call
from repro.bench.star_schema import STORE_SALES_SCHEMA, build_star_schema, generate_star_data
from repro.storage.config import StoreConfig

BASE_ROWS = scaled(60_000)
QUERY = (
    "SELECT ss_store_id, COUNT(*) AS n, SUM(ss_net_paid) AS revenue "
    "FROM store_sales GROUP BY ss_store_id"
)
DELTA_FRACTIONS = [0.0, 0.05, 0.1, 0.25, 0.5]


def build_with_delta_fraction(fraction: float):
    """A fact table with the given fraction of rows in delta stores."""
    config = StoreConfig(rowgroup_size=16_384, bulk_load_threshold=1000)
    star = build_star_schema(BASE_ROWS, storage="columnstore", seed=4, config=config)
    if fraction > 0:
        extra = int(BASE_ROWS * fraction / (1 - fraction))
        data = generate_star_data(extra, seed=99)["store_sales"]
        presented = [
            tuple(
                col.dtype.present(v)
                for col, v in zip(STORE_SALES_SCHEMA.columns, row)
            )
            for row in data
        ]
        star.db.insert("store_sales", presented)  # trickle path
    return star


def run_delta_sweep() -> list[dict]:
    results = []
    for fraction in DELTA_FRACTIONS:
        star = build_with_delta_fraction(fraction)
        index = star.db.table("store_sales").columnstore
        actual = index.fraction_in_delta
        timing = time_call(lambda: star.db.sql(QUERY), repeat=3)
        results.append(
            {
                "fraction": actual,
                "delta_rows": index.delta_rows,
                "query_ms": timing.seconds * 1000,
                "star": star,
            }
        )
    # Tuple mover on the worst case.
    worst = results[-1]["star"]
    worst.db.run_tuple_mover("store_sales", include_open=True)
    index = worst.db.table("store_sales").columnstore
    timing = time_call(lambda: worst.db.sql(QUERY), repeat=3)
    results.append(
        {
            "fraction": index.fraction_in_delta,
            "delta_rows": index.delta_rows,
            "query_ms": timing.seconds * 1000,
            "star": worst,
            "after_mover": True,
        }
    )
    return results


def test_e7_delta_store_overhead(benchmark, report_dir):
    results = benchmark.pedantic(run_delta_sweep, rounds=1, iterations=1)
    report = ReportTable(
        f"E7: query cost vs fraction of rows in delta stores "
        f"({BASE_ROWS:,}+ fact rows)",
        ["config", "% in delta", "delta rows", "group-by query ms"],
    )
    for r in results:
        label = "after tuple mover" if r.get("after_mover") else "trickle-loaded"
        report.add_row(
            label,
            f"{r['fraction'] * 100:.1f}%",
            r["delta_rows"],
            round(r["query_ms"], 1),
        )
    report.add_note("delta stores are scanned row-wise; compressed groups vectorized")
    save_report(report_dir, "e7_delta_overhead.txt", report.render())

    no_delta = results[0]["query_ms"]
    half_delta = results[len(DELTA_FRACTIONS) - 1]["query_ms"]
    after_mover = results[-1]["query_ms"]
    assert half_delta > no_delta * 1.5, "delta-heavy scans must be slower"
    assert results[-1]["delta_rows"] == 0
    assert after_mover < half_delta / 1.5, "tuple mover must restore speed"


def test_e7_trickle_insert_throughput(benchmark):
    """Micro: trickle-insert rate into the open delta store."""
    star = build_with_delta_fraction(0.0)
    rows = generate_star_data(2000, seed=7)["store_sales"]
    presented = [
        tuple(col.dtype.present(v) for col, v in zip(STORE_SALES_SCHEMA.columns, row))
        for row in rows
    ]

    def trickle():
        star.db.insert("store_sales", presented)
        return len(presented)

    assert benchmark.pedantic(trickle, rounds=3, iterations=1) == 2000
