"""Shared fixtures for the experiment benchmarks.

Every ``bench_eN_*.py`` regenerates one table/figure of the paper's
evaluation (see DESIGN.md's experiment index). Reports are written to
``benchmarks/reports/`` and printed, so a full
``pytest benchmarks/ --benchmark-only`` run leaves the paper-style tables
on disk for EXPERIMENTS.md.

Scales are chosen so the whole suite runs in a few minutes on a laptop;
set ``REPRO_BENCH_SCALE`` (a float multiplier) to grow or shrink them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    """Apply the global scale multiplier to a row count."""
    return max(1000, int(n * SCALE))


@pytest.fixture(scope="session")
def report_dir() -> Path:
    path = Path(__file__).parent / "reports"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def star_columnstore():
    """Star schema on clustered columnstore (the paper's configuration).

    8k-row groups give the 50k-row fact table several row groups, so
    segment elimination has something to skip (real tables have thousands
    of 2^20-row groups).
    """
    from repro.bench.star_schema import build_star_schema
    from repro.storage.config import StoreConfig

    return build_star_schema(
        scaled(50_000),
        storage="columnstore",
        seed=1,
        # Low bulk threshold so bench-scale loads take the direct-compress
        # path (the paper's bulk path) rather than landing in delta stores.
        config=StoreConfig(rowgroup_size=8192, bulk_load_threshold=1000),
    )


@pytest.fixture(scope="session")
def star_rowstore():
    """The same data on a row-store heap (the baseline configuration)."""
    from repro.bench.star_schema import build_star_schema

    return build_star_schema(scaled(50_000), storage="rowstore", seed=1)


def save_report(report_dir: Path, name: str, text: str) -> None:
    (report_dir / name).write_text(text + "\n")
    print()
    print(text)
