"""E10 — Hash join and hash aggregation under memory pressure (spilling).

The paper's enhanced operators degrade gracefully when the memory grant
is exhausted: the join goes Grace-style (partition both sides to disk),
the aggregate switches to local aggregation + partitioned partials. We
sweep the grant from ample to tiny.

Expected shape: results stay identical; cost degrades by a bounded factor
(not a cliff), growing as the grant shrinks.
"""

from __future__ import annotations

import pytest

from conftest import save_report, scaled
from repro.bench.harness import ReportTable, query_stats, time_call
from repro.bench.star_schema import build_star_schema

JOIN_SQL = (
    "SELECT c.c_segment, COUNT(*) AS n FROM store_sales s "
    "JOIN customer c ON s.ss_customer_id = c.c_id GROUP BY c.c_segment"
)
AGG_SQL = (
    "SELECT ss_customer_id, SUM(ss_net_paid) AS revenue "
    "FROM store_sales GROUP BY ss_customer_id"
)

# Grants in bytes: ample -> starved. The 2 KiB floor is below any
# build-side or aggregate-state footprint, so the last point spills at
# every REPRO_BENCH_SCALE (the engine's spill counters assert this).
GRANTS = [64 * 1024 * 1024, 256 * 1024, 64 * 1024, 16 * 1024, 2 * 1024]


@pytest.fixture(scope="module")
def star():
    from repro.storage.config import StoreConfig

    config = StoreConfig(rowgroup_size=32_768, bulk_load_threshold=1000)
    return build_star_schema(
        scaled(80_000), storage="columnstore", seed=9, config=config
    )


def _rounded(rows):
    """Round floats: spilling changes summation order by design, so exact
    float equality is not the correctness contract — value equality is."""
    return sorted(
        tuple(round(v, 4) if isinstance(v, float) else v for v in row) for row in rows
    )


def run_sweep(star) -> list[dict]:
    db = star.db
    baseline_join = _rounded(db.sql(JOIN_SQL).rows)
    baseline_agg = _rounded(db.sql(AGG_SQL).rows)
    results = []
    for grant in GRANTS:
        join_result = db.sql(JOIN_SQL, grant_bytes=grant)
        agg_result = db.sql(AGG_SQL, grant_bytes=grant)
        assert _rounded(join_result.rows) == baseline_join, "spilling changed join results"
        assert _rounded(agg_result.rows) == baseline_agg, "spilling changed agg results"
        join_timing = time_call(lambda: db.sql(JOIN_SQL, grant_bytes=grant), repeat=2)
        agg_timing = time_call(lambda: db.sql(AGG_SQL, grant_bytes=grant), repeat=2)
        # Engine counters confirm whether this grant actually spilled.
        join_stats = query_stats(db, JOIN_SQL, grant_bytes=grant)
        agg_stats = query_stats(db, AGG_SQL, grant_bytes=grant)
        results.append(
            {
                "grant": grant,
                "join_ms": join_timing.seconds * 1000,
                "agg_ms": agg_timing.seconds * 1000,
                "join_spill_bytes": join_stats["counters"].get("exec.spill.bytes_written", 0),
                "agg_spill_bytes": agg_stats["counters"].get("exec.spill.bytes_written", 0),
            }
        )
    return results


def test_e10_spilling(benchmark, report_dir, star):
    results = benchmark.pedantic(run_sweep, args=(star,), rounds=1, iterations=1)
    report = ReportTable(
        f"E10: operators under shrinking memory grants ({star.fact_rows:,} fact rows)",
        ["memory grant", "star join ms", "grouped agg ms",
         "join slowdown", "agg slowdown", "spill bytes (join/agg)"],
    )
    base = results[0]
    for r in results:
        grant_label = (
            f"{r['grant'] // (1024 * 1024)} MiB"
            if r["grant"] >= 1024 * 1024
            else f"{r['grant'] // 1024} KiB"
        )
        report.add_row(
            grant_label,
            round(r["join_ms"], 1),
            round(r["agg_ms"], 1),
            f"{r['join_ms'] / base['join_ms']:.2f}x",
            f"{r['agg_ms'] / base['agg_ms']:.2f}x",
            f"{int(r['join_spill_bytes']):,} / {int(r['agg_spill_bytes']):,}",
        )
    report.add_note("identical results verified at every grant before timing")
    report.add_note("spill bytes from the exec.spill.bytes_written engine counter")
    save_report(report_dir, "e10_spilling.txt", report.render())

    starved = results[-1]
    assert starved["join_ms"] > 0 and starved["agg_ms"] > 0
    # Graceful: bounded degradation, not a failure or a 100x cliff.
    assert starved["join_ms"] < base["join_ms"] * 30
    assert starved["agg_ms"] < base["agg_ms"] * 30
    # The ample grant must run in memory; the starved grant must spill —
    # asserted on the engine's own spill counters, not on timing.
    assert base["join_spill_bytes"] == 0 and base["agg_spill_bytes"] == 0
    assert starved["join_spill_bytes"] > 0
    assert starved["agg_spill_bytes"] > 0
