"""E13 (extension) — Exchange-based parallelism: scaling with DOP.

The paper's batch operators run under exchange-based parallelism and the
predecessor paper shows near-linear scan scaling with cores. Our exchange
uses real threads; NumPy kernels release the GIL, pure-Python sections do
not, so scaling saturates early — the shape we assert is therefore only
"parallel correctness + no pathological slowdown", with the measured
scaling reported for the record.
"""

from __future__ import annotations

import pytest

from conftest import save_report, scaled
from repro.bench.harness import ReportTable, time_call
from repro.bench.star_schema import build_star_schema
from repro.storage.config import StoreConfig

QUERY = (
    "SELECT ss_store_id, COUNT(*) AS n, SUM(ss_net_paid) AS revenue "
    "FROM store_sales GROUP BY ss_store_id"
)
DOPS = [1, 2, 4]


@pytest.fixture(scope="module")
def star():
    config = StoreConfig(rowgroup_size=16_384, bulk_load_threshold=1000)
    return build_star_schema(scaled(200_000), storage="columnstore", seed=17, config=config)


def _rounded(rows):
    """Exchange merges worker streams in arrival order, so float sums
    differ in the last ulps — compare values, not summation order."""
    return sorted(
        tuple(round(v, 3) if isinstance(v, float) else v for v in row) for row in rows
    )


def run_sweep(star) -> list[dict]:
    db = star.db
    baseline = _rounded(db.sql(QUERY, dop=1).rows)
    results = []
    for dop in DOPS:
        result = db.sql(QUERY, dop=dop)
        assert _rounded(result.rows) == baseline, f"dop={dop} changed results"
        timing = time_call(lambda: db.sql(QUERY, dop=dop), repeat=3)
        results.append({"dop": dop, "ms": timing.seconds * 1000})
    return results


def test_e13_parallel_scan(benchmark, report_dir, star):
    results = benchmark.pedantic(run_sweep, args=(star,), rounds=1, iterations=1)
    report = ReportTable(
        f"E13 (extension): exchange parallelism ({star.fact_rows:,} fact rows)",
        ["dop", "query ms", "speedup vs dop=1"],
    )
    base = results[0]["ms"]
    for r in results:
        report.add_row(r["dop"], round(r["ms"], 1), f"{base / r['ms']:.2f}x")
    report.add_note(
        "threads + GIL: NumPy kernels overlap, Python sections serialize; "
        "the paper's near-linear scaling needs a GIL-free substrate"
    )
    save_report(report_dir, "e13_parallel.txt", report.render())

    # Correctness is asserted inside run_sweep; performance-wise, parallel
    # execution must not collapse (thread overhead bounded).
    worst = max(r["ms"] for r in results)
    assert worst < base * 2.5, "parallelism must not cause pathological slowdown"
