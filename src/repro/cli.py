"""Interactive SQL shell: ``python -m repro [database-dir]``.

``python -m repro check <dir>`` runs the offline integrity scan instead
(per-file checksum + decode verdicts, WAL and WAL-archive verdicts; exit
status 1 if anything is bad — including archived segments a restore
would need but cannot reach).

``python -m repro backup <dir> <dest>`` takes a consistent, checksummed
backup (base image + covered WAL prefix) into ``dest``.

``python -m repro restore <backup> <dest> [--to-lsn N | --to-txn T |
--latest] [--archive DIR]`` restores a backup, replaying archived WAL up
to the requested commit boundary (``--latest`` is the default).

``python -m repro serve <dir> [--host H] [--port N]`` hosts the database
on a local socket: one session per connection, JSON-lines protocol,
snapshot reads concurrent with serialized writers (see repro.server).

A small REPL over :class:`repro.Database` with psql-style meta-commands:

    \\tables              list tables
    \\schema <table>      show a table's columns and storage
    \\sizes <table>       storage accounting (compression ratios)
    \\mode batch|row|auto force an execution mode
    \\explain <query>     show the optimized plan
    \\analyze <query>     execute and show per-operator runtime stats
    \\stats on|off        append runtime stats to every query result
    \\timing on|off       print per-statement wall-clock time
    \\save <dir>          persist the database (checkpoints the WAL)
    \\open <dir>          open a database with a write-ahead log
    \\check <dir>         verify a saved database (checksums, WAL, decode)
    \\backup <dir>        hot-backup the open database into <dir>
    \\wal                 show write-ahead log + archive status
    \\durability <mode>   per-commit | group | off
    \\mover <table>       run the tuple mover
    \\rebuild <table>     rebuild the columnstore
    \\q                   quit

``--durability <mode>`` on the command line sets the WAL mode the opened
database uses. Statements end with ``;`` and may span lines.
"""

from __future__ import annotations

import sys
import time
from typing import Any

from .db.database import Database, Result
from .errors import ReproError

_MAX_ROWS_SHOWN = 40


def format_result(result: Result, max_rows: int = _MAX_ROWS_SHOWN) -> str:
    """Render a query result as an aligned text table."""
    headers = result.columns
    shown = result.rows[:max_rows]
    cells = [[_format_value(v) for v in row] for row in shown]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows)} rows total, first {max_rows} shown)")
    else:
        lines.append(f"({len(result.rows)} row{'s' if len(result.rows) != 1 else ''})")
    return "\n".join(lines)


def _format_value(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


class Shell:
    """The REPL state machine (I/O-free core, testable directly)."""

    def __init__(
        self,
        db: Database | None = None,
        stats: bool = False,
        durability: str | None = None,
    ) -> None:
        self.db = db or Database()
        self.mode = "auto"
        self.timing = False
        self.stats = stats
        self.durability = durability  # WAL mode for \open, None = default
        self.running = True
        self._buffer: list[str] = []

    # ------------------------------------------------------------------ #
    # Line handling
    # ------------------------------------------------------------------ #
    def feed_line(self, line: str) -> list[str]:
        """Process one input line; returns output lines to print."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("\\"):
            return self.run_meta(stripped)
        if not stripped and not self._buffer:
            return []
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._buffer)
            self._buffer = []
            return self.run_sql(statement)
        return []

    @property
    def prompt(self) -> str:
        if self._buffer:
            return "   ...> "
        # The `*` marks an open transaction (psql's convention): work is
        # applied but not yet committed.
        return "repro*=> " if self.db.in_transaction else "repro=> "

    # ------------------------------------------------------------------ #
    # SQL statements
    # ------------------------------------------------------------------ #
    def run_sql(self, statement: str) -> list[str]:
        start = time.perf_counter()
        try:
            result = self.db.sql(statement, mode=self.mode, stats=self.stats)
        except ReproError as exc:
            return [f"error: {exc}"]
        elapsed = (time.perf_counter() - start) * 1000
        out: list[str] = []
        if result is None:
            out.append("ok")
        else:
            out.append(format_result(result))
            if result.stats is not None:
                out.extend(result.stats.render().split("\n"))
        if self.timing:
            out.append(f"time: {elapsed:.1f} ms ({self.mode} mode)")
        return out

    # ------------------------------------------------------------------ #
    # Meta commands
    # ------------------------------------------------------------------ #
    def run_meta(self, command: str) -> list[str]:
        parts = command.split(None, 1)
        name = parts[0]
        arg = parts[1].strip() if len(parts) > 1 else ""
        handler = {
            "\\q": self._meta_quit,
            "\\quit": self._meta_quit,
            "\\tables": self._meta_tables,
            "\\schema": self._meta_schema,
            "\\sizes": self._meta_sizes,
            "\\mode": self._meta_mode,
            "\\stats": self._meta_stats,
            "\\timing": self._meta_timing,
            "\\explain": self._meta_explain,
            "\\analyze": self._meta_analyze,
            "\\save": self._meta_save,
            "\\open": self._meta_open,
            "\\check": self._meta_check,
            "\\backup": self._meta_backup,
            "\\wal": self._meta_wal,
            "\\durability": self._meta_durability,
            "\\mover": self._meta_mover,
            "\\rebuild": self._meta_rebuild,
            "\\help": self._meta_help,
        }.get(name)
        if handler is None:
            return [f"unknown command {name} (try \\help)"]
        try:
            return handler(arg)
        except ReproError as exc:
            return [f"error: {exc}"]

    def _meta_quit(self, arg: str) -> list[str]:
        self.running = False
        return ["bye"]

    def _meta_tables(self, arg: str) -> list[str]:
        names = self.db.catalog.table_names()
        if not names:
            return ["(no tables)"]
        out = []
        for name in names:
            table = self.db.table(name)
            out.append(
                f"{name}  [{table.storage_kind.value}]  {table.row_count:,} rows"
            )
        return out

    def _meta_schema(self, arg: str) -> list[str]:
        if not arg:
            return ["usage: \\schema <table>"]
        table = self.db.table(arg)
        out = [f"{table.name} ({table.storage_kind.value}):"]
        for col in table.schema:
            out.append(f"  {col}")
        for index_name, index in table.indexes.items():
            out.append(f"  index {index_name} on ({', '.join(index.columns)})")
        return out

    def _meta_sizes(self, arg: str) -> list[str]:
        if not arg:
            return ["usage: \\sizes <table>"]
        table = self.db.table(arg)
        report = table.size_report()
        out = [f"{table.name}: {table.row_count:,} live rows"]
        if "columnstore_bytes" in report:
            ratio = report["columnstore_raw_bytes"] / max(1, report["columnstore_bytes"])
            out.append(
                f"  columnstore: {report['columnstore_bytes']:,} bytes "
                f"(raw {report['columnstore_raw_bytes']:,}, {ratio:.1f}x)"
            )
            index = table.columnstore
            out.append(
                f"  row groups: {len(index.directory)}, delta rows: "
                f"{index.delta_rows:,}, deleted marks: "
                f"{index.delete_bitmap.total_deleted:,}"
            )
        if "rowstore_used_bytes" in report:
            out.append(
                f"  rowstore: {report['rowstore_used_bytes']:,} bytes used "
                f"(PAGE-compressed est. {report['rowstore_page_compressed_bytes']:,})"
            )
        return out

    def _meta_mode(self, arg: str) -> list[str]:
        if arg not in ("batch", "row", "auto"):
            return [f"current mode: {self.mode} (usage: \\mode batch|row|auto)"]
        self.mode = arg
        return [f"execution mode set to {arg}"]

    def _meta_stats(self, arg: str) -> list[str]:
        if arg == "on":
            self.stats = True
        elif arg == "off":
            self.stats = False
        else:
            from .observability import registry as metrics

            registry = metrics.get_registry()
            out = [f"stats is {'on' if self.stats else 'off'}"]
            out.append(
                "transactions: "
                f"{registry.counter('txn.begins'):.0f} begun, "
                f"{registry.counter('txn.commits'):.0f} committed, "
                f"{registry.counter('txn.rollbacks'):.0f} rolled back, "
                f"{registry.counter('txn.statement_rollbacks'):.0f} "
                "statement rollbacks"
            )
            out.append(
                "governance: "
                f"{registry.counter('governance.statements_timed_out'):.0f} "
                "timed out, "
                f"{registry.counter('governance.statements_cancelled'):.0f} "
                "cancelled, "
                f"{registry.counter('governance.statements_killed'):.0f} killed, "
                f"{registry.counter('governance.statements_shed'):.0f} shed"
            )
            out.append(
                "memory: "
                f"{registry.counter('governance.spills_forced'):.0f} "
                "spills forced, "
                f"{registry.counter('governance.budget_rejections'):.0f} "
                "budget rejections"
            )
            oldest = registry.gauge("mvcc.oldest_active_epoch")
            out.append(
                "mvcc: "
                f"{registry.counter('mvcc.versions_installed'):.0f} "
                "versions installed, "
                f"{registry.counter('mvcc.versions_gced'):.0f} gced, "
                f"{registry.counter('mvcc.lockfree_reads'):.0f} lock-free reads, "
                f"{registry.counter('mvcc.reader_pins'):.0f} reader pins, "
                "oldest active epoch "
                f"{oldest if oldest is not None else 0:.0f}"
            )
            from .governance import get_query_registry

            running = get_query_registry().list_running()
            if running:
                out.append(f"running queries: {len(running)} (SHOW QUERIES for detail)")
            if self.db.in_transaction:
                out.append("a transaction is open (COMMIT or ROLLBACK to end it)")
            return out
        return [f"stats {'on' if self.stats else 'off'}"]

    def _meta_timing(self, arg: str) -> list[str]:
        if arg == "on":
            self.timing = True
        elif arg == "off":
            self.timing = False
        else:
            return [f"timing is {'on' if self.timing else 'off'}"]
        return [f"timing {'on' if self.timing else 'off'}"]

    def _meta_explain(self, arg: str) -> list[str]:
        if not arg:
            return ["usage: \\explain <select statement>"]
        return self.db.explain(arg.rstrip(";"), mode=self.mode).split("\n")

    def _meta_analyze(self, arg: str) -> list[str]:
        if not arg:
            return ["usage: \\analyze <select statement>"]
        return self.db.explain_analyze(arg.rstrip(";"), mode=self.mode).split("\n")

    def _meta_save(self, arg: str) -> list[str]:
        if not arg:
            return ["usage: \\save <directory>"]
        self.db.save(arg)
        return [f"saved to {arg}"]

    def _meta_open(self, arg: str) -> list[str]:
        if not arg:
            return ["usage: \\open <directory>"]
        self.db.close()
        self.db = Database.open(arg, durability=self.durability or "group")
        out = [f"opened {arg} ({len(self.db.catalog.table_names())} tables)"]
        if self.db.wal is not None:
            status = self.db.wal.status()
            out.append(
                f"wal: durability={status['durability']}, "
                f"last LSN {status['last_lsn']}"
            )
        return out

    def _meta_check(self, arg: str) -> list[str]:
        if not arg:
            return ["usage: \\check <directory>"]
        return Database.check(arg).render()

    def _meta_backup(self, arg: str) -> list[str]:
        if not arg:
            return ["usage: \\backup <directory>"]
        if self.db.wal is None:
            return ["no write-ahead log attached (use \\open <dir>)"]
        result = self.db.backup(arg)
        return [
            f"backup of {result.files} files ({result.bytes:,} bytes) "
            f"committed to {result.dest}",
            f"cut at LSN {result.backup_lsn} (epoch {result.epoch}, "
            f"checkpoint LSN {result.checkpoint_lsn}, "
            f"{result.wal_records} WAL records)",
        ]

    def _meta_wal(self, arg: str) -> list[str]:
        if self.db.wal is None:
            return ["no write-ahead log attached (use \\open <dir>)"]
        status = self.db.wal.status()
        out = [
            f"durability: {status['durability']} "
            f"(group size {status['group_commit_size']})",
            f"last LSN: {status['last_lsn']} "
            f"(durable through {status['durable_lsn']}, "
            f"{status['pending_commits']} commits pending)",
            f"segments: {status['segments']} ({status['bytes']:,} bytes)",
        ]
        archive = status.get("archive")
        if archive is not None:
            out.append(
                f"archive: {archive['archived_segments']} segments archived "
                f"(last archived LSN {archive['last_archived_lsn']}), "
                f"{archive['pending_segments']} live segments pending, "
                f"{archive['registered_backups']} backups registered"
            )
        return out

    def _meta_durability(self, arg: str) -> list[str]:
        if self.db.wal is None:
            return ["no write-ahead log attached (use \\open <dir>)"]
        if not arg:
            return [f"durability is {self.db.wal.durability}"]
        try:
            self.db.set_durability(arg)
        except ValueError as exc:
            return [f"error: {exc}"]
        return [f"durability set to {self.db.wal.durability}"]

    def _meta_mover(self, arg: str) -> list[str]:
        if not arg:
            return ["usage: \\mover <table>"]
        report = self.db.run_tuple_mover(arg, include_open=True)
        return [
            f"moved {report.rows_moved:,} rows from "
            f"{report.delta_stores_compressed} delta stores into "
            f"{report.row_groups_created} row groups"
        ]

    def _meta_rebuild(self, arg: str) -> list[str]:
        if not arg:
            return ["usage: \\rebuild <table>"]
        self.db.rebuild(arg)
        return [f"rebuilt {arg}"]

    def _meta_help(self, arg: str) -> list[str]:
        return [line.strip() for line in (__doc__ or "").split("\n") if "\\" in line]


def main(argv: list[str] | None = None) -> int:
    args = list(argv) if argv is not None else sys.argv[1:]
    stats = "--stats" in args
    args = [a for a in args if a != "--stats"]
    durability = None
    if "--durability" in args:
        at = args.index("--durability")
        if at + 1 >= len(args):
            print("usage: python -m repro [--durability per-commit|group|off] [dir]")
            return 2
        durability = args[at + 1]
        del args[at : at + 2]
    if args and args[0] == "serve":
        # `repro serve <dir> [--port N] [--host H] [--max-connections N]
        # [--max-statements N] [--idle-timeout S]`: host the database
        # on a local socket — one session per connection, JSON lines
        # (see repro.server). Blocks until Ctrl-C, then drains.
        usage = (
            "usage: python -m repro serve <directory> [--host H] [--port N] "
            "[--max-connections N] [--max-statements N] [--idle-timeout S]"
        )
        rest = args[1:]
        host = None
        numeric = {
            "--port": 0,
            "--max-connections": None,
            "--max-statements": None,
            "--idle-timeout": None,
        }
        if "--host" in rest:
            at = rest.index("--host")
            if at + 1 >= len(rest):
                print(usage)
                return 2
            host = rest[at + 1]
            del rest[at : at + 2]
        for flag in list(numeric):
            if flag not in rest:
                continue
            at = rest.index(flag)
            if at + 1 >= len(rest):
                print(usage)
                return 2
            parse = float if flag == "--idle-timeout" else int
            try:
                numeric[flag] = parse(rest[at + 1])
            except ValueError:
                print(f"invalid {flag} value {rest[at + 1]!r}")
                return 2
            del rest[at : at + 2]
        if len(rest) != 1:
            print(usage)
            return 2
        from .server import DEFAULT_HOST, serve
        from .server.server import DEFAULT_MAX_CONNECTIONS, DEFAULT_MAX_STATEMENTS

        try:
            return serve(
                rest[0],
                host=host or DEFAULT_HOST,
                port=numeric["--port"],
                max_connections=numeric["--max-connections"]
                or DEFAULT_MAX_CONNECTIONS,
                max_statements=numeric["--max-statements"] or DEFAULT_MAX_STATEMENTS,
                idle_timeout=numeric["--idle-timeout"],
                durability=durability or "group",
            )
        except (ReproError, OSError) as exc:
            print(f"serve failed: {exc}")
            return 1
    if args and args[0] == "check":
        # `repro check <dir>`: offline integrity scan. Exit 0 only when
        # the report is clean — corruption, a missing directory, or a
        # scan that itself blows up must all fail the invocation, so CI
        # and scripts can gate on the status code.
        if len(args) < 2:
            print("usage: python -m repro check <directory>")
            return 2
        try:
            report = Database.check(args[1])
        except (ReproError, OSError) as exc:
            print(f"check failed: {exc}")
            return 1
        print("\n".join(report.render()))
        return 0 if report.ok else 1
    if args and args[0] == "backup":
        # `repro backup <dir> <dest>`: open the database (replaying its
        # WAL) and take a verified hot backup. Exit 0 only when the
        # backup committed and passed read-back verification.
        if len(args) != 3:
            print("usage: python -m repro backup <directory> <dest>")
            return 2
        try:
            db = Database.load(args[1], durability=durability)
            try:
                result = db.backup(args[2])
            finally:
                db.close()
        except (ReproError, OSError) as exc:
            print(f"backup failed: {exc}")
            return 1
        print(
            f"backup of {result.files} files ({result.bytes:,} bytes) "
            f"committed to {result.dest}"
        )
        print(
            f"cut at LSN {result.backup_lsn} (epoch {result.epoch}, "
            f"checkpoint LSN {result.checkpoint_lsn}, "
            f"{result.wal_records} WAL records)"
        )
        return 0
    if args and args[0] == "restore":
        # `repro restore <backup> <dest> [--to-lsn N | --to-txn T |
        # --latest] [--archive DIR]`: point-in-time restore. A target
        # the available history cannot reach (mid-transaction LSN, or
        # past what the archive holds) exits nonzero with the nearest
        # valid boundaries named.
        usage = (
            "usage: python -m repro restore <backup> <dest> "
            "[--to-lsn N | --to-txn T | --latest] [--archive DIR]"
        )
        rest = args[1:]
        to_lsn = to_txn = None
        archive_dir = None
        for flag in ("--to-lsn", "--to-txn", "--archive"):
            if flag not in rest:
                continue
            at = rest.index(flag)
            if at + 1 >= len(rest):
                print(usage)
                return 2
            value = rest[at + 1]
            if flag == "--archive":
                archive_dir = value
            else:
                try:
                    parsed = int(value)
                except ValueError:
                    print(f"invalid {flag} value {value!r}")
                    return 2
                if flag == "--to-lsn":
                    to_lsn = parsed
                else:
                    to_txn = parsed
            del rest[at : at + 2]
        rest = [a for a in rest if a != "--latest"]
        if len(rest) != 2:
            print(usage)
            return 2
        from .backup.restore import restore_backup

        try:
            result = restore_backup(
                rest[0], rest[1], to_lsn=to_lsn, to_txn=to_txn, archive=archive_dir
            )
        except (ReproError, OSError) as exc:
            print(f"restore failed: {exc}")
            return 1
        print(
            f"restored {rest[0]} to {result.dest} at LSN {result.target_lsn} "
            f"({result.records} WAL records laid down for replay)"
        )
        report = Database.check(result.dest)
        print("\n".join(report.render()))
        return 0 if report.ok else 1
    shell = Shell(stats=stats, durability=durability)
    if args:
        # Opening the named database must succeed or the invocation
        # fails — silently continuing with an empty in-memory database
        # (and exit 0) would let scripts write into the void.
        try:
            print("\n".join(shell.run_meta(f"\\open {args[0]}")))
        except ReproError as exc:
            print(f"error: {exc}")
            return 1
        if shell.db.wal is None:
            return 1
    print("repro SQL shell — \\help for commands, \\q to quit")
    while shell.running:
        try:
            line = input(shell.prompt)
        except (EOFError, KeyboardInterrupt):
            print()
            break
        for out in shell.feed_line(line):
            print(out)
    shell.db.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - interactive entry
    raise SystemExit(main())
