"""Exception hierarchy for the repro engine.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch a single base class. Subsystems raise the most specific
subclass that applies; messages always name the offending object (column,
table, token, ...) because these errors surface directly to users.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine.

    ``retryable`` partitions the taxonomy for clients: transient
    conditions (admission rejection, lock-acquire timeout, cancellation,
    resource exhaustion) are safe to retry after a backoff, while
    semantic failures (syntax, binding, constraint violations) will fail
    the same way every time.
    """

    retryable = False


class RetryableError(ReproError):
    """A transient failure: the same statement may succeed if retried.

    The server surfaces ``retryable`` in error payloads and
    :class:`~repro.server.ServerClient` retries these classes with
    jittered exponential backoff.
    """

    retryable = True


class SchemaError(ReproError):
    """Invalid schema definition: duplicate columns, bad types, arity mismatch."""


class TypeMismatchError(ReproError):
    """A value or expression does not match the expected column/operand type."""


class StorageError(ReproError):
    """Corruption or misuse detected inside the storage layer."""


class EncodingError(StorageError):
    """A column segment could not be encoded or decoded."""


class CorruptBlobError(EncodingError):
    """A persisted blob is truncated, bit-flipped, or otherwise corrupt.

    Raised by bounds-checked decode paths (segment blobs, row blobs) and
    by checksum verification at load time. ``path`` names the offending
    file when the corruption was found on disk.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)
        self.path = path


class RecoveryError(StorageError):
    """A saved database directory cannot be opened.

    Covers missing/unparseable manifests, files listed in the manifest
    but absent on disk, and metadata that fails structural validation.
    Distinct from :class:`CorruptBlobError`, which means a present file
    has bad bytes.
    """


class WalCorruptError(StorageError):
    """A write-ahead-log segment is damaged beyond the tolerated torn tail.

    Raised when a bad record is followed by well-formed records (mid-log
    corruption), when segments are non-contiguous (an LSN gap), or when
    the log no longer connects to the snapshot's checkpoint LSN. The
    message names the offending segment file and byte offset. A torn
    *final* record is not an error — recovery truncates it.
    """

    def __init__(
        self, message: str, segment: str | None = None, offset: int | None = None
    ) -> None:
        if segment is not None:
            where = segment if offset is None else f"{segment} @ byte {offset}"
            message = f"{where}: {message}"
        super().__init__(message)
        self.segment = segment
        self.offset = offset


class ReplayError(StorageError):
    """Re-applying a structurally valid WAL record to the database failed.

    Means the log and the snapshot diverged (a record references a table,
    locator, or row the reconstructed state does not have) — distinct
    from :class:`WalCorruptError`, which means bad bytes in the log
    itself. The message names the record's LSN and type.
    """


class BackupError(StorageError):
    """A backup image is unusable or could not be taken.

    Raised when a backup manifest is missing/corrupt, a file listed in it
    fails size/CRC verification, or the read-back verification of a
    freshly written backup fails. A backup that raises this is *never*
    restorable-as-valid — restore refuses before touching the destination.
    """


class RestoreError(StorageError):
    """A restore could not run or could not complete.

    Covers a non-empty destination, a missing/gapped WAL archive, and
    interrupted-restore markers. Distinct from :class:`BackupError`,
    which means the *source* image is bad.
    """


class RestoreTargetError(RestoreError):
    """The requested point-in-time target is not a commit boundary.

    Raised for ``--to-lsn`` values that land inside an explicit
    transaction (or on no record at all) and for ``--to-txn`` ids that
    never committed in the available log. The message names the
    enclosing transaction and the nearest valid boundaries.
    """

    def __init__(
        self,
        message: str,
        target: int | None = None,
        previous_boundary: int | None = None,
        next_boundary: int | None = None,
    ) -> None:
        super().__init__(message)
        self.target = target
        self.previous_boundary = previous_boundary
        self.next_boundary = next_boundary


class TxnError(ReproError):
    """Misuse of the transaction API.

    Raised for BEGIN inside an open transaction, COMMIT/ROLLBACK with no
    transaction open, and for operations that refuse to run while a
    transaction is open (checkpointing ``save``, the tuple mover and
    other maintenance — they would persist or reorganize uncommitted
    rows). Statement *failures* inside a transaction are not TxnErrors:
    the statement's own error propagates after its effects are undone.
    """


class ConcurrencyError(ReproError):
    """Misuse of the multi-session concurrency layer.

    Raised for statements against a closed session or server, for a
    reader/writer lock acquisition that exceeds its timeout (a likely
    sign of a session idling inside BEGIN..COMMIT while holding the
    write side), and for session-ownership violations (one session
    trying to COMMIT another session's transaction).
    """


class LockTimeoutError(RetryableError, ConcurrencyError):
    """A reader/writer lock acquisition exceeded its timeout budget.

    Retryable: the holder usually finishes (or is itself killed) soon
    after; catching plain :class:`ConcurrencyError` still works for
    callers that predate the split.
    """


class QueryCancelledError(RetryableError):
    """The statement was cancelled at a cooperative checkpoint.

    Raised when a client requested cancel on its own statement. The
    statement's effects are rolled back through the undo machinery, so
    retrying is safe — hence retryable.
    """

    def __init__(self, message: str, query_id: int | None = None) -> None:
        super().__init__(message)
        self.query_id = query_id


class QueryKilledError(QueryCancelledError):
    """The statement was killed by another session via ``KILL <id>``."""


class QueryTimeoutError(ReproError):
    """The statement exceeded its ``statement_timeout`` deadline.

    Deliberately *not* retryable: re-running the same statement with the
    same timeout will usually time out again — the client should raise
    the timeout or change the query, not hammer the server.
    """

    def __init__(self, message: str, query_id: int | None = None) -> None:
        super().__init__(message)
        self.query_id = query_id


class AdmissionError(RetryableError):
    """The server shed this request: too many connections or statements.

    Pure load shedding — nothing executed, so a retry after backoff is
    always safe.
    """


class CatalogError(ReproError):
    """Unknown or duplicate table / column / index name."""


class PlanningError(ReproError):
    """The planner could not produce a physical plan for a logical query."""


class BindingError(PlanningError):
    """Name resolution or type checking of a query failed."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    ``position`` is the character offset into the statement text;
    ``line`` / ``column`` (both 1-based) are filled in when the parser
    has the source text at hand, and take over the message suffix so
    errors point at the offending token in multi-line statements.
    """

    def __init__(
        self,
        message: str,
        position: int | None = None,
        line: int | None = None,
        column: int | None = None,
    ) -> None:
        if line is not None and column is not None:
            message = f"{message} (line {line}, column {column})"
        elif position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position
        self.line = line
        self.column = column


class ExecutionError(ReproError):
    """A runtime failure while executing a physical plan."""


class SpillBudgetError(ExecutionError):
    """An operator exceeded its memory grant and spilling was disabled."""


class ResourceExhaustedError(RetryableError, ExecutionError):
    """A hard memory cap (per-query or process-wide) was exceeded.

    Raised instead of letting an oversized operator OOM the process.
    Retryable: concurrent queries release their reservations as they
    finish, so the same statement may fit on a later attempt.
    """


class ConstraintError(ReproError):
    """A DML statement violated a declared constraint (e.g. NOT NULL)."""
