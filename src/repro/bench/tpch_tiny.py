"""A tiny, deterministic TPC-H-derived dataset for the SQL battery.

Three core tables — ``customer`` (30 rows), ``orders`` (150 rows),
``lineitem`` (600 rows) — shaped like the TPC-H subset the battery's
adapted queries need, plus ``bucket``, a small nullable-heavy table for
three-valued-logic statements. Every value is derived from a seeded
generator, so the battery and the sqlite oracle both load byte-identical
data on every run.

Deliberate data properties the battery leans on:

* Valid foreign keys throughout (``o_custkey`` -> ``customer``,
  ``l_orderkey`` -> ``orders``), but a fixed fifth of customers place no
  orders — exercising anti joins and TPC-H Q13's zero-order count bucket.
* Order comments mix NULLs with strings, some matching
  ``%special%requests%`` so Q13's NOT LIKE filter removes real rows.
* Dates span 1995-01-01 .. 1998-08-02 (the classic TPC-H window), and a
  slice of lineitems have ``l_commitdate < l_receiptdate`` for Q4/Q12.
* ``bucket`` has NULLs in both its group key and value columns so IN /
  NOT IN / EXISTS statements hit every 3VL corner.
"""

from __future__ import annotations

import random

from .. import types
from ..db.database import Database
from ..schema import schema
from ..storage.config import StoreConfig

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIPMODES = ["AIR", "MAIL", "SHIP", "TRUCK", "RAIL", "REG AIR", "FOB"]
_STATUSES = ["O", "F", "P"]
_FLAGS = ["A", "N", "R"]

N_CUSTOMERS = 30
N_ORDERS = 150
N_LINEITEMS = 600
N_BUCKET = 40

_EPOCH_1995 = types.DATE.coerce("1995-01-01")
_N_DAYS = 1310  # through 1998-08-02

CUSTOMER_SCHEMA = schema(
    ("c_custkey", types.INT, False),
    ("c_name", types.VARCHAR, False),
    ("c_nationkey", types.INT, False),
    ("c_phone", types.VARCHAR, False),
    ("c_acctbal", types.decimal(2), False),
    ("c_mktsegment", types.VARCHAR, False),
    ("c_comment", types.VARCHAR, True),
)

ORDERS_SCHEMA = schema(
    ("o_orderkey", types.INT, False),
    ("o_custkey", types.INT, False),
    ("o_orderstatus", types.VARCHAR, False),
    ("o_totalprice", types.decimal(2), False),
    ("o_orderdate", types.DATE, False),
    ("o_orderpriority", types.VARCHAR, False),
    ("o_comment", types.VARCHAR, True),
)

LINEITEM_SCHEMA = schema(
    ("l_orderkey", types.INT, False),
    ("l_linenumber", types.INT, False),
    ("l_quantity", types.INT, False),
    ("l_extendedprice", types.decimal(2), False),
    ("l_discount", types.decimal(2), False),
    ("l_tax", types.decimal(2), True),
    ("l_returnflag", types.VARCHAR, False),
    ("l_linestatus", types.VARCHAR, False),
    ("l_shipdate", types.DATE, False),
    ("l_commitdate", types.DATE, False),
    ("l_receiptdate", types.DATE, False),
    ("l_shipmode", types.VARCHAR, False),
)

BUCKET_SCHEMA = schema(
    ("id", types.INT, False),
    ("grp", types.VARCHAR, True),
    ("v", types.INT, True),
)

SCHEMAS = {
    "customer": CUSTOMER_SCHEMA,
    "orders": ORDERS_SCHEMA,
    "lineitem": LINEITEM_SCHEMA,
    "bucket": BUCKET_SCHEMA,
}


def _iso(day: int) -> str:
    return str(types.DATE.present(_EPOCH_1995 + day))


def generate_tpch_tiny(seed: int = 7) -> dict[str, list[tuple]]:
    """All four tables' rows in *user* form (ISO dates, float decimals)."""
    rng = random.Random(seed)

    customers = []
    for key in range(1, N_CUSTOMERS + 1):
        customers.append(
            (
                key,
                f"Customer#{key:09d}",
                rng.randrange(0, 5),
                f"{10 + key % 25}-{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}",
                round(rng.uniform(-900.0, 9900.0), 2),
                _SEGMENTS[key % len(_SEGMENTS)],
                None if key % 7 == 0 else f"comment for customer {key}",
            )
        )

    # A fixed fifth of customers never order: Q13's zero bucket, anti joins.
    silent = {key for key in range(1, N_CUSTOMERS + 1) if key % 5 == 0}
    active = [key for key in range(1, N_CUSTOMERS + 1) if key not in silent]

    orders = []
    for key in range(1, N_ORDERS + 1):
        if key % 11 == 0:
            comment = None
        elif key % 6 == 0:
            comment = f"was told of special packages and requests {key}"
        else:
            comment = f"routine order note {key}"
        orders.append(
            (
                key,
                active[rng.randrange(len(active))],
                _STATUSES[key % len(_STATUSES)],
                round(rng.uniform(900.0, 35000.0), 2),
                _iso(rng.randrange(0, _N_DAYS - 130)),
                _PRIORITIES[key % len(_PRIORITIES)],
                comment,
            )
        )
    order_dates = {row[0]: row[4] for row in orders}

    lineitems = []
    for index in range(N_LINEITEMS):
        orderkey = (index % N_ORDERS) + 1
        linenumber = index // N_ORDERS + 1
        order_day = (types.DATE.coerce(order_dates[orderkey]) - _EPOCH_1995)
        ship_day = order_day + rng.randrange(1, 90)
        commit_day = order_day + rng.randrange(10, 80)
        receipt_day = ship_day + rng.randrange(1, 30)
        price = round(rng.uniform(900.0, 95000.0), 2)
        lineitems.append(
            (
                orderkey,
                linenumber,
                rng.randrange(1, 51),
                price,
                round(rng.uniform(0.0, 0.1), 2),
                None if index % 13 == 0 else round(rng.uniform(0.0, 0.08), 2),
                _FLAGS[index % len(_FLAGS)],
                "O" if index % 2 else "F",
                _iso(ship_day),
                _iso(commit_day),
                _iso(receipt_day),
                _SHIPMODES[index % len(_SHIPMODES)],
            )
        )

    buckets = []
    for key in range(1, N_BUCKET + 1):
        grp = None if key % 9 == 0 else f"g{key % 4}"
        value = None if key % 5 == 0 else rng.randrange(-10, 30)
        buckets.append((key, grp, value))

    return {
        "customer": customers,
        "orders": orders,
        "lineitem": lineitems,
        "bucket": buckets,
    }


def build_tpch_tiny(
    storage: str = "columnstore",
    seed: int = 7,
    config: StoreConfig | None = None,
) -> Database:
    """Create a Database loaded with the tiny TPC-H-derived dataset."""
    db = Database(config or StoreConfig())
    data = generate_tpch_tiny(seed)
    for name, table_schema in SCHEMAS.items():
        db.create_table(name, table_schema, storage=storage)
        db.bulk_load(name, data[name])
    return db
