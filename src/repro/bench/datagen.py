"""Synthetic dataset generators with controlled statistics.

The paper's compression results (its Table 1) come from customer data
warehouses whose compressibility is driven by a few statistics: distinct
value counts, run lengths, skew, and string payload shapes. Each
:class:`DatasetSpec` here dials those knobs to stand in for one regime of
that customer population — see DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import types
from ..schema import TableSchema, schema


@dataclass
class GeneratedDataset:
    """A generated table: schema plus per-column NumPy arrays."""

    name: str
    table_schema: TableSchema
    columns: dict[str, np.ndarray]

    @property
    def row_count(self) -> int:
        return next(iter(self.columns.values())).shape[0]

    def rows(self) -> list[tuple]:
        """Row tuples in physical form (for row-store loading)."""
        names = self.table_schema.names
        arrays = [self.columns[n] for n in names]
        return list(zip(*(a.tolist() for a in arrays)))


@dataclass
class DatasetSpec:
    """A named dataset recipe."""

    name: str
    description: str
    build: Callable[[int, np.random.Generator], GeneratedDataset] = field(repr=False)


def _ints(rng: np.random.Generator, n: int, ndv: int, sort: bool = False) -> np.ndarray:
    values = rng.integers(0, ndv, n).astype(np.int32)
    return np.sort(values) if sort else values


def _zipf_indices(rng: np.random.Generator, n: int, ndv: int, a: float = 1.3) -> np.ndarray:
    raw = rng.zipf(a, n)
    return ((raw - 1) % ndv).astype(np.int32)


def _make_low_ndv(n: int, rng: np.random.Generator) -> GeneratedDataset:
    """Telemetry-like: few distinct codes, runs from time ordering."""
    sch = schema(
        ("device_type", types.INT, False),
        ("status", types.INT, False),
        ("severity", types.INT, False),
        ("reading", types.INT, False),
    )
    return GeneratedDataset(
        "low_ndv_ints",
        sch,
        {
            "device_type": np.repeat(rng.integers(0, 5, max(1, n // 500)), 500)[:n].astype(np.int32),
            "status": _ints(rng, n, 3),
            "severity": _zipf_indices(rng, n, 8),
            "reading": (_ints(rng, n, 50) * 100).astype(np.int32),
        },
    )


def _make_high_ndv(n: int, rng: np.random.Generator) -> GeneratedDataset:
    """Transaction-like: near-unique keys and wide-range measures."""
    sch = schema(
        ("txn_id", types.BIGINT, False),
        ("account", types.INT, False),
        ("amount_cents", types.BIGINT, False),
    )
    return GeneratedDataset(
        "high_ndv_ints",
        sch,
        {
            "txn_id": (np.arange(n, dtype=np.int64) * 7919 + 13),
            "account": _ints(rng, n, max(2, n // 2)),
            "amount_cents": rng.integers(1, 10_000_000, n).astype(np.int64),
        },
    )


def _make_runs(n: int, rng: np.random.Generator) -> GeneratedDataset:
    """Log-like: clustered arrival gives long runs (RLE heaven)."""
    sch = schema(
        ("batch_id", types.INT, False),
        ("source", types.INT, False),
        ("flag", types.BOOL, False),
    )
    run = max(1, n // 100)
    batch_id = np.repeat(np.arange(max(1, n // run), dtype=np.int32), run)[:n]
    if batch_id.shape[0] < n:
        batch_id = np.pad(batch_id, (0, n - batch_id.shape[0]), constant_values=0)
    return GeneratedDataset(
        "long_runs",
        sch,
        {
            "batch_id": batch_id,
            "source": np.repeat(rng.integers(0, 10, max(1, n // 50)), 50)[:n].astype(np.int32),
            "flag": (rng.random(n) < 0.9),
        },
    )


def _make_skewed_strings(n: int, rng: np.random.Generator) -> GeneratedDataset:
    """Web-log-like: zipfian string columns (user agents, URLs)."""
    sch = schema(
        ("url", types.VARCHAR, False),
        ("agent", types.VARCHAR, False),
        ("country", types.VARCHAR, False),
    )
    url_pool = np.array(
        [f"/products/category-{i // 20}/item-{i}" for i in range(500)], dtype=object
    )
    agent_pool = np.array(
        [f"Browser/{i}.0 (Platform; rv:{i}.{i % 7})" for i in range(40)], dtype=object
    )
    country_pool = np.array(
        ["US", "DE", "IN", "BR", "JP", "GB", "FR", "CN"], dtype=object
    )
    return GeneratedDataset(
        "skewed_strings",
        sch,
        {
            "url": url_pool[_zipf_indices(rng, n, url_pool.size)],
            "agent": agent_pool[_zipf_indices(rng, n, agent_pool.size)],
            "country": country_pool[_zipf_indices(rng, n, country_pool.size, a=1.8)],
        },
    )


def _make_wide_mixed(n: int, rng: np.random.Generator) -> GeneratedDataset:
    """ERP-like: a wide mix of types and NULLs."""
    sch = schema(
        ("order_id", types.BIGINT, False),
        ("customer", types.INT, False),
        ("status", types.VARCHAR, False),
        ("price", types.FLOAT, False),
        ("ship_date", types.DATE, False),
        ("note", types.VARCHAR),
    )
    status_pool = np.array(["open", "shipped", "billed", "closed"], dtype=object)
    base_date = types.DATE.coerce("2023-01-01")
    notes = np.empty(n, dtype=object)
    notes[:] = [
        "" if rng.random() < 0.8 else f"escalation-{int(rng.integers(0, 50))}"
        for _ in range(n)
    ]
    return GeneratedDataset(
        "wide_mixed",
        sch,
        {
            "order_id": np.arange(n, dtype=np.int64) + 10**9,
            "customer": _zipf_indices(rng, n, max(2, n // 20)),
            "status": status_pool[_ints(rng, n, 4)],
            "price": np.round(rng.uniform(1, 500, n), 2),
            "ship_date": (base_date + np.sort(rng.integers(0, 365, n))).astype(np.int32),
            "note": notes,
        },
    )


def _make_sorted_dates(n: int, rng: np.random.Generator) -> GeneratedDataset:
    """Fact-table-like: date-ordered append stream."""
    sch = schema(
        ("event_date", types.DATE, False),
        ("metric", types.INT, False),
        ("region", types.INT, False),
    )
    base = types.DATE.coerce("2022-01-01")
    per_day = max(1, n // 730)
    dates = np.repeat(np.arange(max(1, n // per_day), dtype=np.int32), per_day)[:n]
    if dates.shape[0] < n:
        dates = np.pad(dates, (0, n - dates.shape[0]), constant_values=int(dates[-1]))
    return GeneratedDataset(
        "sorted_dates",
        sch,
        {
            "event_date": (dates + base).astype(np.int32),
            "metric": _ints(rng, n, 1000),
            "region": _ints(rng, n, 12),
        },
    )


#: The dataset family used by experiment E1 (the paper's compression table).
DATASET_SPECS: list[DatasetSpec] = [
    DatasetSpec("low_ndv_ints", "telemetry: few distinct codes, natural runs", _make_low_ndv),
    DatasetSpec("high_ndv_ints", "transactions: near-unique keys", _make_high_ndv),
    DatasetSpec("long_runs", "logs: clustered arrival, boolean flags", _make_runs),
    DatasetSpec("skewed_strings", "web logs: zipfian URL/agent strings", _make_skewed_strings),
    DatasetSpec("wide_mixed", "ERP: wide mixed types with NULLs", _make_wide_mixed),
    DatasetSpec("sorted_dates", "fact stream: date-ordered appends", _make_sorted_dates),
]


def make_dataset(name: str, n: int, seed: int = 0) -> GeneratedDataset:
    """Generate the named dataset with ``n`` rows (deterministic by seed)."""
    for spec in DATASET_SPECS:
        if spec.name == name:
            return spec.build(n, np.random.default_rng(seed))
    raise KeyError(f"unknown dataset {name!r}; have {[s.name for s in DATASET_SPECS]}")
