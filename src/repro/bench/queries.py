"""The 22-query analytic suite over the star schema.

Query shapes mirror the workload classes the paper reports speedups for:
selective fact scans (segment elimination), star joins with selective
dimension predicates (bitmap pushdown), multi-dimension joins with
grouped aggregation, string predicates, TOP-N and CASE buckets. Every
query runs unchanged on both engines (``mode="batch"`` / ``mode="row"``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchQuery:
    qid: str
    description: str
    sql: str


QUERY_SUITE: list[BenchQuery] = [
    # --- fact-only scans and aggregations ------------------------------ #
    BenchQuery(
        "Q01",
        "full-table aggregate",
        "SELECT COUNT(*) AS n, SUM(ss_net_paid) AS revenue FROM store_sales",
    ),
    BenchQuery(
        "Q02",
        "narrow date range (segment elimination)",
        "SELECT COUNT(*) AS n, SUM(ss_net_paid) AS revenue FROM store_sales "
        "WHERE ss_date_id BETWEEN 100 AND 130",
    ),
    BenchQuery(
        "Q03",
        "selective numeric filter",
        "SELECT COUNT(*) AS n FROM store_sales "
        "WHERE ss_sales_price > 290 AND ss_quantity >= 15",
    ),
    BenchQuery(
        "Q04",
        "group by low-cardinality key",
        "SELECT ss_store_id, COUNT(*) AS n, SUM(ss_net_paid) AS revenue "
        "FROM store_sales GROUP BY ss_store_id",
    ),
    BenchQuery(
        "Q05",
        "group by date over a quarter",
        "SELECT ss_date_id, SUM(ss_quantity) AS units FROM store_sales "
        "WHERE ss_date_id BETWEEN 180 AND 270 GROUP BY ss_date_id",
    ),
    # --- single-dimension star joins ----------------------------------- #
    BenchQuery(
        "Q06",
        "join selective dimension (bitmap pushdown)",
        "SELECT COUNT(*) AS n FROM store_sales s "
        "JOIN customer c ON s.ss_customer_id = c.c_id "
        "WHERE c.c_region = 'east' AND c.c_segment = 'corporate'",
    ),
    BenchQuery(
        "Q07",
        "revenue by region",
        "SELECT c.c_region, SUM(s.ss_net_paid) AS revenue FROM store_sales s "
        "JOIN customer c ON s.ss_customer_id = c.c_id "
        "GROUP BY c.c_region ORDER BY revenue DESC",
    ),
    BenchQuery(
        "Q08",
        "units by category",
        "SELECT i.i_category, SUM(s.ss_quantity) AS units FROM store_sales s "
        "JOIN item i ON s.ss_item_id = i.i_id "
        "GROUP BY i.i_category ORDER BY units DESC",
    ),
    BenchQuery(
        "Q09",
        "selective item predicate",
        "SELECT COUNT(*) AS n, AVG(s.ss_sales_price) AS avg_price "
        "FROM store_sales s JOIN item i ON s.ss_item_id = i.i_id "
        "WHERE i.i_category = 'electronics' AND i.i_list_price > 250",
    ),
    BenchQuery(
        "Q10",
        "store-state rollup",
        "SELECT st.s_state, COUNT(*) AS n FROM store_sales s "
        "JOIN store st ON s.ss_store_id = st.s_id "
        "GROUP BY st.s_state ORDER BY n DESC",
    ),
    BenchQuery(
        "Q11",
        "date-dimension join with year filter",
        "SELECT d.d_month, SUM(s.ss_net_paid) AS revenue FROM store_sales s "
        "JOIN date_dim d ON s.ss_date_id = d.d_id "
        "WHERE d.d_year = 2022 GROUP BY d.d_month ORDER BY d.d_month",
    ),
    # --- multi-dimension star joins ------------------------------------ #
    BenchQuery(
        "Q12",
        "two-dimension star join",
        "SELECT c.c_region, i.i_category, SUM(s.ss_net_paid) AS revenue "
        "FROM store_sales s "
        "JOIN customer c ON s.ss_customer_id = c.c_id "
        "JOIN item i ON s.ss_item_id = i.i_id "
        "GROUP BY c.c_region, i.i_category",
    ),
    BenchQuery(
        "Q13",
        "three-dimension star join, selective",
        "SELECT d.d_quarter, SUM(s.ss_net_paid) AS revenue FROM store_sales s "
        "JOIN date_dim d ON s.ss_date_id = d.d_id "
        "JOIN customer c ON s.ss_customer_id = c.c_id "
        "JOIN store st ON s.ss_store_id = st.s_id "
        "WHERE c.c_region = 'west' AND st.s_state = 'WA' AND d.d_year = 2022 "
        "GROUP BY d.d_quarter ORDER BY d.d_quarter",
    ),
    BenchQuery(
        "Q14",
        "quarterly revenue by segment",
        "SELECT d.d_quarter, c.c_segment, SUM(s.ss_net_paid) AS revenue "
        "FROM store_sales s "
        "JOIN date_dim d ON s.ss_date_id = d.d_id "
        "JOIN customer c ON s.ss_customer_id = c.c_id "
        "GROUP BY d.d_quarter, c.c_segment",
    ),
    BenchQuery(
        "Q15",
        "brand drill-down within a date window",
        "SELECT i.i_brand, SUM(s.ss_quantity) AS units FROM store_sales s "
        "JOIN item i ON s.ss_item_id = i.i_id "
        "WHERE s.ss_date_id BETWEEN 300 AND 400 AND i.i_category = 'grocery' "
        "GROUP BY i.i_brand ORDER BY units DESC LIMIT 10",
    ),
    BenchQuery(
        "Q16",
        "weekday shopping pattern",
        "SELECT d.d_weekday, AVG(s.ss_net_paid) AS avg_basket FROM store_sales s "
        "JOIN date_dim d ON s.ss_date_id = d.d_id "
        "GROUP BY d.d_weekday ORDER BY avg_basket DESC",
    ),
    # --- string predicates ---------------------------------------------- #
    BenchQuery(
        "Q17",
        "LIKE on dictionary-encoded dimension strings",
        "SELECT COUNT(*) AS n FROM store_sales s "
        "JOIN customer c ON s.ss_customer_id = c.c_id "
        "WHERE c.c_name LIKE 'customer#00000%'",
    ),
    BenchQuery(
        "Q18",
        "IN-list over categories",
        "SELECT i.i_category, COUNT(*) AS n FROM store_sales s "
        "JOIN item i ON s.ss_item_id = i.i_id "
        "WHERE i.i_category IN ('books', 'toys', 'sports') "
        "GROUP BY i.i_category ORDER BY n DESC",
    ),
    BenchQuery(
        "Q19",
        "region IN-list with date range",
        "SELECT c.c_region, SUM(s.ss_net_paid) AS revenue FROM store_sales s "
        "JOIN customer c ON s.ss_customer_id = c.c_id "
        "WHERE c.c_region IN ('east', 'south') "
        "AND s.ss_date_id BETWEEN 0 AND 180 "
        "GROUP BY c.c_region",
    ),
    # --- top-n / case / having ------------------------------------------ #
    BenchQuery(
        "Q20",
        "top customers by revenue",
        "SELECT s.ss_customer_id, SUM(s.ss_net_paid) AS revenue "
        "FROM store_sales s GROUP BY s.ss_customer_id "
        "ORDER BY revenue DESC LIMIT 25",
    ),
    BenchQuery(
        "Q21",
        "CASE bucket aggregation",
        "SELECT CASE WHEN ss_sales_price < 50 THEN 'budget' "
        "WHEN ss_sales_price < 150 THEN 'mid' ELSE 'premium' END AS tier, "
        "COUNT(*) AS n, SUM(ss_net_paid) AS revenue "
        "FROM store_sales GROUP BY tier ORDER BY tier",
    ),
    BenchQuery(
        "Q22",
        "HAVING over store revenue",
        "SELECT ss_store_id, SUM(ss_net_paid) AS revenue FROM store_sales "
        "GROUP BY ss_store_id HAVING SUM(ss_net_paid) > 0 "
        "ORDER BY revenue DESC LIMIT 5",
    ),
]


def query_by_id(qid: str) -> BenchQuery:
    for query in QUERY_SUITE:
        if query.qid == qid:
            return query
    raise KeyError(f"unknown query {qid!r}")
