"""Benchmark workloads: synthetic data, a star schema and a query suite.

These modules generate the datasets and queries the benchmark harness
(`benchmarks/`) uses to reproduce the paper's evaluation: compression
ratio studies over controlled data distributions, and the star-join
analytic workload behind the 10x-100x batch-mode speedups.
"""

from .datagen import DatasetSpec, make_dataset
from .star_schema import StarSchema, build_star_schema
from .queries import QUERY_SUITE

__all__ = [
    "DatasetSpec",
    "QUERY_SUITE",
    "StarSchema",
    "build_star_schema",
    "make_dataset",
]
