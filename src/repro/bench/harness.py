"""Shared benchmark harness: timing, table rendering, result checking.

The benchmark scripts in ``benchmarks/`` use these helpers to produce the
paper-style tables EXPERIMENTS.md records. Timing uses a best-of-N
(minimum) policy to damp interpreter noise, and every timed comparison
first asserts both engines return identical rows — a speedup over a wrong
answer is not a result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..db.database import Database


@dataclass
class Timing:
    """Best-of-N wall-clock timing of one callable."""

    seconds: float
    runs: int
    result_rows: int


def time_call(fn: Callable[[], Any], repeat: int = 3) -> Timing:
    """Best-of-``repeat`` timing; returns the timed function's last result size."""
    best = float("inf")
    rows = 0
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        try:
            rows = len(result)
        except TypeError:
            rows = 0
    return Timing(seconds=best, runs=repeat, result_rows=rows)


def time_query(db: Database, sql: str, mode: str = "auto", repeat: int = 3, **options) -> Timing:
    return time_call(lambda: db.sql(sql, mode=mode, **options), repeat=repeat)


def query_stats(db: Database, sql: str, mode: str = "auto", **options) -> dict[str, Any]:
    """Run a query with runtime stats collection and return a flat dict.

    The dict is :meth:`repro.observability.ExecutionStats.to_dict` output:
    elapsed/rows/mode at the top level, per-operator actuals under
    ``operators``, and engine counter deltas under ``counters``. Benchmarks
    assert effects (segment elimination, spilling) on these counters rather
    than reaching into operator internals.
    """
    result = db.sql(sql, mode=mode, stats=True, **options)
    if result is None or result.stats is None:
        raise AssertionError(f"no stats collected for {sql!r}")
    return result.stats.to_dict()


def assert_same_result(db_a: Database, db_b: Database, sql: str, mode_a: str, mode_b: str) -> int:
    """Both engines must agree before a timing counts; returns row count."""
    result_a = db_a.sql(sql, mode=mode_a)
    result_b = db_b.sql(sql, mode=mode_b)
    rows_a = sorted(result_a.rows, key=repr)
    rows_b = sorted(result_b.rows, key=repr)
    if _rounded(rows_a) != _rounded(rows_b):
        raise AssertionError(
            f"engines disagree on {sql!r}:\n  {mode_a}: {rows_a[:3]}...\n"
            f"  {mode_b}: {rows_b[:3]}..."
        )
    return len(rows_a)


def _rounded(rows: list[tuple]) -> list[tuple]:
    out = []
    for row in rows:
        out.append(
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        )
    return out


@dataclass
class ReportTable:
    """A fixed-column report table printed like the paper's tables."""

    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.headers)} headers"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        if value >= 1:
            return f"{value:,.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def fmt_bytes(n: int) -> str:
    """Human-readable byte count."""
    units = ["B", "KiB", "MiB", "GiB"]
    value = float(n)
    for unit in units:
        if value < 1024 or unit == units[-1]:
            return f"{value:,.1f} {unit}"
        value /= 1024
    return f"{value:,.1f} GiB"
