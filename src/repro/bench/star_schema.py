"""A star-schema data warehouse, the paper's workload shape.

One fact table (``store_sales``) with four dimensions (``date_dim``,
``customer``, ``item``, ``store``) — the TPC-DS-style layout the paper's
customer workloads and its predecessor's experiments use. The generator is
deterministic in the seed and scales with the fact row count.

``build_star_schema`` can load the same logical data into any storage
kind, so the benchmark harness can compare columnstore+batch against
rowstore+row on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import types
from ..db.database import Database
from ..schema import schema
from ..storage.config import StoreConfig

_REGIONS = ["east", "west", "north", "south", "central"]
_SEGMENTS = ["consumer", "corporate", "home_office"]
_CATEGORIES = ["electronics", "clothing", "grocery", "sports", "books",
               "garden", "toys", "automotive"]
_STATES = ["WA", "CA", "TX", "NY", "FL", "IL", "OH", "GA", "NC", "MI"]
_BASE_DATE = types.DATE.coerce("2022-01-01")
_N_DAYS = 730


@dataclass
class StarSchema:
    """Handle to a loaded star schema: the database plus row counts."""

    db: Database
    fact_rows: int
    n_customers: int
    n_items: int
    n_stores: int
    seed: int

    @property
    def tables(self) -> list[str]:
        return ["date_dim", "customer", "item", "store", "store_sales"]


DATE_DIM_SCHEMA = schema(
    ("d_id", types.INT, False),
    ("d_date", types.DATE, False),
    ("d_year", types.INT, False),
    ("d_month", types.INT, False),
    ("d_quarter", types.INT, False),
    ("d_weekday", types.VARCHAR, False),
)

CUSTOMER_SCHEMA = schema(
    ("c_id", types.INT, False),
    ("c_name", types.VARCHAR, False),
    ("c_region", types.VARCHAR, False),
    ("c_segment", types.VARCHAR, False),
)

ITEM_SCHEMA = schema(
    ("i_id", types.INT, False),
    ("i_name", types.VARCHAR, False),
    ("i_category", types.VARCHAR, False),
    ("i_brand", types.VARCHAR, False),
    ("i_list_price", types.FLOAT, False),
)

STORE_SCHEMA = schema(
    ("s_id", types.INT, False),
    ("s_name", types.VARCHAR, False),
    ("s_state", types.VARCHAR, False),
)

STORE_SALES_SCHEMA = schema(
    ("ss_id", types.INT, False),
    ("ss_date_id", types.INT, False),
    ("ss_customer_id", types.INT, False),
    ("ss_item_id", types.INT, False),
    ("ss_store_id", types.INT, False),
    ("ss_quantity", types.INT, False),
    ("ss_sales_price", types.FLOAT, False),
    ("ss_discount", types.FLOAT, False),
    ("ss_net_paid", types.FLOAT, False),
)


def _date_dim_rows() -> list[tuple]:
    rows = []
    weekdays = ["mon", "tue", "wed", "thu", "fri", "sat", "sun"]
    for day in range(_N_DAYS):
        physical = _BASE_DATE + day
        date_value = types.DATE.present(physical)
        rows.append(
            (
                day,
                physical,
                date_value.year,
                date_value.month,
                (date_value.month - 1) // 3 + 1,
                weekdays[date_value.weekday()],
            )
        )
    return rows


def generate_star_data(
    fact_rows: int, seed: int = 0
) -> dict[str, list[tuple]]:
    """All five tables' physical rows, deterministically."""
    rng = np.random.default_rng(seed)
    n_customers = max(10, fact_rows // 50)
    n_items = max(10, fact_rows // 100)
    n_stores = max(5, fact_rows // 2000)

    customers = [
        (
            i,
            f"customer#{i:07d}",
            _REGIONS[int(rng.integers(0, len(_REGIONS)))],
            _SEGMENTS[int(rng.integers(0, len(_SEGMENTS)))],
        )
        for i in range(n_customers)
    ]
    items = [
        (
            i,
            f"item#{i:06d}",
            _CATEGORIES[i % len(_CATEGORIES)],
            f"brand#{i % max(2, n_items // 10)}",
            float(np.round(rng.uniform(0.5, 300.0), 2)),
        )
        for i in range(n_items)
    ]
    stores = [
        (i, f"store#{i:03d}", _STATES[i % len(_STATES)]) for i in range(n_stores)
    ]

    # Fact rows arrive in date order (append stream), which is what makes
    # segment elimination on date effective — as in real warehouses.
    date_ids = np.sort(rng.integers(0, _N_DAYS, fact_rows)).astype(np.int32)
    customer_ids = rng.integers(0, n_customers, fact_rows)
    item_ids = rng.integers(0, n_items, fact_rows)
    store_ids = rng.integers(0, n_stores, fact_rows)
    quantities = rng.integers(1, 20, fact_rows)
    prices = np.round(rng.uniform(0.5, 300.0, fact_rows), 2)
    discounts = np.round(prices * rng.uniform(0, 0.3, fact_rows), 2)
    nets = np.round((prices - discounts) * quantities, 2)

    facts = list(
        zip(
            range(fact_rows),
            date_ids.tolist(),
            customer_ids.tolist(),
            item_ids.tolist(),
            store_ids.tolist(),
            quantities.tolist(),
            prices.tolist(),
            discounts.tolist(),
            nets.tolist(),
        )
    )
    return {
        "date_dim": _date_dim_rows(),
        "customer": customers,
        "item": items,
        "store": stores,
        "store_sales": facts,
    }


def build_star_schema(
    fact_rows: int,
    storage: str = "columnstore",
    seed: int = 0,
    config: StoreConfig | None = None,
) -> StarSchema:
    """Create a database holding the star schema under the given storage."""
    db = Database(config or StoreConfig())
    schemas = {
        "date_dim": DATE_DIM_SCHEMA,
        "customer": CUSTOMER_SCHEMA,
        "item": ITEM_SCHEMA,
        "store": STORE_SCHEMA,
        "store_sales": STORE_SALES_SCHEMA,
    }
    data = generate_star_data(fact_rows, seed)
    for name, table_schema in schemas.items():
        db.create_table(name, table_schema, storage=storage)
        # Rows from the generator are already physical; present them back
        # to user form for the validated load path.
        presented = [
            tuple(
                col.dtype.present(value)
                for col, value in zip(table_schema.columns, row)
            )
            for row in data[name]
        ]
        db.bulk_load(name, presented)
    return StarSchema(
        db=db,
        fact_rows=fact_rows,
        n_customers=max(10, fact_rows // 50),
        n_items=max(10, fact_rows // 100),
        n_stores=max(5, fact_rows // 2000),
        seed=seed,
    )
