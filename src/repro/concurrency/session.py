"""One client's view of a shared Database: lock-free snapshot reads,
per-table-latched writes.

A :class:`Session` classifies each SQL statement and routes it through
the MVCC layer (:mod:`repro.mvcc`), the database-wide
:class:`~repro.concurrency.rwlock.ReadWriteLock`, and the per-table
:class:`~repro.concurrency.latch.TableWriteLatch` registry:

* **Reads** (SELECT) take **no lock at all**. The session registers a
  reader lease at the latest committed epoch (one mutex-protected
  counter read), binds and compiles, then pins every columnstore scan
  leaf to the structures visible at that epoch
  (:meth:`ColumnStoreIndex.pin_scan_units`) and executes against the
  pinned snapshot. Writers never block readers and readers never block
  writers. Plans with leaves that read *row-store* structures in place
  (heap scans, index seeks) execute under the shared lock instead —
  row-store writers still take the exclusive side, so the shared lock
  is exactly what excludes them.

* **Columnstore auto-commit DML** takes the shared side of the database
  lock (it must not overlap DDL / explicit transactions / maintenance /
  save) plus its table's write latch — so independent writers on
  disjoint tables proceed concurrently, serializing only per table.
  Rowstore and BOTH-storage DML, and all DDL, take the exclusive side
  as before.

* **Transaction control**: BEGIN acquires the exclusive side and holds
  it until COMMIT/ROLLBACK, so an explicit transaction serializes the
  world exactly like the single-session engine did — but now tagged
  with the session name, and the Database refuses to let any other
  session end it. Statements inside the transaction re-enter the
  (reentrant) write lock. A session with an open transaction must be
  driven from the thread that opened it — the write lock is owned per
  thread, which is also what makes reentrancy safe.

Every lock/latch acquire is paired with a release in ``try/finally``,
and every reader lease with a release — a statement that dies
mid-flight (binder error, constraint violation, KILL while waiting on a
latch) must never leave a lock held or a lease registered, or writers
wedge / vacuum stalls forever.
"""

from __future__ import annotations

import threading
from typing import Any

from ..errors import ConcurrencyError
from ..exec.operators.scan import ColumnStoreScan
from ..exec.row_engine import RowColumnStoreScan
from ..governance import governed
from ..observability import registry as metrics
from ..sql import ast as A
from ..sql.runner import make_binder
from ..sql.parser import parse_statement
from .latch import TableLatches
from .rwlock import ReadWriteLock

# Leaf operators that read mutable structures in place and therefore
# cannot be pinned: their plans run under the shared lock end to end.
_READ_ONLY_STATEMENTS = (A.SelectStatement, A.ExplainStatement)

# Statements eligible for per-table write latching (auto-commit DML on a
# single named table). Everything else on the write path takes the
# exclusive side of the database lock.
_DML_STATEMENTS = (A.InsertStatement, A.UpdateStatement, A.DeleteStatement)


def pin_plan(physical, epoch: int | None = None) -> bool:
    """Pin every columnstore scan leaf of a compiled plan to a snapshot.

    Returns True when the whole plan is *fully pinned* — every leaf
    reads columnstore structures through a pinned capture (batch-mode
    :class:`ColumnStoreScan` or row-mode :class:`RowColumnStoreScan`) —
    so execution may proceed with no lock held. Leaves that read
    row-store structures in place (heap scans, index seeks) make the
    plan unpinned; their writers take the exclusive lock side, so the
    shared side is the correct (and sufficient) protection for them.

    ``epoch`` pins the committed state as of that MVCC epoch; ``None``
    pins the current state (the legacy read-locked path).
    """
    fully_pinned = True
    stack = [physical.root]
    while stack:
        op = stack.pop()
        children = op.child_operators()
        if children:
            stack.extend(children)
        elif isinstance(op, (ColumnStoreScan, RowColumnStoreScan)):
            op.pin(epoch=epoch)
        else:
            fully_pinned = False
    return fully_pinned


class Session:
    """A named client of one shared Database (see module docstring).

    Obtained from :meth:`ConcurrentDatabase.session`; usable as a
    context manager. One session serializes its own statements with an
    internal lock, so sharing a Session object between threads is safe
    but pointless — open one session per thread instead.
    """

    def __init__(
        self,
        name: str,
        db,
        lock: ReadWriteLock,
        on_close=None,
        latches: TableLatches | None = None,
    ) -> None:
        self.name = name
        self._db = db
        self._lock = lock
        self._latches = latches
        self._on_close = on_close
        self._closed = False
        # A reader lease held *across* statements (hold_snapshot): every
        # read of this session runs at the held epoch until released.
        self._held_lease = None
        self._in_txn = False
        self._txn_thread: int | None = None
        # Serializes statements *within* this session; the RW lock
        # coordinates *across* sessions.
        self._statement_lock = threading.RLock()
        # Session-level governance overlay (SET in this session). A value
        # of 0 means "explicitly off" and overrides a database default.
        self._settings: dict[str, int] = {}
        # Query id of this session's currently-running governed statement
        # (for cancel_running); None when idle.
        self._running_query_id: int | None = None
        self.statements = 0
        metrics.increment("concurrency.sessions")

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #
    def sql(self, text: str, **options: Any):
        """Execute one SQL statement with session-level coordination.

        Queries and DML run under a :class:`~repro.governance.QueryContext`
        built from the database settings with this session's ``SET``
        overlay applied — so a deadline or ``KILL`` interrupts the
        statement even while it waits on the RW lock. Control statements
        (BEGIN/COMMIT/ROLLBACK, SET, SHOW, KILL) stay ungoverned: KILL
        must work when everything else is stuck.
        """
        from ..sql.runner import run_parsed

        with self._statement_lock:
            self._require_open()
            statement = parse_statement(text)  # pure text work: no lock
            self.statements += 1
            if isinstance(statement, A.BeginStatement):
                return self._run_begin()
            if isinstance(statement, (A.CommitStatement, A.RollbackStatement)):
                return self._run_txn_end(statement)
            if isinstance(statement, A.SetStatement):
                return self._run_set(statement)
            if isinstance(statement, A.ShowStatement):
                return self._run_show(statement, options)
            if isinstance(statement, A.KillStatement):
                # Registry-only; no catalog state touched.
                return run_parsed(self._db, statement, **options)
            ctx = self._db.new_query_context(
                sql=text, session=self.name, settings=self._settings
            )
            self._running_query_id = ctx.query_id
            try:
                with governed(ctx):
                    if self._in_txn:
                        return self._run_in_txn(statement, options)
                    if isinstance(statement, _READ_ONLY_STATEMENTS):
                        return self._run_read(statement, options)
                    return self._run_write(statement, options)
            finally:
                self._running_query_id = None

    @property
    def in_transaction(self) -> bool:
        return self._in_txn

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Roll back any open transaction and release all locks."""
        with self._statement_lock:
            if self._closed:
                return
            self._closed = True
            if self._held_lease is not None:
                # A leaked lease would hold the GC horizon back forever.
                self._held_lease.release()
                self._held_lease = None
            if self._in_txn:
                try:
                    self._db.rollback(owner=self.name)
                finally:
                    self._in_txn = False
                    self._txn_thread = None
                    # close() may run on a different thread than the one
                    # that ran BEGIN (server shutdown); force fully
                    # releases the abandoned write lock either way.
                    self._lock.release_write(force=True)
            if self._on_close is not None:
                self._on_close(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("in-txn" if self._in_txn else "idle")
        return f"<Session {self.name} {state} statements={self.statements}>"

    def cancel_running(self) -> bool:
        """Cancel this session's in-flight statement (from another thread).

        Returns True when a governed statement was running and its
        context was flagged; the statement raises QueryCancelledError at
        its next cooperative checkpoint.
        """
        from ..governance import get_query_registry

        query_id = self._running_query_id
        if query_id is None:
            return False
        return get_query_registry().cancel(query_id)

    # ------------------------------------------------------------------ #
    # Snapshot holds (repeatable-read across statements)
    # ------------------------------------------------------------------ #
    def hold_snapshot(self) -> int:
        """Pin a reader lease and keep it across statements.

        Every subsequent read of this session runs at the returned
        epoch until :meth:`release_snapshot` — a writer may commit any
        number of times in between and the session's results stay
        exactly what the epoch saw (repeatable read). The lease also
        holds the GC horizon back, so the versions it needs survive
        vacuum. Idempotent: calling again returns the held epoch.
        """
        with self._statement_lock:
            self._require_open()
            if self._held_lease is None:
                self._held_lease = self._db.mvcc.readers.pin(tag=self.name)
            return self._held_lease.epoch

    def release_snapshot(self) -> None:
        """Release the held lease (no-op when none is held)."""
        with self._statement_lock:
            if self._held_lease is not None:
                self._held_lease.release()
                self._held_lease = None

    @property
    def snapshot_epoch(self) -> int | None:
        """The held snapshot's epoch, or None when not holding one."""
        lease = self._held_lease
        return None if lease is None else lease.epoch

    # ------------------------------------------------------------------ #
    # Statement routes
    # ------------------------------------------------------------------ #
    def _run_set(self, statement) -> None:
        """``SET`` scoped to this session (overlay over the database).

        ``SET x = DEFAULT`` (None) removes the overlay entry; explicit
        0 is *stored* as 0 so a session can switch a database-wide
        setting off for itself.
        """
        # Validate the name without mutating database state.
        self._db.get_setting(statement.name)
        if statement.value is None:
            self._settings.pop(statement.name.lower(), None)
        else:
            self._settings[statement.name.lower()] = max(0, int(statement.value))
        return None

    def _run_show(self, statement, options: dict[str, Any]):
        """``SHOW``: session-overlay settings win over database values."""
        from ..sql.runner import run_parsed

        name = statement.name.lower()
        if name != "queries" and name in self._settings:
            from ..db.database import Result
            from ..types import BIGINT

            self._db.get_setting(name)  # validate
            return Result(
                columns=[name], dtypes=[BIGINT], rows=[(self._settings[name],)]
            )
        return run_parsed(self._db, statement, **options)

    def _run_read(self, statement, options: dict[str, Any]):
        """SELECT outside a transaction: lock-free MVCC snapshot read.

        The session pins a reader lease at the latest committed epoch —
        one mutex-protected counter read, no RW-lock traffic — then
        binds, compiles and pins every columnstore leaf to the epoch's
        snapshot. Fully pinned plans execute with no lock held; plans
        with row-store leaves fall back to executing under the shared
        lock (row-store writers take the exclusive side). EXPLAIN
        [ANALYZE] is diagnostic and keeps the old under-the-shared-lock
        live scan.
        """
        from ..governance.context import current as governance_current
        from ..sql.runner import run_parsed

        if not isinstance(statement, A.SelectStatement):
            # EXPLAIN [ANALYZE] is rare and diagnostic: run it under
            # the shared lock end to end rather than teaching the
            # stats renderer about pinning.
            self._lock.acquire_read()
            try:
                metrics.increment("concurrency.locked_statements")
                return run_parsed(self._db, statement, **options)
            finally:
                self._lock.release_read()
        stats = bool(options.pop("stats", False))
        held = self._held_lease
        lease = held if held is not None else self._db.mvcc.readers.pin(tag=self.name)
        try:
            ctx = governance_current()
            if ctx is not None:
                ctx.epoch = lease.epoch
            plan = self._snapshot_binder(lease.epoch).bind_select(statement)
            physical, dtypes = self._db._prepare(plan, **options)
            if pin_plan(physical, lease.epoch):
                # Fully pinned: execute against the epoch's snapshot
                # with no lock held — writers never block this path.
                metrics.increment("mvcc.lockfree_reads")
                metrics.increment("concurrency.pinned_statements")
                return self._db._run_physical(physical, dtypes, stats=stats)
            # Row-store leaves read mutable B-trees in place; their
            # writers take the exclusive side, so the shared side
            # excludes them. Columnstore leaves stay pinned at the
            # lease epoch either way — a per-table latch writer (which
            # holds only the shared side) can run concurrently with
            # this, and the pin is what keeps its uncommitted state
            # invisible.
            metrics.increment("concurrency.locked_statements")
            self._lock.acquire_read()
            try:
                return self._db._run_physical(physical, dtypes, stats=stats)
            finally:
                self._lock.release_read()
        finally:
            if lease is not held:
                lease.release()

    def _snapshot_binder(self, epoch: int):
        """A binder whose uncorrelated-subquery executor reads at ``epoch``.

        The binder runs scalar/IN subqueries *at bind time*; the stock
        :func:`make_binder` executor would read the live structures and
        leak post-snapshot commits into a pinned statement. Pinning each
        subplan to the lease epoch keeps the whole statement — outer
        query and subqueries alike — on one consistent snapshot. Subplans
        with row-store leaves run briefly under the shared lock, matching
        the outer plan's fallback.
        """
        from ..sql.binder import Binder

        def executor(plan):
            physical = self._db.compile(plan)
            if pin_plan(physical, epoch):
                return list(physical.rows())
            self._lock.acquire_read()
            try:
                return list(physical.rows())
            finally:
                self._lock.release_read()

        return Binder(self._db.catalog, executor=executor)

    def _write_latch_for(self, statement):
        """The per-table latch this write should take, or None.

        Only auto-commit DML against a columnstore-only table latches:
        those writes touch that table's structures plus internally
        locked shared services (WAL, epoch manager, metrics). Rowstore
        and BOTH-storage tables have row-id allocation and index
        structures the read path still walks in place, so their writers
        keep the exclusive lock; DDL and maintenance reorganize shared
        state and always take it.
        """
        if self._latches is None or not isinstance(statement, _DML_STATEMENTS):
            return None
        try:
            target = self._db.catalog.table(statement.table)
        except Exception:
            return None  # unknown table: let the write path raise normally
        if target.columnstore is None or target.rowstore is not None:
            return None
        return self._latches.latch(target.name)

    def _run_write(self, statement, options: dict[str, Any]):
        """Auto-commit DML/DDL.

        Columnstore-only DML: shared side + the table's write latch, so
        disjoint-table writers commit concurrently. Everything else:
        exclusive side for the statement's duration, as before.
        """
        from ..sql.runner import run_parsed

        latch = self._write_latch_for(statement)
        if latch is None:
            self._lock.acquire_write()
            try:
                return run_parsed(self._db, statement, **options)
            finally:
                self._lock.release_write()
        self._lock.acquire_read()
        try:
            latch.acquire()
            try:
                return run_parsed(self._db, statement, **options)
            finally:
                latch.release()
        finally:
            self._lock.release_read()

    def _run_in_txn(self, statement, options: dict[str, Any]):
        """Any statement inside this session's open transaction.

        The session already holds the write lock (since BEGIN); the
        reentrant acquire both asserts we are on the owning thread and
        keeps the acquire/release pairing uniform.
        """
        from ..sql.runner import run_parsed

        self._require_txn_thread()
        self._lock.acquire_write()
        try:
            return run_parsed(self._db, statement, **options)
        finally:
            self._lock.release_write()

    def _run_begin(self):
        if self._in_txn:
            # Delegate for the standard "already open" TxnError without
            # double-acquiring the lock.
            self._db.begin(owner=self.name)
            raise AssertionError("unreachable: nested BEGIN must raise")
        self._lock.acquire_write()
        try:
            self._db.begin(owner=self.name)
        except BaseException:
            self._lock.release_write()
            raise
        self._in_txn = True
        self._txn_thread = threading.get_ident()
        return None

    def _run_txn_end(self, statement):
        verb_commit = isinstance(statement, A.CommitStatement)
        if not self._in_txn:
            # No transaction opened by this session: let the Database
            # raise its TxnError (or ownership error) — we hold no lock
            # to release.
            if verb_commit:
                self._db.commit(owner=self.name)
            else:
                self._db.rollback(owner=self.name)
            return None
        self._require_txn_thread()
        try:
            if verb_commit:
                self._db.commit(owner=self.name)
            else:
                self._db.rollback(owner=self.name)
        finally:
            # Even if COMMIT fails the transaction slot is in doubt; a
            # held lock would wedge every other session, so release it
            # and let the error surface.
            self._in_txn = False
            self._txn_thread = None
            self._lock.release_write()
        return None

    # ------------------------------------------------------------------ #
    # Guards
    # ------------------------------------------------------------------ #
    def _require_open(self) -> None:
        if self._closed:
            raise ConcurrencyError(f"session {self.name!r} is closed")

    def _require_txn_thread(self) -> None:
        if self._txn_thread != threading.get_ident():
            raise ConcurrencyError(
                f"session {self.name!r} has a transaction opened on another "
                "thread — a transaction must be driven by the thread that "
                "ran BEGIN (the write lock is owned per thread)"
            )
