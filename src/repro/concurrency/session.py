"""One client's view of a shared Database: snapshot reads, serialized writes.

A :class:`Session` classifies each SQL statement and routes it through
the database-wide :class:`~repro.concurrency.rwlock.ReadWriteLock`:

* **Reads** (SELECT) take the shared side only long enough to parse,
  bind, compile and *pin* the plan — capture every column-store scan's
  row-group list, materialized delete masks and frozen delta copies
  (:meth:`ColumnStoreIndex.pin_scan_units`). Then the lock is released
  and execution runs lock-free against the pinned snapshot: row groups
  are immutable and every mutation path swaps in new objects, so the
  pinned view stays internally consistent no matter what writers commit
  meanwhile. Plans with unpinnable leaves (row-store scans and index
  seeks read mutable B-trees in place) execute entirely under the
  shared lock instead — correct, just less concurrent.

* **Writes** (INSERT/UPDATE/DELETE/DDL) take the exclusive side for the
  statement, funneling into the existing WAL/undo path unchanged.

* **Transaction control**: BEGIN acquires the exclusive side and holds
  it until COMMIT/ROLLBACK, so an explicit transaction serializes the
  world exactly like the single-session engine did — but now tagged
  with the session name, and the Database refuses to let any other
  session end it. Statements inside the transaction re-enter the
  (reentrant) write lock. A session with an open transaction must be
  driven from the thread that opened it — the write lock is owned per
  thread, which is also what makes reentrancy safe.

Every lock acquire is paired with a release in ``try/finally``: a
statement that dies mid-flight (binder error, constraint violation,
injected fault) must never leave the shared lock held, or the whole
server wedges on the next writer.
"""

from __future__ import annotations

import threading
from typing import Any

from ..errors import ConcurrencyError
from ..exec.operators.scan import ColumnStoreScan
from ..governance import governed
from ..observability import registry as metrics
from ..sql import ast as A
from ..sql.runner import make_binder
from ..sql.parser import parse_statement
from .rwlock import ReadWriteLock

# Leaf operators that read mutable structures in place and therefore
# cannot be pinned: their plans run under the shared lock end to end.
_READ_ONLY_STATEMENTS = (A.SelectStatement, A.ExplainStatement)


def pin_plan(physical) -> bool:
    """Pin every column-store scan leaf of a compiled plan to a snapshot.

    Returns True when the whole plan is *fully pinned* — every leaf is a
    :class:`ColumnStoreScan` — so execution may proceed without holding
    the shared lock. Leaves that are not column-store scans (row-store
    heap scans, index seeks, the row-mode columnstore reader) iterate
    mutable structures in place; one such leaf makes the plan unpinned.
    """
    fully_pinned = True
    stack = [physical.root]
    while stack:
        op = stack.pop()
        children = op.child_operators()
        if children:
            stack.extend(children)
        elif isinstance(op, ColumnStoreScan):
            op.pin()
        else:
            fully_pinned = False
    return fully_pinned


class Session:
    """A named client of one shared Database (see module docstring).

    Obtained from :meth:`ConcurrentDatabase.session`; usable as a
    context manager. One session serializes its own statements with an
    internal lock, so sharing a Session object between threads is safe
    but pointless — open one session per thread instead.
    """

    def __init__(self, name: str, db, lock: ReadWriteLock, on_close=None) -> None:
        self.name = name
        self._db = db
        self._lock = lock
        self._on_close = on_close
        self._closed = False
        self._in_txn = False
        self._txn_thread: int | None = None
        # Serializes statements *within* this session; the RW lock
        # coordinates *across* sessions.
        self._statement_lock = threading.RLock()
        # Session-level governance overlay (SET in this session). A value
        # of 0 means "explicitly off" and overrides a database default.
        self._settings: dict[str, int] = {}
        # Query id of this session's currently-running governed statement
        # (for cancel_running); None when idle.
        self._running_query_id: int | None = None
        self.statements = 0
        metrics.increment("concurrency.sessions")

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #
    def sql(self, text: str, **options: Any):
        """Execute one SQL statement with session-level coordination.

        Queries and DML run under a :class:`~repro.governance.QueryContext`
        built from the database settings with this session's ``SET``
        overlay applied — so a deadline or ``KILL`` interrupts the
        statement even while it waits on the RW lock. Control statements
        (BEGIN/COMMIT/ROLLBACK, SET, SHOW, KILL) stay ungoverned: KILL
        must work when everything else is stuck.
        """
        from ..sql.runner import run_parsed

        with self._statement_lock:
            self._require_open()
            statement = parse_statement(text)  # pure text work: no lock
            self.statements += 1
            if isinstance(statement, A.BeginStatement):
                return self._run_begin()
            if isinstance(statement, (A.CommitStatement, A.RollbackStatement)):
                return self._run_txn_end(statement)
            if isinstance(statement, A.SetStatement):
                return self._run_set(statement)
            if isinstance(statement, A.ShowStatement):
                return self._run_show(statement, options)
            if isinstance(statement, A.KillStatement):
                # Registry-only; no catalog state touched.
                return run_parsed(self._db, statement, **options)
            ctx = self._db.new_query_context(
                sql=text, session=self.name, settings=self._settings
            )
            self._running_query_id = ctx.query_id
            try:
                with governed(ctx):
                    if self._in_txn:
                        return self._run_in_txn(statement, options)
                    if isinstance(statement, _READ_ONLY_STATEMENTS):
                        return self._run_read(statement, options)
                    return self._run_write(statement, options)
            finally:
                self._running_query_id = None

    @property
    def in_transaction(self) -> bool:
        return self._in_txn

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Roll back any open transaction and release all locks."""
        with self._statement_lock:
            if self._closed:
                return
            self._closed = True
            if self._in_txn:
                try:
                    self._db.rollback(owner=self.name)
                finally:
                    self._in_txn = False
                    self._txn_thread = None
                    # close() may run on a different thread than the one
                    # that ran BEGIN (server shutdown); force fully
                    # releases the abandoned write lock either way.
                    self._lock.release_write(force=True)
            if self._on_close is not None:
                self._on_close(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("in-txn" if self._in_txn else "idle")
        return f"<Session {self.name} {state} statements={self.statements}>"

    def cancel_running(self) -> bool:
        """Cancel this session's in-flight statement (from another thread).

        Returns True when a governed statement was running and its
        context was flagged; the statement raises QueryCancelledError at
        its next cooperative checkpoint.
        """
        from ..governance import get_query_registry

        query_id = self._running_query_id
        if query_id is None:
            return False
        return get_query_registry().cancel(query_id)

    # ------------------------------------------------------------------ #
    # Statement routes
    # ------------------------------------------------------------------ #
    def _run_set(self, statement) -> None:
        """``SET`` scoped to this session (overlay over the database).

        ``SET x = DEFAULT`` (None) removes the overlay entry; explicit
        0 is *stored* as 0 so a session can switch a database-wide
        setting off for itself.
        """
        # Validate the name without mutating database state.
        self._db.get_setting(statement.name)
        if statement.value is None:
            self._settings.pop(statement.name.lower(), None)
        else:
            self._settings[statement.name.lower()] = max(0, int(statement.value))
        return None

    def _run_show(self, statement, options: dict[str, Any]):
        """``SHOW``: session-overlay settings win over database values."""
        from ..sql.runner import run_parsed

        name = statement.name.lower()
        if name != "queries" and name in self._settings:
            from ..db.database import Result
            from ..types import BIGINT

            self._db.get_setting(name)  # validate
            return Result(
                columns=[name], dtypes=[BIGINT], rows=[(self._settings[name],)]
            )
        return run_parsed(self._db, statement, **options)

    def _run_read(self, statement, options: dict[str, Any]):
        """SELECT/EXPLAIN outside a transaction: snapshot-pinned read.

        The shared lock covers bind + compile + pin; if every leaf
        pinned, execution happens after release — concurrently with
        other readers *and* with any writer that sneaks in between.
        """
        from ..sql.runner import run_parsed

        self._lock.acquire_read()
        try:
            if not isinstance(statement, A.SelectStatement):
                # EXPLAIN [ANALYZE] is rare and diagnostic: run it under
                # the shared lock end to end rather than teaching the
                # stats renderer about pinning.
                metrics.increment("concurrency.locked_statements")
                return run_parsed(self._db, statement, **options)
            stats = bool(options.pop("stats", False))
            plan = make_binder(self._db).bind_select(statement)
            physical, dtypes = self._db._prepare(plan, **options)
            if not pin_plan(physical):
                metrics.increment("concurrency.locked_statements")
                return self._db._run_physical(physical, dtypes, stats=stats)
        finally:
            self._lock.release_read()
        # Fully pinned: execute against the frozen snapshot, lock-free.
        metrics.increment("concurrency.pinned_statements")
        return self._db._run_physical(physical, dtypes, stats=stats)

    def _run_write(self, statement, options: dict[str, Any]):
        """Auto-commit DML/DDL: exclusive for the statement's duration."""
        from ..sql.runner import run_parsed

        self._lock.acquire_write()
        try:
            return run_parsed(self._db, statement, **options)
        finally:
            self._lock.release_write()

    def _run_in_txn(self, statement, options: dict[str, Any]):
        """Any statement inside this session's open transaction.

        The session already holds the write lock (since BEGIN); the
        reentrant acquire both asserts we are on the owning thread and
        keeps the acquire/release pairing uniform.
        """
        from ..sql.runner import run_parsed

        self._require_txn_thread()
        self._lock.acquire_write()
        try:
            return run_parsed(self._db, statement, **options)
        finally:
            self._lock.release_write()

    def _run_begin(self):
        if self._in_txn:
            # Delegate for the standard "already open" TxnError without
            # double-acquiring the lock.
            self._db.begin(owner=self.name)
            raise AssertionError("unreachable: nested BEGIN must raise")
        self._lock.acquire_write()
        try:
            self._db.begin(owner=self.name)
        except BaseException:
            self._lock.release_write()
            raise
        self._in_txn = True
        self._txn_thread = threading.get_ident()
        return None

    def _run_txn_end(self, statement):
        verb_commit = isinstance(statement, A.CommitStatement)
        if not self._in_txn:
            # No transaction opened by this session: let the Database
            # raise its TxnError (or ownership error) — we hold no lock
            # to release.
            if verb_commit:
                self._db.commit(owner=self.name)
            else:
                self._db.rollback(owner=self.name)
            return None
        self._require_txn_thread()
        try:
            if verb_commit:
                self._db.commit(owner=self.name)
            else:
                self._db.rollback(owner=self.name)
        finally:
            # Even if COMMIT fails the transaction slot is in doubt; a
            # held lock would wedge every other session, so release it
            # and let the error surface.
            self._in_txn = False
            self._txn_thread = None
            self._lock.release_write()
        return None

    # ------------------------------------------------------------------ #
    # Guards
    # ------------------------------------------------------------------ #
    def _require_open(self) -> None:
        if self._closed:
            raise ConcurrencyError(f"session {self.name!r} is closed")

    def _require_txn_thread(self) -> None:
        if self._txn_thread != threading.get_ident():
            raise ConcurrencyError(
                f"session {self.name!r} has a transaction opened on another "
                "thread — a transaction must be driven by the thread that "
                "ran BEGIN (the write lock is owned per thread)"
            )
