"""ConcurrentDatabase: a multi-session facade over one shared Database.

The core :class:`~repro.db.database.Database` is single-caller by
design — one thread parses, mutates and reads. This facade adds the
coordination layer from DESIGN.md "Concurrency": N sessions share the
engine through one :class:`~repro.concurrency.rwlock.ReadWriteLock`,
readers pin snapshots, writers serialize, and maintenance operations
(tuple mover, REBUILD, archival, save/checkpoint) take the exclusive
side like any other writer. The embedded server
(:mod:`repro.server`) opens one session per connection against an
instance of this class.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any

from ..db.database import Database
from ..errors import ConcurrencyError
from .latch import TableLatches
from .rwlock import ReadWriteLock
from .session import Session


class ConcurrentDatabase:
    """Shared-database coordinator: sessions, RW lock, maintenance.

    Wraps an existing :class:`Database` (``ConcurrentDatabase(db)``) or
    opens a durable one (:meth:`open`). The wrapped engine stays fully
    functional for direct single-threaded use, but once sessions are
    live all access should flow through them or through this facade's
    maintenance wrappers — direct ``db`` calls bypass the lock.
    """

    def __init__(self, db: Database | None = None) -> None:
        self.db = db if db is not None else Database()
        self.lock = ReadWriteLock()
        # Per-table write latches: columnstore auto-commit DML holds the
        # shared lock side + its table's latch, so writers on disjoint
        # tables proceed concurrently (DESIGN.md "Multi-versioning").
        self.latches = TableLatches()
        self._sessions: dict[str, Session] = {}
        self._registry_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        # Lazily-created session per thread for the .sql() convenience.
        self._thread_sessions = threading.local()

    @classmethod
    def open(cls, path: str, **kwargs: Any) -> "ConcurrentDatabase":
        """Open a durable database (see :meth:`Database.open`) wrapped
        for concurrent use."""
        return cls(Database.open(path, **kwargs))

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    def session(self, name: str | None = None) -> Session:
        """Open a new named session. Close it (or use ``with``) when done."""
        with self._registry_lock:
            if self._closed:
                raise ConcurrencyError("database is closed")
            if name is None:
                name = f"session-{next(self._ids)}"
            if name in self._sessions:
                raise ConcurrencyError(f"session name {name!r} is already in use")
            session = Session(
                name, self.db, self.lock, on_close=self._forget, latches=self.latches
            )
            self._sessions[name] = session
            return session

    def _forget(self, session: Session) -> None:
        with self._registry_lock:
            self._sessions.pop(session.name, None)

    @property
    def session_names(self) -> list[str]:
        with self._registry_lock:
            return sorted(self._sessions)

    def sql(self, text: str, **options: Any):
        """Run one statement on this thread's implicit session.

        Each calling thread gets its own lazily-created session, so
        plain ``cdb.sql(...)`` from worker threads composes correctly
        with explicit transactions (which are per-session).
        """
        session = getattr(self._thread_sessions, "session", None)
        if session is None or session.closed:
            session = self.session(f"thread-{threading.get_ident()}")
            self._thread_sessions.session = session
        return session.sql(text, **options)

    # ------------------------------------------------------------------ #
    # Maintenance — exclusive, like any writer
    # ------------------------------------------------------------------ #
    # These reorganize shared structures (and log themselves), so they
    # take the write side: no reader is mid-pin and no writer is
    # mid-statement while they run. Readers that already pinned are
    # unaffected — reorganization swaps in new objects.
    def run_tuple_mover(self, table: str, include_open: bool = False):
        with self.lock.write_locked():
            return self.db.run_tuple_mover(table, include_open)

    def rebuild(self, table: str) -> None:
        with self.lock.write_locked():
            self.db.rebuild(table)

    def set_archival(self, table: str, enabled: bool) -> None:
        with self.lock.write_locked():
            self.db.set_archival(table, enabled)

    def save(self, path: str, disk=None, force: bool = False) -> None:
        with self.lock.write_locked():
            self.db.save(path, disk=disk, force=force)

    def backup(self, dest: str, disk=None, barrier_hook=None):
        """Hot-backup the shared database into ``dest``.

        Only the *barrier* (flush the WAL, capture the backup LSN, pin
        the MVCC epoch, capture the snapshot manifest) runs under the
        write lock — an instant, no I/O proportional to data size. The
        long copy phase runs with the lock released: sessions keep
        reading and committing, and everything they commit lands after
        the backup's cut line. Returns a
        :class:`~repro.backup.backup.BackupResult`.
        """
        from ..backup.backup import prepare_backup

        with self.lock.write_locked():
            job = prepare_backup(self.db, dest, disk=disk, barrier_hook=barrier_hook)
        return job.run()

    def vacuum(self, table: str | None = None) -> dict[str, int]:
        """Free MVCC versions no registered reader can see.

        Takes the exclusive side like other maintenance — not because
        vacuum needs it for correctness (retire/capture atomicity is
        the index's own mutex), but so the freed counts it reports are
        not racing in-flight latch writers.
        """
        with self.lock.write_locked():
            return self.db.vacuum(table)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close every session (rolling back open transactions), then
        the engine. Safe to call twice."""
        with self._registry_lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
        with self.lock.write_locked():
            self.db.close()

    def __enter__(self) -> "ConcurrentDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
