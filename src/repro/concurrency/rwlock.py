"""A writer-preference read/write lock for the session layer.

The concurrency model (DESIGN.md "Concurrency") needs exactly one lock:
readers share it while they parse, bind, compile and pin a snapshot;
writers and maintenance hold it exclusively while they mutate shared
structures. Python's standard library has no RW lock, so this is a
small condition-variable implementation with the two properties the
session layer relies on:

* **Writer preference.** Once a writer is waiting, new readers queue
  behind it. Without this, a steady stream of short readers starves
  the writer forever (readers overlap, so the reader count never
  reaches zero). With it, writers interleave fairly with reader
  bursts — the E18 benchmark measures exactly this mix.

* **Reentrant write side.** The owner of the write lock may acquire it
  again (depth-counted). Session transactions need this: BEGIN takes
  the write lock and holds it until COMMIT/ROLLBACK, and every DML
  statement inside the transaction re-enters through the same
  acquire path.

The read side is deliberately **not** reentrant and a write-lock owner
must not request a read lock (it would self-deadlock behind its own
writer preference); the session layer never does either — it acquires
at statement boundaries only, in ``try/finally``.
"""

from __future__ import annotations

import threading

from ..errors import ConcurrencyError, LockTimeoutError
from ..governance.context import current as governance_current
from ..observability import registry as metrics

# How long acquire() waits before concluding the system is wedged.
# Generous on purpose: it exists to turn a deadlock bug into a loud
# LockTimeoutError instead of a hung process, not to time out real work.
DEFAULT_ACQUIRE_TIMEOUT_SECONDS = 60.0

# When the acquiring statement is governed, its lock wait is sliced into
# short condition waits so a statement_timeout / KILL interrupts the
# acquire instead of blocking until the lock frees up.
_GOVERNANCE_POLL_SECONDS = 0.1


class ReadWriteLock:
    """Shared/exclusive lock with writer preference and reentrant writes."""

    def __init__(self, timeout: float | None = DEFAULT_ACQUIRE_TIMEOUT_SECONDS) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writer: int | None = None  # owning thread ident
        self._write_depth = 0
        self._timeout = timeout

    # ------------------------------------------------------------------ #
    # Read side
    # ------------------------------------------------------------------ #
    def acquire_read(self) -> None:
        """Take the shared side; blocks while a writer holds or waits."""
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                raise ConcurrencyError(
                    "read-lock request while holding the write lock "
                    "(would self-deadlock behind writer preference)"
                )
            if self._writer is not None or self._writers_waiting:
                metrics.increment("concurrency.read_waits")
                deadline = self._deadline()
                while self._writer is not None or self._writers_waiting:
                    self._wait(deadline, "read")
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                raise ConcurrencyError("release_read without a matching acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    # ------------------------------------------------------------------ #
    # Write side
    # ------------------------------------------------------------------ #
    def acquire_write(self) -> None:
        """Take the exclusive side; reentrant for the owning thread."""
        me = threading.get_ident()
        with self._condition:
            if self._writer == me:
                self._write_depth += 1
                return
            self._writers_waiting += 1
            try:
                if self._readers or self._writer is not None:
                    metrics.increment("concurrency.write_waits")
                    deadline = self._deadline()
                    while self._readers or self._writer is not None:
                        self._wait(deadline, "write")
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._write_depth = 1

    def release_write(self, *, force: bool = False) -> None:
        """Release one write-side hold.

        ``force=True`` releases the lock *entirely* even from a thread
        that does not own it — teardown only (closing a session whose
        owning thread is gone would otherwise wedge the lock forever).
        """
        with self._condition:
            if self._writer is None:
                raise ConcurrencyError("release_write without a held write lock")
            if self._writer != threading.get_ident():
                if not force:
                    raise ConcurrencyError(
                        "release_write by a thread that does not hold the write lock"
                    )
                self._write_depth = 0
            else:
                self._write_depth = 0 if force else self._write_depth - 1
            if self._write_depth == 0:
                self._writer = None
                self._condition.notify_all()

    # ------------------------------------------------------------------ #
    # Context managers / introspection
    # ------------------------------------------------------------------ #
    def read_locked(self) -> "_Guard":
        return _Guard(self.acquire_read, self.release_read)

    def write_locked(self) -> "_Guard":
        return _Guard(self.acquire_write, self.release_write)

    @property
    def write_held_by_me(self) -> bool:
        with self._condition:
            return self._writer == threading.get_ident()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _deadline(self) -> float | None:
        if self._timeout is None:
            return None
        return threading.TIMEOUT_MAX if self._timeout <= 0 else self._timeout

    def _wait(self, budget: float | None, side: str) -> None:
        # ``budget`` is mutated by reference semantics via the caller's
        # loop structure being time-bounded per wait: each wait() call
        # may consume up to the whole budget, which is fine — the point
        # is a bounded, loud failure, not precise accounting.
        ctx = governance_current()
        if ctx is None:
            if not self._condition.wait(timeout=budget):
                raise LockTimeoutError(
                    f"timed out after {self._timeout}s waiting for the {side} "
                    "lock (likely a lock leak or deadlock — see DESIGN.md "
                    "Concurrency)"
                )
            return
        # Governed statement: slice the wait so deadline / KILL lands
        # while blocked on the lock, not after finally acquiring it.
        remaining = budget if budget is not None else threading.TIMEOUT_MAX
        while True:
            ctx.check()
            if self._condition.wait(timeout=min(_GOVERNANCE_POLL_SECONDS, remaining)):
                return
            remaining -= _GOVERNANCE_POLL_SECONDS
            if remaining <= 0:
                raise LockTimeoutError(
                    f"timed out after {self._timeout}s waiting for the {side} "
                    "lock (likely a lock leak or deadlock — see DESIGN.md "
                    "Concurrency)"
                )


class _Guard:
    """Minimal context manager pairing one acquire with one release."""

    __slots__ = ("_acquire", "_release")

    def __init__(self, acquire, release) -> None:
        self._acquire = acquire
        self._release = release

    def __enter__(self) -> None:
        self._acquire()

    def __exit__(self, *exc_info) -> None:
        self._release()
