"""Per-table write latches: disjoint-table writers proceed in parallel.

Before MVCC, every writer took the exclusive side of the database-wide
:class:`~repro.concurrency.rwlock.ReadWriteLock` — one writer at a time,
whatever table it touched. With epoch-versioned storage readers no
longer need writers excluded at all, and two writers on *different*
columnstore tables touch disjoint structures (their own delta stores,
delete bitmaps and directories; the shared epoch manager and WAL have
their own internal mutexes). So an auto-commit columnstore DML statement
now takes:

* the **shared** side of the database lock — it still must not overlap
  DDL, explicit transactions, maintenance, or save (all of which take
  the exclusive side and reorganize or snapshot shared state), and
* this table's **write latch** — serializing writers per table.

The latch mirrors the RW lock's governance behavior exactly: a governed
statement waiting on a busy latch slices its wait so ``KILL`` and
``statement_timeout`` interrupt the *wait* with the same typed,
retryable :class:`~repro.errors.LockTimeoutError` semantics as the lock
path (PR 7's contract), and the latch is released cleanly — a latch
acquire that raises never leaves the latch held.
"""

from __future__ import annotations

import threading

from ..errors import ConcurrencyError, LockTimeoutError
from ..governance.context import current as governance_current
from ..observability import registry as metrics
from .rwlock import DEFAULT_ACQUIRE_TIMEOUT_SECONDS, _GOVERNANCE_POLL_SECONDS, _Guard


class TableWriteLatch:
    """One table's writer mutex (reentrant, governed waits).

    Reentrancy matches the RW lock's write side: the owner may acquire
    again (depth-counted), which keeps compound statements that route
    through the same table twice from self-deadlocking.
    """

    def __init__(
        self, name: str, timeout: float | None = DEFAULT_ACQUIRE_TIMEOUT_SECONDS
    ) -> None:
        self.name = name
        self._condition = threading.Condition()
        self._owner: int | None = None  # owning thread ident
        self._depth = 0
        self._timeout = timeout

    def acquire(self) -> None:
        """Take the latch; blocks (interruptibly when governed) if busy."""
        me = threading.get_ident()
        with self._condition:
            if self._owner == me:
                self._depth += 1
                return
            if self._owner is not None:
                metrics.increment("concurrency.latch_waits")
                deadline = (
                    None
                    if self._timeout is None
                    else (
                        threading.TIMEOUT_MAX if self._timeout <= 0 else self._timeout
                    )
                )
                while self._owner is not None:
                    self._wait(deadline)
            self._owner = me
            self._depth = 1

    def release(self, *, force: bool = False) -> None:
        """Release one hold (``force=True``: teardown from any thread)."""
        with self._condition:
            if self._owner is None:
                raise ConcurrencyError(
                    f"release of table latch {self.name!r} without a hold"
                )
            if self._owner != threading.get_ident():
                if not force:
                    raise ConcurrencyError(
                        f"release of table latch {self.name!r} by a thread "
                        "that does not hold it"
                    )
                self._depth = 0
            else:
                self._depth = 0 if force else self._depth - 1
            if self._depth == 0:
                self._owner = None
                self._condition.notify_all()

    def locked(self) -> _Guard:
        return _Guard(self.acquire, self.release)

    @property
    def held_by_me(self) -> bool:
        with self._condition:
            return self._owner == threading.get_ident()

    def _wait(self, budget: float | None) -> None:
        # Same slicing contract as ReadWriteLock._wait: a governed
        # statement's deadline or KILL lands *while* it waits, raising
        # through ctx.check() with the latch untouched.
        ctx = governance_current()
        if ctx is None:
            if not self._condition.wait(timeout=budget):
                raise LockTimeoutError(
                    f"timed out after {self._timeout}s waiting for the write "
                    f"latch of table {self.name!r} (likely a latch leak or "
                    "deadlock — see DESIGN.md Concurrency)"
                )
            return
        remaining = budget if budget is not None else threading.TIMEOUT_MAX
        while True:
            ctx.check()
            if self._condition.wait(
                timeout=min(_GOVERNANCE_POLL_SECONDS, remaining)
            ):
                return
            remaining -= _GOVERNANCE_POLL_SECONDS
            if remaining <= 0:
                raise LockTimeoutError(
                    f"timed out after {self._timeout}s waiting for the write "
                    f"latch of table {self.name!r} (likely a latch leak or "
                    "deadlock — see DESIGN.md Concurrency)"
                )


class TableLatches:
    """The database's latch registry, one latch per table name.

    Latches are created on first use and never dropped — a handful of
    small objects per table, and keeping them alive sidesteps every
    drop/re-create race. Names are case-normalized the way the catalog
    normalizes table names.
    """

    def __init__(self, timeout: float | None = DEFAULT_ACQUIRE_TIMEOUT_SECONDS) -> None:
        self._latches: dict[str, TableWriteLatch] = {}
        self._mutex = threading.Lock()
        self._timeout = timeout

    def latch(self, table: str) -> TableWriteLatch:
        key = table.lower()
        with self._mutex:
            latch = self._latches.get(key)
            if latch is None:
                latch = TableWriteLatch(key, timeout=self._timeout)
                self._latches[key] = latch
            return latch
