"""Multi-session concurrency layer: lock-free MVCC reads, latched writes.

See DESIGN.md "Concurrency" and "Multi-versioning" for the model.
Public surface:

* :class:`ConcurrentDatabase` — shared-database coordinator.
* :class:`Session` — one client's view (snapshot reads, owned txns).
* :class:`ReadWriteLock` — the writer-preference lock for exclusive
  operations (DDL, explicit transactions, maintenance, save).
* :class:`TableWriteLatch` / :class:`TableLatches` — per-table writer
  mutexes letting disjoint-table writers proceed concurrently.
"""

from .database import ConcurrentDatabase
from .latch import TableLatches, TableWriteLatch
from .rwlock import ReadWriteLock
from .session import Session, pin_plan

__all__ = [
    "ConcurrentDatabase",
    "ReadWriteLock",
    "Session",
    "TableLatches",
    "TableWriteLatch",
    "pin_plan",
]
