"""Multi-session concurrency layer: snapshot reads, serialized writes.

See DESIGN.md "Concurrency" for the model. Public surface:

* :class:`ConcurrentDatabase` — shared-database coordinator.
* :class:`Session` — one client's view (snapshot reads, owned txns).
* :class:`ReadWriteLock` — the writer-preference lock both use.
"""

from .database import ConcurrentDatabase
from .rwlock import ReadWriteLock
from .session import Session, pin_plan

__all__ = ["ConcurrentDatabase", "ReadWriteLock", "Session", "pin_plan"]
