"""Query lifecycle governance: deadlines, cancellation, memory budgets.

Public surface:

* :class:`QueryContext` — per-statement deadline / cancel flag / memory
  accounting, installed thread-locally while the statement runs.
* :func:`current` / :func:`activate` — thread-local context access
  (exchange workers re-activate the consumer's context explicitly).
* :func:`governed` — register + activate + outcome classification, the
  wrapper ``Database.execute`` and ``Session.sql`` use.
* :class:`QueryRegistry` / :func:`get_query_registry` — the process-wide
  directory behind ``SHOW QUERIES`` and ``KILL <id>``.
* :class:`MemoryGovernor` / :func:`set_process_memory_limit` — the
  process-wide hard cap governed reservations are charged against.
"""

from .context import (
    RESERVE_OK,
    RESERVE_SPILL,
    MemoryGovernor,
    QueryContext,
    activate,
    checkpoint,
    current,
    get_memory_governor,
    governed_batches,
    governed_rows,
    set_process_memory_limit,
)
from .registry import (
    QueryRegistry,
    get_query_registry,
    governed,
    set_query_registry,
)

__all__ = [
    "RESERVE_OK",
    "RESERVE_SPILL",
    "MemoryGovernor",
    "QueryContext",
    "QueryRegistry",
    "activate",
    "checkpoint",
    "current",
    "get_memory_governor",
    "get_query_registry",
    "governed",
    "governed_batches",
    "governed_rows",
    "set_process_memory_limit",
    "set_query_registry",
]
