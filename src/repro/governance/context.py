"""Per-statement query context: deadline, cancel flag, memory accounting.

A :class:`QueryContext` is created for every governed statement (by
``Database.execute`` / ``Session.sql``) and made visible to the operators
running that statement through a *thread-local* activation — thread-local
rather than a ``contextvars`` variable because the exchange operator runs
parts of the plan on worker threads, and those workers must install the
context explicitly when they start (a context var would silently not
propagate).

Operators call :meth:`QueryContext.check` at coarse boundaries (per
emitted batch, per scan unit, every few hundred rows in the row engine).
``check`` raises the classified governance error — killed, cancelled, or
timed out — which unwinds the operator stack through the existing
``try/finally`` pin/lock releases and the PR 4 undo machinery.

Memory accounting is two-level:

* per-query **soft budget** (``memory_budget_bytes``): exceeding it makes
  ``try_reserve`` report "spill" so hash join/aggregate/sort/window
  degrade to their spill paths;
* per-query **hard limit** (``memory_limit_bytes``) and the process-wide
  :class:`MemoryGovernor` cap: exceeding either raises a *retryable*
  :class:`~repro.errors.ResourceExhaustedError` instead of OOM-ing.

Reservations made by a query are owned by its context and bulk-released
at context teardown (:meth:`release_all`), so an operator that dies
without releasing can never leak process-governor bytes.
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager

from ..errors import (
    QueryCancelledError,
    QueryKilledError,
    QueryTimeoutError,
    ResourceExhaustedError,
)
from ..observability import registry as metrics

# Outcomes of QueryContext.try_reserve: proceed in memory, degrade to the
# operator's spill path, or (exception) ResourceExhaustedError.
RESERVE_OK = "ok"
RESERVE_SPILL = "spill"


class MemoryGovernor:
    """Process-wide memory cap shared by all governed queries.

    ``limit_bytes is None`` (the default) disables the cap. The governor
    only tracks bytes reserved *through a QueryContext* — ungoverned
    internal work (maintenance, recovery) is not charged.
    """

    def __init__(self, limit_bytes: int | None = None) -> None:
        self._lock = threading.Lock()
        self.limit_bytes = limit_bytes
        self.reserved_bytes = 0
        self.peak_bytes = 0

    def try_reserve(self, n_bytes: int) -> bool:
        with self._lock:
            if (
                self.limit_bytes is not None
                and self.reserved_bytes + n_bytes > self.limit_bytes
            ):
                return False
            self.reserved_bytes += n_bytes
            self.peak_bytes = max(self.peak_bytes, self.reserved_bytes)
            return True

    def release(self, n_bytes: int) -> None:
        with self._lock:
            self.reserved_bytes = max(0, self.reserved_bytes - n_bytes)


_process_governor = MemoryGovernor()


def get_memory_governor() -> MemoryGovernor:
    """The process-wide governor every governed reservation goes through."""
    return _process_governor


def set_process_memory_limit(limit_bytes: int | None) -> None:
    """Set (or clear, with None) the process-wide governed-memory cap."""
    _process_governor.limit_bytes = limit_bytes


class QueryContext:
    """Governance state for one running statement (see module docstring)."""

    def __init__(
        self,
        query_id: int,
        sql: str = "",
        session: str | None = None,
        timeout_ms: int | None = None,
        memory_budget_bytes: int | None = None,
        memory_limit_bytes: int | None = None,
        governor: MemoryGovernor | None = None,
    ) -> None:
        self.query_id = query_id
        self.sql = sql
        self.session = session
        self.timeout_ms = timeout_ms
        self.memory_budget_bytes = memory_budget_bytes
        self.memory_limit_bytes = memory_limit_bytes
        self.started_monotonic = time.monotonic()
        self.started_wall = time.time()
        self.deadline = (
            self.started_monotonic + timeout_ms / 1000.0
            if timeout_ms is not None and timeout_ms > 0
            else None
        )
        self._governor = governor if governor is not None else _process_governor
        self._cancel = threading.Event()
        self.cancel_reason: str | None = None
        # MVCC: the snapshot epoch a lock-free read pinned (None until a
        # reader lease is taken, and always None for writes/EXPLAIN).
        self.epoch: int | None = None
        self._mem_lock = threading.Lock()
        self.reserved_bytes = 0
        self.peak_bytes = 0
        # Diagnostic: how many cooperative checkpoints this statement hit.
        # Benchmarks use it to prove governance is actually being polled.
        self.checks = 0

    # ------------------------------------------------------------------ #
    # Cancellation and deadline
    # ------------------------------------------------------------------ #
    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation; the first reason recorded wins."""
        if not self._cancel.is_set():
            self.cancel_reason = reason
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    @property
    def elapsed_ms(self) -> float:
        return (time.monotonic() - self.started_monotonic) * 1000.0

    def remaining_seconds(self) -> float | None:
        """Seconds until the deadline, or None when no timeout is set."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def check(self) -> None:
        """Cooperative checkpoint: raise if cancelled, killed, or expired.

        Called at batch/row/scan-unit boundaries and inside lock waits.
        Cheap on the happy path: one Event check and one clock read.
        """
        self.checks += 1
        if self._cancel.is_set():
            if self.cancel_reason == "killed":
                raise QueryKilledError(
                    f"query {self.query_id} killed", query_id=self.query_id
                )
            raise QueryCancelledError(
                f"query {self.query_id} cancelled", query_id=self.query_id
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeoutError(
                f"query {self.query_id} exceeded statement_timeout "
                f"of {self.timeout_ms} ms",
                query_id=self.query_id,
            )

    # ------------------------------------------------------------------ #
    # Memory accounting
    # ------------------------------------------------------------------ #
    def try_reserve(self, n_bytes: int) -> str:
        """Charge ``n_bytes`` against this query and the process governor.

        Returns ``RESERVE_OK`` when the reservation was committed, or
        ``RESERVE_SPILL`` when the *soft* per-query budget is exceeded
        (the operator should degrade to its spill path). Raises
        :class:`ResourceExhaustedError` on a *hard* violation — per-query
        ``memory_limit_bytes`` or the process-wide governor cap — without
        committing anything.
        """
        with self._mem_lock:
            proposed = self.reserved_bytes + n_bytes
            if (
                self.memory_limit_bytes is not None
                and proposed > self.memory_limit_bytes
            ):
                metrics.increment("governance.budget_rejections")
                raise ResourceExhaustedError(
                    f"query {self.query_id} exceeded its hard memory limit of "
                    f"{self.memory_limit_bytes} bytes ({self.reserved_bytes} "
                    f"reserved, {n_bytes} requested)"
                )
            if not self._governor.try_reserve(n_bytes):
                metrics.increment("governance.budget_rejections")
                raise ResourceExhaustedError(
                    f"process memory governor cap of "
                    f"{self._governor.limit_bytes} bytes exceeded "
                    f"({self._governor.reserved_bytes} reserved across all "
                    f"queries, {n_bytes} requested by query {self.query_id})"
                )
            if (
                self.memory_budget_bytes is not None
                and proposed > self.memory_budget_bytes
            ):
                # Soft budget: hand the bytes back and tell the operator
                # to spill instead of growing.
                self._governor.release(n_bytes)
                metrics.increment("governance.spills_forced")
                return RESERVE_SPILL
            self.reserved_bytes = proposed
            self.peak_bytes = max(self.peak_bytes, self.reserved_bytes)
            return RESERVE_OK

    def release(self, n_bytes: int) -> None:
        """Return bytes; clamps so a double release cannot underflow the
        governor (only what this context actually holds is returned)."""
        with self._mem_lock:
            actual = min(n_bytes, self.reserved_bytes)
            self.reserved_bytes -= actual
        if actual:
            self._governor.release(actual)

    def release_all(self) -> None:
        """Teardown: return every byte this query still holds.

        Makes operator error paths leak-proof — whatever they failed to
        release comes back to the governor here.
        """
        with self._mem_lock:
            actual = self.reserved_bytes
            self.reserved_bytes = 0
        if actual:
            self._governor.release(actual)

    def describe(self) -> dict:
        """Row-shaped summary for SHOW QUERIES / ``\\stats``."""
        return {
            "query_id": self.query_id,
            "session": self.session,
            "sql": self.sql,
            "elapsed_ms": round(self.elapsed_ms, 1),
            "timeout_ms": self.timeout_ms,
            "reserved_bytes": self.reserved_bytes,
            "state": ("cancelling" if self._cancel.is_set() else "running"),
            "epoch": self.epoch,
        }

    def __repr__(self) -> str:
        return (
            f"<QueryContext id={self.query_id} session={self.session!r} "
            f"elapsed={self.elapsed_ms:.0f}ms reserved={self.reserved_bytes}>"
        )


# ---------------------------------------------------------------------- #
# Thread-local activation
# ---------------------------------------------------------------------- #
_active = threading.local()


def current() -> QueryContext | None:
    """The QueryContext governing the *current thread*, if any."""
    return getattr(_active, "ctx", None)


@contextmanager
def activate(ctx: QueryContext | None):
    """Install ``ctx`` as the current thread's governing context.

    Exchange workers call this with the context captured by the consumer
    thread so cooperative checks keep working across the thread hop.
    Nested activations restore the previous context on exit.
    """
    prev = current()
    _active.ctx = ctx
    try:
        yield ctx
    finally:
        _active.ctx = prev


# ---------------------------------------------------------------------- #
# Cooperative-checkpoint wrappers for operator iterators
# ---------------------------------------------------------------------- #
# Applied at class-creation time by the BatchOperator / RowOperator base
# classes (alongside the observability instrumented iterators), so every
# operator in both engines is a cancellation point without per-operator
# edits. The wrappers read the thread-local context when the generator
# body first runs — i.e. at the first next(), when the statement's
# context is already active — and are no-ops for ungoverned execution.

# Row-mode operators emit one row at a time; checking each row would put
# an Event read + clock read on a per-row hot path, so check every 64th.
_ROW_CHECK_INTERVAL = 64


def governed_batches(fn):
    """Wrap a ``batches()`` generator with a per-batch cancellation check."""

    @functools.wraps(fn)
    def wrapper(self):
        ctx = current()
        if ctx is None:
            yield from fn(self)
            return
        for batch in fn(self):
            ctx.check()
            yield batch

    wrapper._governed = True
    return wrapper


def governed_rows(fn):
    """Wrap a row-engine ``rows()`` generator with periodic checks."""

    @functools.wraps(fn)
    def wrapper(self):
        ctx = current()
        if ctx is None:
            yield from fn(self)
            return
        emitted = 0
        for row in fn(self):
            emitted += 1
            if emitted % _ROW_CHECK_INTERVAL == 1:
                ctx.check()
            yield row

    wrapper._governed = True
    return wrapper


def checkpoint() -> None:
    """Free-standing cooperative checkpoint for loops that filter heavily.

    Highly selective scans can chew through many scan units (or many
    thousands of rows) without emitting anything, so the per-emission
    wrappers above never run; such loops call this directly.
    """
    ctx = current()
    if ctx is not None:
        ctx.check()
