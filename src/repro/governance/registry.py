"""Process-wide registry of running statements: SHOW QUERIES and KILL.

Every governed statement registers its :class:`QueryContext` here for the
duration of execution. ``KILL <query_id>`` (and client-requested cancel)
resolve the id through the registry and set the context's cancel flag;
the statement notices at its next cooperative checkpoint and unwinds.

:func:`governed` is the one entry point that ties the lifecycle together:
register → activate thread-locally → classify the outcome into the
``governance.*`` counters → deregister → bulk-release memory. Both
``Database.execute`` and ``Session.sql`` wrap statements in it.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from ..errors import QueryCancelledError, QueryKilledError, QueryTimeoutError
from ..observability import registry as metrics
from .context import QueryContext, activate


class QueryRegistry:
    """Running-statement directory with monotonic query-id allocation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_id = 1
        self._running: dict[int, QueryContext] = {}

    def next_query_id(self) -> int:
        with self._lock:
            qid = self._next_id
            self._next_id += 1
            return qid

    def register(self, ctx: QueryContext) -> None:
        with self._lock:
            self._running[ctx.query_id] = ctx

    def deregister(self, ctx: QueryContext) -> None:
        with self._lock:
            self._running.pop(ctx.query_id, None)

    def get(self, query_id: int) -> QueryContext | None:
        with self._lock:
            return self._running.get(query_id)

    def kill(self, query_id: int, reason: str = "killed") -> bool:
        """Request termination of a running statement by id.

        Returns False when no statement with that id is running (it may
        have already finished — KILL racing completion is not an error).
        """
        with self._lock:
            ctx = self._running.get(query_id)
        if ctx is None:
            return False
        ctx.cancel(reason=reason)
        return True

    def cancel(self, query_id: int) -> bool:
        """Client-requested cancel of the client's own statement."""
        return self.kill(query_id, reason="cancelled")

    def list_running(self) -> list[QueryContext]:
        with self._lock:
            return sorted(self._running.values(), key=lambda c: c.query_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._running)


_global_query_registry = QueryRegistry()


def get_query_registry() -> QueryRegistry:
    """The process-wide registry SHOW QUERIES / KILL operate on."""
    return _global_query_registry


def set_query_registry(registry: QueryRegistry) -> QueryRegistry:
    """Install a registry (tests); returns the previously installed one."""
    global _global_query_registry
    previous = _global_query_registry
    _global_query_registry = registry
    return previous


@contextmanager
def governed(ctx: QueryContext):
    """Run one statement under governance (see module docstring).

    The ``except`` ordering matters: :class:`QueryKilledError` subclasses
    :class:`QueryCancelledError`, so killed must be tested first.
    """
    registry = get_query_registry()
    registry.register(ctx)
    try:
        with activate(ctx):
            yield ctx
    except QueryKilledError:
        metrics.increment("governance.statements_killed")
        raise
    except QueryCancelledError:
        metrics.increment("governance.statements_cancelled")
        raise
    except QueryTimeoutError:
        metrics.increment("governance.statements_timed_out")
        raise
    finally:
        registry.deregister(ctx)
        ctx.release_all()
