"""Archival compression codec (stand-in for SQL Server's XPRESS).

The paper's COLUMNSTORE_ARCHIVE option runs the already-encoded segment and
dictionary bytes through a Lempel-Ziv codec, trading scan CPU for an extra
~1.3-2x size reduction on cold data. We implement an LZ77 codec from
scratch (no zlib): a greedy single-probe hash match finder over a 64 KiB
window, emitting LZ4-style token sequences.

Format (little-endian):
    header:  magic ``b"XPR1"`` + uint32 uncompressed length
    body:    sequences of
             [token: 4 bits literal-len | 4 bits match-len-4]
             [literal-len extension bytes of 255, then remainder]
             [literals]
             [offset: uint16 >= 1]          (absent in the final sequence)
             [match-len extension bytes]    (absent in the final sequence)
The final sequence carries only literals (match fields omitted), as in LZ4.
"""

from __future__ import annotations

from ..errors import EncodingError

_MAGIC = b"XPR1"
_MIN_MATCH = 4
_WINDOW = 0xFFFF  # max back-reference distance (uint16 offset)
_HASH_MULT = 2654435761
_HASH_BITS = 16


def _hash4(word: int) -> int:
    return ((word * _HASH_MULT) & 0xFFFFFFFF) >> (32 - _HASH_BITS)


def compress(data: bytes) -> bytes:
    """Compress ``data``; output always round-trips through :func:`decompress`."""
    n = len(data)
    out = bytearray(_MAGIC)
    out += n.to_bytes(4, "little")
    if n == 0:
        return bytes(out)

    table: dict[int, int] = {}
    anchor = 0  # start of pending literals
    pos = 0
    limit = n - _MIN_MATCH

    while pos <= limit:
        word = int.from_bytes(data[pos : pos + 4], "little")
        slot = _hash4(word)
        candidate = table.get(slot, -1)
        table[slot] = pos
        if (
            candidate >= 0
            and pos - candidate <= _WINDOW
            and data[candidate : candidate + 4] == data[pos : pos + 4]
        ):
            # Extend the match forward.
            match_len = 4
            max_len = n - pos
            while (
                match_len < max_len
                and data[candidate + match_len] == data[pos + match_len]
            ):
                match_len += 1
            _emit_sequence(out, data, anchor, pos, pos - candidate, match_len)
            pos += match_len
            anchor = pos
        else:
            pos += 1

    _emit_final(out, data, anchor, n)
    return bytes(out)


def _emit_sequence(
    out: bytearray, data: bytes, anchor: int, pos: int, offset: int, match_len: int
) -> None:
    lit_len = pos - anchor
    ml = match_len - _MIN_MATCH
    token = (min(lit_len, 15) << 4) | min(ml, 15)
    out.append(token)
    _emit_length(out, lit_len, 15)
    out += data[anchor:pos]
    out += offset.to_bytes(2, "little")
    _emit_length(out, ml, 15)


def _emit_final(out: bytearray, data: bytes, anchor: int, end: int) -> None:
    lit_len = end - anchor
    out.append(min(lit_len, 15) << 4)
    _emit_length(out, lit_len, 15)
    out += data[anchor:end]


def _emit_length(out: bytearray, length: int, threshold: int) -> None:
    """Emit the 255-continuation extension bytes for a token field."""
    if length < threshold:
        return
    remaining = length - threshold
    while remaining >= 255:
        out.append(255)
        remaining -= 255
    out.append(remaining)


def decompress(payload: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    if len(payload) < 8 or payload[:4] != _MAGIC:
        raise EncodingError("not an XPR1 archive payload")
    expected = int.from_bytes(payload[4:8], "little")
    out = bytearray()
    pos = 8
    n = len(payload)
    while pos < n:
        token = payload[pos]
        pos += 1
        lit_len = token >> 4
        if lit_len == 15:
            lit_len, pos = _read_length(payload, pos, 15)
        out += payload[pos : pos + lit_len]
        pos += lit_len
        if pos >= n:
            break  # final, literal-only sequence
        offset = int.from_bytes(payload[pos : pos + 2], "little")
        pos += 2
        if offset == 0 or offset > len(out):
            raise EncodingError(f"corrupt archive payload: offset {offset}")
        match_len = token & 0x0F
        if match_len == 15:
            match_len, pos = _read_length(payload, pos, 15)
        match_len += _MIN_MATCH
        start = len(out) - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # Overlapping match: copy in offset-sized chunks.
            for i in range(match_len):
                out.append(out[start + i])
    if len(out) != expected:
        raise EncodingError(
            f"archive payload decompressed to {len(out)} bytes, expected {expected}"
        )
    return bytes(out)


def _read_length(payload: bytes, pos: int, base: int) -> tuple[int, int]:
    length = base
    while True:
        if pos >= len(payload):
            raise EncodingError("truncated archive payload")
        byte = payload[pos]
        pos += 1
        length += byte
        if byte != 255:
            return length, pos


def compression_ratio(data: bytes) -> float:
    """Convenience: ratio achieved on ``data`` (>= 1.0 means it shrank)."""
    if not data:
        return 1.0
    return len(data) / len(compress(data))
