"""The segment directory: catalog of row groups, segments and dictionaries.

The paper's directory keeps, for every segment, the metadata the engine
needs without opening the segment blob: row count, encoded size, min/max.
Ours additionally owns the per-column global (primary) dictionaries and
hands out row-group ids.

MVCC: each live row group carries a *creation epoch* — the commit epoch
at which it became visible (GENESIS for loaded/replayed/txn-less state,
PENDING while the creating transaction is uncommitted). Snapshot reads
filter by it (:meth:`SegmentDirectory.visible_groups`); the retirement
side of versioning (groups removed by the tuple mover / REBUILD but
still visible to older readers) lives in
:class:`~repro.storage.columnstore.ColumnStoreIndex`, which keeps the
retired objects alive until vacuum. Mutations happen under a small
mutex and iteration works over an immutably-swapped dict snapshot, so
readers never observe a dict mid-resize.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from threading import Lock
from typing import Any, Iterator

from ..errors import StorageError
from ..mvcc import GENESIS_EPOCH, PENDING_EPOCH
from ..schema import TableSchema
from .dictionary import GlobalDictionary
from .rowgroup import RowGroup


@dataclass(frozen=True)
class SegmentInfo:
    """Directory row describing one column segment (for EXPLAIN / tests)."""

    group_id: int
    column: str
    row_count: int
    null_count: int
    min_value: Any
    max_value: Any
    scheme: str
    encoded_size_bytes: int
    raw_size_bytes: int
    archived: bool


class SegmentDirectory:
    """Catalog of the compressed row groups of one columnstore index."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._row_groups: dict[int, RowGroup] = {}
        self._next_group_id = 0
        self._global_dicts: dict[str, GlobalDictionary] = {
            col.name: GlobalDictionary() for col in schema
        }
        # MVCC: group id -> creation epoch. Mutations to both dicts are
        # serialized by _mutex; _row_groups is additionally swapped as a
        # whole dict (copy-on-write) so lock-free iterators see a
        # consistent snapshot.
        self._created_epoch: dict[int, int] = {}
        self._mutex = Lock()
        # The epoch new groups are created at. GENESIS by default (bare
        # index use, loads, replay); the creating_at() context manager
        # scopes it for transactional bulk loads and maintenance, so the
        # bulk loader itself needs no epoch plumbing.
        self._creation_epoch = GENESIS_EPOCH

    @contextmanager
    def creating_at(self, epoch: int):
        """Scope the creation epoch for groups added inside the block."""
        previous = self._creation_epoch
        self._creation_epoch = epoch
        try:
            yield
        finally:
            self._creation_epoch = previous

    # ------------------------------------------------------------------ #
    # Row-group lifecycle
    # ------------------------------------------------------------------ #
    def allocate_group_id(self) -> int:
        group_id = self._next_group_id
        self._next_group_id += 1
        return group_id

    @property
    def next_group_id(self) -> int:
        return self._next_group_id

    def rewind_group_ids(self, next_group_id: int) -> None:
        """Roll the id allocator back (bulk-load undo).

        Only valid once every group with id >= ``next_group_id`` has been
        removed; ids stay deterministic across rollback + retry, which
        WAL replay's locator addressing depends on.
        """
        for group_id in self._row_groups:
            if group_id >= next_group_id:
                raise StorageError(
                    f"cannot rewind group ids to {next_group_id}: row group "
                    f"{group_id} still exists"
                )
        self._next_group_id = next_group_id

    def add_row_group(self, group: RowGroup, epoch: int | None = None) -> None:
        with self._mutex:
            if group.group_id in self._row_groups:
                raise StorageError(f"duplicate row group id {group.group_id}")
            updated = dict(self._row_groups)
            updated[group.group_id] = group
            self._created_epoch[group.group_id] = (
                epoch if epoch is not None else self._creation_epoch
            )
            self._row_groups = updated

    def replace_row_group(self, group: RowGroup, epoch: int | None = None) -> None:
        """Swap in a re-compressed version of an existing row group.

        ``epoch`` re-stamps the creation epoch (archival re-creates the
        group at the installing epoch); by default the stamp is kept.
        """
        with self._mutex:
            if group.group_id not in self._row_groups:
                raise StorageError(f"unknown row group id {group.group_id}")
            updated = dict(self._row_groups)
            updated[group.group_id] = group
            if epoch is not None:
                self._created_epoch[group.group_id] = epoch
            self._row_groups = updated

    def remove_row_group(self, group_id: int) -> RowGroup:
        with self._mutex:
            if group_id not in self._row_groups:
                raise StorageError(f"unknown row group id {group_id}")
            updated = dict(self._row_groups)
            group = updated.pop(group_id)
            self._created_epoch.pop(group_id, None)
            self._row_groups = updated
            return group

    def created_epoch(self, group_id: int) -> int:
        return self._created_epoch.get(group_id, GENESIS_EPOCH)

    def stamp_pending_from(self, first_group_id: int, epoch: int) -> None:
        """Commit hook for bulk loads: stamp groups created PENDING.

        Applies to ids ``>= first_group_id`` still pending — a stale
        hook (after a statement-level rollback removed the groups) is a
        no-op, and re-created ids stamp the same (correct) epoch.
        """
        with self._mutex:
            for group_id, created in self._created_epoch.items():
                if group_id >= first_group_id and created == PENDING_EPOCH:
                    self._created_epoch[group_id] = epoch

    def row_group(self, group_id: int) -> RowGroup:
        try:
            return self._row_groups[group_id]
        except KeyError:
            raise StorageError(f"unknown row group id {group_id}") from None

    def row_groups(self) -> Iterator[RowGroup]:
        """Row groups in id order (deterministic scans)."""
        groups = self._row_groups  # one consistent dict snapshot
        for group_id in sorted(groups):
            yield groups[group_id]

    def visible_groups(self, epoch: int) -> list[tuple[RowGroup, int]]:
        """(group, created_epoch) pairs visible at ``epoch``, id order.

        Taken under the mutex so the creation-epoch reads are consistent
        with the group dict — a commit stamping PENDING -> e concurrent
        with this capture is benign either way (e > epoch, so the group
        is invisible whichever value is read), but the mutex keeps the
        dict itself from resizing mid-iteration.
        """
        with self._mutex:
            groups = self._row_groups
            return [
                (groups[gid], created)
                for gid in sorted(groups)
                if (created := self._created_epoch.get(gid, GENESIS_EPOCH)) <= epoch
            ]

    def __len__(self) -> int:
        return len(self._row_groups)

    # ------------------------------------------------------------------ #
    # Dictionaries
    # ------------------------------------------------------------------ #
    def global_dictionary(self, column: str) -> GlobalDictionary:
        try:
            return self._global_dicts[column]
        except KeyError:
            raise StorageError(f"unknown column {column!r}") from None

    # ------------------------------------------------------------------ #
    # Metadata views
    # ------------------------------------------------------------------ #
    def segment_infos(self) -> list[SegmentInfo]:
        infos = []
        for group in self.row_groups():
            for column, seg in sorted(group.segments.items()):
                infos.append(
                    SegmentInfo(
                        group_id=group.group_id,
                        column=column,
                        row_count=seg.row_count,
                        null_count=seg.null_count,
                        min_value=seg.min_value,
                        max_value=seg.max_value,
                        scheme=seg.scheme.value,
                        encoded_size_bytes=seg.encoded_size_bytes,
                        raw_size_bytes=seg.raw_size_bytes,
                        archived=seg.archived,
                    )
                )
        return infos

    @property
    def total_rows(self) -> int:
        return sum(group.row_count for group in self._row_groups.values())

    @property
    def encoded_size_bytes(self) -> int:
        dict_size = sum(d.size_bytes for d in self._global_dicts.values())
        return sum(g.encoded_size_bytes for g in self._row_groups.values()) + dict_size

    @property
    def raw_size_bytes(self) -> int:
        return sum(g.raw_size_bytes for g in self._row_groups.values())
