"""The segment directory: catalog of row groups, segments and dictionaries.

The paper's directory keeps, for every segment, the metadata the engine
needs without opening the segment blob: row count, encoded size, min/max.
Ours additionally owns the per-column global (primary) dictionaries and
hands out row-group ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import StorageError
from ..schema import TableSchema
from .dictionary import GlobalDictionary
from .rowgroup import RowGroup


@dataclass(frozen=True)
class SegmentInfo:
    """Directory row describing one column segment (for EXPLAIN / tests)."""

    group_id: int
    column: str
    row_count: int
    null_count: int
    min_value: Any
    max_value: Any
    scheme: str
    encoded_size_bytes: int
    raw_size_bytes: int
    archived: bool


class SegmentDirectory:
    """Catalog of the compressed row groups of one columnstore index."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._row_groups: dict[int, RowGroup] = {}
        self._next_group_id = 0
        self._global_dicts: dict[str, GlobalDictionary] = {
            col.name: GlobalDictionary() for col in schema
        }

    # ------------------------------------------------------------------ #
    # Row-group lifecycle
    # ------------------------------------------------------------------ #
    def allocate_group_id(self) -> int:
        group_id = self._next_group_id
        self._next_group_id += 1
        return group_id

    @property
    def next_group_id(self) -> int:
        return self._next_group_id

    def rewind_group_ids(self, next_group_id: int) -> None:
        """Roll the id allocator back (bulk-load undo).

        Only valid once every group with id >= ``next_group_id`` has been
        removed; ids stay deterministic across rollback + retry, which
        WAL replay's locator addressing depends on.
        """
        for group_id in self._row_groups:
            if group_id >= next_group_id:
                raise StorageError(
                    f"cannot rewind group ids to {next_group_id}: row group "
                    f"{group_id} still exists"
                )
        self._next_group_id = next_group_id

    def add_row_group(self, group: RowGroup) -> None:
        if group.group_id in self._row_groups:
            raise StorageError(f"duplicate row group id {group.group_id}")
        self._row_groups[group.group_id] = group

    def replace_row_group(self, group: RowGroup) -> None:
        """Swap in a re-compressed version of an existing row group."""
        if group.group_id not in self._row_groups:
            raise StorageError(f"unknown row group id {group.group_id}")
        self._row_groups[group.group_id] = group

    def remove_row_group(self, group_id: int) -> RowGroup:
        try:
            return self._row_groups.pop(group_id)
        except KeyError:
            raise StorageError(f"unknown row group id {group_id}") from None

    def row_group(self, group_id: int) -> RowGroup:
        try:
            return self._row_groups[group_id]
        except KeyError:
            raise StorageError(f"unknown row group id {group_id}") from None

    def row_groups(self) -> Iterator[RowGroup]:
        """Row groups in id order (deterministic scans)."""
        for group_id in sorted(self._row_groups):
            yield self._row_groups[group_id]

    def __len__(self) -> int:
        return len(self._row_groups)

    # ------------------------------------------------------------------ #
    # Dictionaries
    # ------------------------------------------------------------------ #
    def global_dictionary(self, column: str) -> GlobalDictionary:
        try:
            return self._global_dicts[column]
        except KeyError:
            raise StorageError(f"unknown column {column!r}") from None

    # ------------------------------------------------------------------ #
    # Metadata views
    # ------------------------------------------------------------------ #
    def segment_infos(self) -> list[SegmentInfo]:
        infos = []
        for group in self.row_groups():
            for column, seg in sorted(group.segments.items()):
                infos.append(
                    SegmentInfo(
                        group_id=group.group_id,
                        column=column,
                        row_count=seg.row_count,
                        null_count=seg.null_count,
                        min_value=seg.min_value,
                        max_value=seg.max_value,
                        scheme=seg.scheme.value,
                        encoded_size_bytes=seg.encoded_size_bytes,
                        raw_size_bytes=seg.raw_size_bytes,
                        archived=seg.archived,
                    )
                )
        return infos

    @property
    def total_rows(self) -> int:
        return sum(group.row_count for group in self._row_groups.values())

    @property
    def encoded_size_bytes(self) -> int:
        dict_size = sum(d.size_bytes for d in self._global_dicts.values())
        return sum(g.encoded_size_bytes for g in self._row_groups.values()) + dict_size

    @property
    def raw_size_bytes(self) -> int:
        return sum(g.raw_size_bytes for g in self._row_groups.values())
