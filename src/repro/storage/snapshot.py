"""Checksummed manifest snapshots: the crash-safe save/load protocol.

A saved database directory looks like::

    <root>/MANIFEST.json          the commit record (atomic rename, last)
    <root>/snap_000003/...        all data files of snapshot 3
    <root>/snap_000004/...        a newer snapshot, or an interrupted save

Every save writes its files into a **fresh** snapshot directory (ids
strictly increase, so an interrupted save can never collide with or
overwrite committed data), then commits by atomically renaming
``MANIFEST.json`` into place. The manifest records the snapshot id and,
for every file, its byte size and CRC-32C — the manifest also carries a
checksum over itself. A save is therefore all-or-nothing:

* crash before the manifest rename -> the old manifest still points at
  the old, untouched snapshot directory; the half-written new directory
  is garbage-collected on the next open;
* crash after the rename -> the new snapshot is complete (every data
  file was fsynced and renamed before the manifest was written).

Opening verifies the size and checksum of every listed file before any
byte is deserialized, raising :class:`~repro.errors.CorruptBlobError`
naming each offending path. Recovery activity reports into the metrics
registry under the stable ``storage.recovery.*`` counters.

Pre-manifest directories (``catalog.json`` at the root, the layout of
earlier versions) are still readable through :class:`DirectoryReader`,
without checksum protection.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from ..errors import CorruptBlobError, RecoveryError
from ..observability import registry as metrics
from .diskio import DiskIO, crc32c

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1

_SNAP_DIR_RE = re.compile(r"^snap_(\d{6,})$")


def _snapshot_dir_name(snapshot_id: int) -> str:
    return f"snap_{snapshot_id:06d}"


# ---------------------------------------------------------------------- #
# Manifest
# ---------------------------------------------------------------------- #
@dataclass
class ManifestEntry:
    """One file of a snapshot: path relative to the snapshot directory."""

    path: str
    size: int
    crc32c: int


@dataclass
class Manifest:
    snapshot_id: int
    files: list[ManifestEntry] = field(default_factory=list)
    # Last WAL LSN whose effects this snapshot contains: replay-on-open
    # skips records at or below it, and the checkpoint truncates segments
    # it fully covers. 0 means "no WAL" (or a pre-WAL manifest).
    checkpoint_lsn: int = 0

    @property
    def directory(self) -> str:
        return _snapshot_dir_name(self.snapshot_id)

    def to_json(self) -> bytes:
        body = {
            "format_version": MANIFEST_VERSION,
            "snapshot_id": self.snapshot_id,
            "directory": self.directory,
            "checkpoint_lsn": self.checkpoint_lsn,
            "files": [
                {"path": e.path, "size": e.size, "crc32c": f"{e.crc32c:08x}"}
                for e in self.files
            ],
        }
        body["manifest_crc32c"] = f"{_self_checksum(body):08x}"
        return (json.dumps(body, indent=1, sort_keys=True) + "\n").encode("utf-8")

    @classmethod
    def from_json(cls, payload: bytes, source: str) -> "Manifest":
        try:
            body = json.loads(payload.decode("utf-8"))
            if body["format_version"] != MANIFEST_VERSION:
                raise RecoveryError(
                    f"{source}: unsupported manifest format_version "
                    f"{body['format_version']}"
                )
            recorded = int(body["manifest_crc32c"], 16)
            del body["manifest_crc32c"]
            if recorded != _self_checksum(body):
                raise CorruptBlobError("manifest self-checksum mismatch", path=source)
            files = [
                ManifestEntry(
                    path=str(entry["path"]),
                    size=int(entry["size"]),
                    crc32c=int(entry["crc32c"], 16),
                )
                for entry in body["files"]
            ]
            return cls(
                snapshot_id=int(body["snapshot_id"]),
                files=files,
                checkpoint_lsn=int(body.get("checkpoint_lsn", 0)),
            )
        except (RecoveryError, CorruptBlobError):
            raise
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise RecoveryError(f"{source}: unreadable manifest ({exc})") from exc


def _self_checksum(body: dict) -> int:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return crc32c(canonical.encode("utf-8"))


def load_manifest(disk: DiskIO, root: Path) -> Manifest | None:
    """The committed manifest of ``root``, or ``None`` if there is none."""
    path = Path(root) / MANIFEST_NAME
    if not disk.exists(path):
        return None
    return Manifest.from_json(disk.read_file(path), source=str(path))


# ---------------------------------------------------------------------- #
# Writing a snapshot
# ---------------------------------------------------------------------- #
class SnapshotWriter:
    """Accumulates one snapshot's files, then commits them atomically.

    ``write`` puts each file into the new snapshot directory (via
    write-temp/fsync/rename) and records its size and checksum;
    ``commit`` writes the manifest — the single atomic commit point —
    and garbage-collects superseded snapshot directories.
    """

    def __init__(self, disk: DiskIO, root: Path) -> None:
        self.disk = disk
        self.root = Path(root)
        self.disk.mkdir(self.root)
        self.snapshot_id = self._next_snapshot_id()
        self._dir = self.root / _snapshot_dir_name(self.snapshot_id)
        self._entries: list[ManifestEntry] = []
        # True once commit() verified the manifest rename actually stuck
        # (callers gate destructive follow-ups — WAL truncation — on it).
        self.committed = False

    def _next_snapshot_id(self) -> int:
        # Strictly greater than the committed snapshot AND any leftover
        # snapshot directory, so an interrupted save never collides.
        latest = 0
        try:
            manifest = load_manifest(self.disk, self.root)
        except (RecoveryError, CorruptBlobError):
            manifest = None  # a corrupt manifest must not block re-saving
        if manifest is not None:
            latest = manifest.snapshot_id
        for name in self.disk.listdir(self.root):
            match = _SNAP_DIR_RE.match(name)
            if match:
                latest = max(latest, int(match.group(1)))
        return latest + 1

    def write(self, relpath: str, data: bytes) -> None:
        """Write one file (path relative to the snapshot directory)."""
        rel = PurePosixPath(relpath)
        self.disk.write_file(self._dir / rel, data)
        self._entries.append(
            ManifestEntry(path=str(rel), size=len(data), crc32c=crc32c(data))
        )

    def commit(self, checkpoint_lsn: int = 0) -> Manifest:
        manifest = Manifest(
            snapshot_id=self.snapshot_id,
            files=list(self._entries),
            checkpoint_lsn=checkpoint_lsn,
        )
        # The snap_<id>/ directory entry must be durable *before* the
        # manifest names it: file writes fsync their own parent (the
        # snapshot directory) but not the root, so without this a power
        # cut right after the manifest rename could commit a manifest
        # pointing at a directory whose entry never reached the platter.
        self.disk.sync_dir(self.root)
        self.disk.write_file(self.root / MANIFEST_NAME, manifest.to_json())
        # Garbage collection is destructive, so read the manifest back
        # and only collect once it provably points at this snapshot — if
        # the rename was lost (dropped-rename fault, lying disk), the
        # previous snapshot is still the live one and must survive.
        try:
            committed = load_manifest(self.disk, self.root)
        except (RecoveryError, CorruptBlobError):
            committed = None
        if committed is not None and committed.snapshot_id == self.snapshot_id:
            self.committed = True
            collect_garbage(self.disk, self.root, keep_id=self.snapshot_id)
        return manifest


def collect_garbage(disk: DiskIO, root: Path, keep_id: int | None) -> int:
    """Remove snapshot directories other than ``keep_id`` and stray
    ``*.tmp`` files at the root; returns how many snapshots were removed."""
    root = Path(root)
    removed = 0
    for name in disk.listdir(root):
        match = _SNAP_DIR_RE.match(name)
        if match and (keep_id is None or int(match.group(1)) != keep_id):
            disk.remove_tree(root / name)
            removed += 1
        elif name.endswith(".tmp"):
            disk.remove(root / name)
    return removed


# ---------------------------------------------------------------------- #
# Reading a snapshot
# ---------------------------------------------------------------------- #
class SnapshotReader:
    """Verified, in-memory view of one committed snapshot."""

    def __init__(self, manifest: Manifest, files: dict[str, bytes]) -> None:
        self.manifest = manifest
        self._files = files

    def read(self, relpath: str) -> bytes:
        try:
            return self._files[str(PurePosixPath(relpath))]
        except KeyError:
            raise RecoveryError(
                f"file {relpath!r} is not part of snapshot "
                f"{self.manifest.snapshot_id}"
            ) from None

    def exists(self, relpath: str) -> bool:
        return str(PurePosixPath(relpath)) in self._files


class DirectoryReader:
    """Reads a pre-manifest (legacy) database directory, unverified."""

    def __init__(self, disk: DiskIO, root: Path) -> None:
        self.disk = disk
        self.root = Path(root)

    def read(self, relpath: str) -> bytes:
        path = self.root / PurePosixPath(relpath)
        if not self.disk.exists(path):
            raise RecoveryError(f"missing file {path}")
        return self.disk.read_file(path)

    def exists(self, relpath: str) -> bool:
        return self.disk.exists(self.root / PurePosixPath(relpath))


def open_snapshot(disk: DiskIO, root: Path) -> SnapshotReader:
    """Open the committed snapshot of ``root``: locate the newest complete
    manifest, verify every checksum, and roll back interrupted saves.

    Raises :class:`RecoveryError` if no manifest exists and
    :class:`CorruptBlobError` naming every file whose size or checksum
    does not match the manifest.
    """
    root = Path(root)
    manifest = load_manifest(disk, root)
    if manifest is None:
        raise RecoveryError(f"no manifest found in {root}")
    files: dict[str, bytes] = {}
    failures: list[str] = []
    snap_dir = root / manifest.directory
    for entry in manifest.files:
        problem = None
        path = snap_dir / PurePosixPath(entry.path)
        if not disk.exists(path):
            problem = "missing"
        else:
            data = disk.read_file(path)
            if len(data) != entry.size:
                problem = f"size mismatch (expected {entry.size}, got {len(data)})"
            elif crc32c(data) != entry.crc32c:
                problem = "checksum mismatch"
            else:
                files[entry.path] = data
        if problem is None:
            metrics.increment("storage.recovery.files_verified")
        else:
            metrics.increment("storage.recovery.checksum_failures")
            failures.append(f"{path} [{problem}]")
    if failures:
        raise CorruptBlobError(
            f"snapshot {manifest.snapshot_id} failed verification: "
            + "; ".join(failures)
        )
    # Interrupted newer/older saves are now provably irrelevant: roll
    # them back (remove their directories and stray temp files).
    rolled_back = collect_garbage(disk, root, keep_id=manifest.snapshot_id)
    if rolled_back:
        metrics.increment("storage.recovery.snapshots_rolled_back", rolled_back)
    return SnapshotReader(manifest, files)


def open_database_reader(disk: DiskIO, root: Path):
    """A reader for ``root``: verified snapshot, or legacy layout."""
    root = Path(root)
    manifest_exists = disk.exists(root / MANIFEST_NAME)
    if not manifest_exists:
        if disk.exists(root / "catalog.json"):
            return DirectoryReader(disk, root)  # pre-manifest layout
        raise RecoveryError(
            f"no database found at {root}: neither {MANIFEST_NAME} nor a "
            "legacy catalog.json is present"
        )
    return open_snapshot(disk, root)


# ---------------------------------------------------------------------- #
# Integrity checking (CLI `repro check <dir>` / `\check`)
# ---------------------------------------------------------------------- #
@dataclass
class FileVerdict:
    path: str
    status: str  # ok | missing | size-mismatch | checksum-mismatch | undecodable
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class IntegrityReport:
    root: str
    manifest_status: str  # ok | missing | corrupt | legacy | wal-only
    snapshot_id: int | None = None
    verdicts: list[FileVerdict] = field(default_factory=list)
    detail: str = ""
    checkpoint_lsn: int = 0
    wal_verdicts: list = field(default_factory=list)  # list[WalVerdict]
    archive_verdicts: list = field(default_factory=list)  # list[WalVerdict]

    @property
    def ok(self) -> bool:
        snapshot_ok = self.manifest_status in ("ok", "wal-only") and all(
            v.ok for v in self.verdicts
        )
        return (
            snapshot_ok
            and all(v.ok for v in self.wal_verdicts)
            and all(v.ok for v in self.archive_verdicts)
        )

    def render(self) -> list[str]:
        lines = [f"integrity check of {self.root}"]
        if self.manifest_status == "ok":
            lines.append(
                f"manifest: ok (snapshot {self.snapshot_id}, "
                f"{len(self.verdicts)} files, checkpoint LSN "
                f"{self.checkpoint_lsn})"
            )
        else:
            lines.append(f"manifest: {self.manifest_status} {self.detail}".rstrip())
        for verdict in self.verdicts:
            line = f"  {verdict.path}: {verdict.status}"
            if verdict.detail:
                line += f" ({verdict.detail})"
            lines.append(line)
        if self.wal_verdicts:
            lines.append(f"wal: {len(self.wal_verdicts)} segment verdicts")
            for verdict in self.wal_verdicts:
                line = f"  wal/{verdict.segment}: {verdict.status}"
                if verdict.detail:
                    line += f" ({verdict.detail})"
                lines.append(line)
        if self.archive_verdicts:
            lines.append(
                f"archive: {len(self.archive_verdicts)} verdicts"
            )
            for verdict in self.archive_verdicts:
                line = f"  wal_archive/{verdict.segment}: {verdict.status}"
                if verdict.detail:
                    line += f" ({verdict.detail})"
                lines.append(line)
        bad = (
            sum(not v.ok for v in self.verdicts)
            + sum(not v.ok for v in self.wal_verdicts)
            + sum(not v.ok for v in self.archive_verdicts)
        )
        lines.append(
            "result: ok"
            if self.ok
            else f"result: FAILED ({bad} bad file{'s' if bad != 1 else ''})"
        )
        return lines


def check_database(disk: DiskIO, root: Path) -> IntegrityReport:
    """Scan a saved database and report a per-file verdict.

    Never raises for corruption — corruption is the *result*. Verifies
    manifest self-checksum, per-file existence/size/CRC-32C, and that
    every segment blob structurally decodes.
    """
    from ..backup.archive import ARCHIVE_DIR_NAME, check_archive
    from ..backup.manifest import RESTORE_MARKER_NAME
    from ..wal.log import WAL_DIR_NAME, check_wal

    root = Path(root)
    if disk.exists(root / RESTORE_MARKER_NAME):
        return IntegrityReport(
            root=str(root),
            manifest_status="restore-in-progress",
            detail=f"({RESTORE_MARKER_NAME} marker present: an interrupted "
            "restore — this directory is not a committed database)",
        )
    wal_dir = root / WAL_DIR_NAME
    has_wal = disk.is_dir(wal_dir)
    if not disk.exists(root / MANIFEST_NAME):
        if disk.exists(root / "catalog.json"):
            return IntegrityReport(
                root=str(root),
                manifest_status="legacy",
                detail="(pre-manifest layout: no checksums to verify)",
            )
        if has_wal:
            # A database that crashed before its first checkpoint: the
            # whole state lives in the log.
            return IntegrityReport(
                root=str(root),
                manifest_status="wal-only",
                detail="(no snapshot yet: all state is in the log)",
                wal_verdicts=check_wal(disk, wal_dir, checkpoint_lsn=0),
            )
        return IntegrityReport(
            root=str(root), manifest_status="missing", detail="(no database here)"
        )
    try:
        manifest = load_manifest(disk, root)
    except (RecoveryError, CorruptBlobError) as exc:
        return IntegrityReport(
            root=str(root), manifest_status="corrupt", detail=f"({exc})"
        )
    assert manifest is not None
    report = IntegrityReport(
        root=str(root),
        manifest_status="ok",
        snapshot_id=manifest.snapshot_id,
        checkpoint_lsn=manifest.checkpoint_lsn,
    )
    snap_dir = root / manifest.directory
    for entry in manifest.files:
        path = snap_dir / PurePosixPath(entry.path)
        if not disk.exists(path):
            verdict = FileVerdict(entry.path, "missing")
        else:
            data = disk.read_file(path)
            if len(data) != entry.size:
                verdict = FileVerdict(
                    entry.path,
                    "size-mismatch",
                    f"expected {entry.size} bytes, found {len(data)}",
                )
            elif crc32c(data) != entry.crc32c:
                verdict = FileVerdict(entry.path, "checksum-mismatch")
            else:
                verdict = _decode_verdict(entry.path, data)
        if verdict.ok:
            metrics.increment("storage.recovery.files_verified")
        else:
            metrics.increment("storage.recovery.checksum_failures")
        report.verdicts.append(verdict)
    if has_wal:
        report.wal_verdicts = check_wal(
            disk, wal_dir, checkpoint_lsn=manifest.checkpoint_lsn
        )
    if disk.is_dir(root / ARCHIVE_DIR_NAME):
        report.archive_verdicts = check_archive(disk, root / ARCHIVE_DIR_NAME)
    return report


def _decode_verdict(relpath: str, data: bytes) -> FileVerdict:
    """Structural decode check for self-describing file types."""
    from ..errors import EncodingError
    from . import blob

    if relpath.endswith(".seg"):
        try:
            blob.deserialize_segment(data)
        except EncodingError as exc:
            return FileVerdict(relpath, "undecodable", str(exc))
    elif relpath.endswith(".json"):
        try:
            json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return FileVerdict(relpath, "undecodable", str(exc))
    return FileVerdict(relpath, "ok")
