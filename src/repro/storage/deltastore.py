"""Delta stores: B-tree row stores absorbing trickle inserts.

New rows that arrive one at a time (or in small batches) land in the open
delta store — an uncompressed B-tree keyed by row id, exactly as in the
paper. When a delta store reaches the close threshold it stops accepting
inserts and waits for the tuple mover to compress it into a row group.
Deletes against delta-store rows remove them in place (no delete-bitmap
entry needed).

Redo determinism: delta ids, row ids and the open/closed transitions are
pure functions of the insert/close sequence, so WAL replay
(:mod:`repro.wal.replay`) driving the same statements through the same
thresholds reconstructs structurally identical delta stores — which is
what lets later log records address rows by (delta id, position).
"""

from __future__ import annotations

import enum
from typing import Any, Iterator

import numpy as np

from ..errors import StorageError
from ..observability import registry as metrics
from ..schema import TableSchema
from .btree import BPlusTree


class DeltaState(enum.Enum):
    OPEN = "open"
    CLOSED = "closed"


class DeltaStore:
    """One delta store of a columnstore index."""

    def __init__(self, delta_id: int, schema: TableSchema, btree_order: int = 64) -> None:
        self.delta_id = delta_id
        self.schema = schema
        self.state = DeltaState.OPEN
        self._rows = BPlusTree(order=btree_order)

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def is_open(self) -> bool:
        return self.state is DeltaState.OPEN

    def close(self) -> None:
        """Stop accepting inserts; the tuple mover may now compress it."""
        if self.state is DeltaState.OPEN:
            metrics.increment("storage.delta.stores_closed")
        self.state = DeltaState.CLOSED

    def reopen(self) -> None:
        """Undo a close transition (rollback of the insert that tripped
        the close threshold). Only the transaction layer calls this."""
        self.state = DeltaState.OPEN

    # ------------------------------------------------------------------ #
    # DML
    # ------------------------------------------------------------------ #
    def insert(self, row_id: int, values: tuple[Any, ...]) -> None:
        if self.state is not DeltaState.OPEN:
            raise StorageError(f"delta store {self.delta_id} is closed")
        if row_id in self._rows:
            raise StorageError(f"duplicate row id {row_id} in delta store")
        self._rows.insert(row_id, values)
        metrics.increment("storage.delta.rows_inserted")

    def delete(self, row_id: int) -> bool:
        """Delete a row in place; returns ``False`` if absent."""
        return self._rows.delete(row_id)

    def restore(self, row_id: int, values: tuple[Any, ...]) -> None:
        """Re-insert a deleted row (delete undo), even when closed.

        Bypasses the OPEN check and the insert metrics: the row is not
        new, it is the original row coming back under its original id.
        """
        if row_id in self._rows:
            raise StorageError(
                f"cannot restore row {row_id}: it is still present in "
                f"delta store {self.delta_id}"
            )
        self._rows.insert(row_id, values)

    def get(self, row_id: int) -> tuple[Any, ...] | None:
        return self._rows.get(row_id)

    # ------------------------------------------------------------------ #
    # Scans
    # ------------------------------------------------------------------ #
    def scan(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """(row_id, row) pairs in row-id order."""
        return iter(self._rows.items())

    def to_columns(self) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray | None], list[int]]:
        """Materialize as column arrays for vectorized scans / compression.

        Returns (columns, null_masks, row_ids). VARCHAR columns come back
        as object arrays, everything else in the physical NumPy dtype.
        """
        rows = list(self._rows.items())
        row_ids = [row_id for row_id, _ in rows]
        columns: dict[str, np.ndarray] = {}
        null_masks: dict[str, np.ndarray | None] = {}
        n = len(rows)
        for position, col in enumerate(self.schema):
            raw = [row[position] for _, row in rows]
            mask = np.fromiter((v is None for v in raw), dtype=bool, count=n)
            has_nulls = bool(mask.any())
            dtype = col.dtype.numpy_dtype
            if dtype == object:
                arr = np.empty(n, dtype=object)
                arr[:] = ["" if v is None else v for v in raw]
            else:
                fill = 0 if dtype != np.bool_ else False
                arr = np.array([fill if v is None else v for v in raw], dtype=dtype)
            columns[col.name] = arr
            null_masks[col.name] = mask if has_nulls else None
        return columns, null_masks, row_ids

    def freeze(self) -> "FrozenDeltaView":
        """An immutable columnar capture of this delta store's rows.

        Snapshot reads pin one of these at statement start: the B-tree
        keeps mutating under concurrent DML, but a frozen view's arrays
        are fresh copies, so a scan against it can run without holding
        any lock (see :meth:`ColumnStoreIndex.pin_scan_units`).
        """
        columns, null_masks, row_ids = self.to_columns()
        return FrozenDeltaView(self.delta_id, columns, null_masks, row_ids)

    @property
    def size_bytes(self) -> int:
        """Uncompressed accounting size (rows are stored as Python tuples)."""
        total = 0
        for _, row in self._rows.items():
            for col, value in zip(self.schema, row):
                if value is None:
                    total += 2
                elif isinstance(value, str):
                    total += len(value.encode("utf-8")) + 2
                else:
                    total += col.dtype.fixed_width_bytes
            total += 16  # per-row B-tree overhead
        return total


class FrozenDeltaView:
    """A point-in-time columnar copy of one delta store.

    Duck-compatible with the slice of :class:`DeltaStore` the scan path
    uses (``delta_id`` / ``row_count`` / ``to_columns`` / ``scan``), but
    backed by arrays materialized at :meth:`DeltaStore.freeze` time —
    concurrent inserts and deletes against the live store never show
    through. Read-only by construction: it has no mutating methods.
    """

    __slots__ = ("delta_id", "_columns", "_null_masks", "_row_ids")

    def __init__(
        self,
        delta_id: int,
        columns: dict[str, np.ndarray],
        null_masks: dict[str, np.ndarray | None],
        row_ids: list[int],
    ) -> None:
        self.delta_id = delta_id
        self._columns = columns
        self._null_masks = null_masks
        self._row_ids = row_ids

    @property
    def row_count(self) -> int:
        return len(self._row_ids)

    def to_columns(self) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray | None], list[int]]:
        return self._columns, self._null_masks, self._row_ids

    def scan(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """(row_id, row) pairs reconstructed from the frozen columns."""
        names = list(self._columns)
        for position, row_id in enumerate(self._row_ids):
            row = []
            for name in names:
                mask = self._null_masks[name]
                if mask is not None and mask[position]:
                    row.append(None)
                else:
                    value = self._columns[name][position]
                    row.append(value.item() if hasattr(value, "item") else value)
            yield row_id, tuple(row)
