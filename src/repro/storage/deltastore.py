"""Delta stores: B-tree row stores absorbing trickle inserts.

New rows that arrive one at a time (or in small batches) land in the open
delta store — an uncompressed B-tree keyed by row id, exactly as in the
paper. When a delta store reaches the close threshold it stops accepting
inserts and waits for the tuple mover to compress it into a row group.

MVCC: each row carries an insert epoch, and deletes against delta rows
*tombstone* them (stamp a delete epoch) instead of removing them from
the B-tree — a snapshot reader pinned before the delete committed still
needs the row. Physical removal is deferred to :meth:`gc`, driven by the
vacuum pass once no registered reader can see the tombstoned row. All
current-state accessors (``row_count``, ``get``, ``scan`` …) present
only live (un-tombstoned) rows, so single-caller behavior is unchanged;
:meth:`capture` materializes the rows visible at a specific epoch.

Redo determinism: delta ids, row ids and the open/closed transitions are
pure functions of the insert/close sequence, so WAL replay
(:mod:`repro.wal.replay`) driving the same statements through the same
thresholds reconstructs structurally identical delta stores — which is
what lets later log records address rows by (delta id, position).
Tombstoned-but-not-yet-collected rows never change that: row ids are
never reused, and replayed deletes are txn-less so their tombstones are
collected by the same deterministic vacuum rule.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Iterator

import numpy as np

from ..errors import StorageError
from ..mvcc import GENESIS_EPOCH, PENDING_EPOCH
from ..observability import registry as metrics
from ..schema import TableSchema
from .btree import BPlusTree


class DeltaState(enum.Enum):
    OPEN = "open"
    CLOSED = "closed"


class DeltaStore:
    """One delta store of a columnstore index."""

    def __init__(self, delta_id: int, schema: TableSchema, btree_order: int = 64) -> None:
        self.delta_id = delta_id
        self.schema = schema
        self.state = DeltaState.OPEN
        self._rows = BPlusTree(order=btree_order)
        # MVCC stamps. A row id present in _rows but absent from
        # _insert_epochs was inserted at GENESIS (loaded snapshots and
        # replayed state take this path); _tombstones maps row id ->
        # delete epoch for rows deleted-but-not-yet-collected.
        self._insert_epochs: dict[int, int] = {}
        self._tombstones: dict[int, int] = {}
        # Guards the B-tree + stamp dicts against lock-free capture():
        # snapshot readers materialize columnar copies while writers
        # keep inserting/tombstoning.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self.row_count

    @property
    def row_count(self) -> int:
        """Live (un-tombstoned) rows — the current-state view."""
        return len(self._rows) - len(self._tombstones)

    @property
    def physical_row_count(self) -> int:
        """All rows still in the B-tree, tombstoned ones included."""
        return len(self._rows)

    @property
    def is_open(self) -> bool:
        return self.state is DeltaState.OPEN

    def close(self) -> None:
        """Stop accepting inserts; the tuple mover may now compress it."""
        if self.state is DeltaState.OPEN:
            metrics.increment("storage.delta.stores_closed")
        self.state = DeltaState.CLOSED

    def reopen(self) -> None:
        """Undo a close transition (rollback of the insert that tripped
        the close threshold). Only the transaction layer calls this."""
        self.state = DeltaState.OPEN

    # ------------------------------------------------------------------ #
    # DML
    # ------------------------------------------------------------------ #
    def insert(
        self, row_id: int, values: tuple[Any, ...], epoch: int = GENESIS_EPOCH
    ) -> None:
        if self.state is not DeltaState.OPEN:
            raise StorageError(f"delta store {self.delta_id} is closed")
        with self._lock:
            if row_id in self._rows:
                raise StorageError(f"duplicate row id {row_id} in delta store")
            self._rows.insert(row_id, values)
            if epoch != GENESIS_EPOCH:
                self._insert_epochs[row_id] = epoch
        metrics.increment("storage.delta.rows_inserted")

    def stamp_insert(self, row_id: int, epoch: int) -> None:
        """Commit hook: replace a PENDING insert epoch with the real one.

        No-op if the row is gone (rolled back) or already stamped.
        """
        with self._lock:
            if self._insert_epochs.get(row_id) == PENDING_EPOCH:
                if epoch == GENESIS_EPOCH:
                    del self._insert_epochs[row_id]
                else:
                    self._insert_epochs[row_id] = epoch

    def delete(self, row_id: int) -> bool:
        """Physically remove a row; returns ``False`` if absent.

        This is the *non-versioned* removal used by insert undo (the row
        was never visible to anyone) and by direct single-caller code.
        Versioned deletes go through :meth:`tombstone`.
        """
        with self._lock:
            if not self._rows.delete(row_id):
                return False
            self._insert_epochs.pop(row_id, None)
            self._tombstones.pop(row_id, None)
            return True

    def tombstone(self, row_id: int, epoch: int) -> bool:
        """Mark a row deleted as of ``epoch``; ``False`` if already gone.

        The row stays in the B-tree for snapshot readers at older epochs;
        :meth:`gc` removes it once the GC horizon passes ``epoch``.
        """
        with self._lock:
            if row_id not in self._rows or row_id in self._tombstones:
                return False
            self._tombstones[row_id] = epoch
            return True

    def stamp_tombstone(self, row_id: int, epoch: int) -> None:
        """Commit hook: replace a PENDING tombstone with its commit epoch."""
        with self._lock:
            if self._tombstones.get(row_id) == PENDING_EPOCH:
                self._tombstones[row_id] = epoch

    def clear_tombstone(self, row_id: int) -> bool:
        """Delete undo: make a tombstoned row live again."""
        with self._lock:
            return self._tombstones.pop(row_id, None) is not None

    def restore(self, row_id: int, values: tuple[Any, ...]) -> None:
        """Re-insert a deleted row (delete undo), even when closed.

        Bypasses the OPEN check and the insert metrics: the row is not
        new, it is the original row coming back under its original id.
        Handles both removal flavors — a tombstoned row comes back by
        clearing the tombstone, a physically removed one by re-insertion.
        """
        with self._lock:
            if row_id in self._rows:
                if self._tombstones.pop(row_id, None) is not None:
                    return
                raise StorageError(
                    f"cannot restore row {row_id}: it is still present in "
                    f"delta store {self.delta_id}"
                )
            self._rows.insert(row_id, values)

    def get(self, row_id: int) -> tuple[Any, ...] | None:
        with self._lock:
            if row_id in self._tombstones:
                return None
            return self._rows.get(row_id)

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def gc(self, horizon: int) -> int:
        """Physically remove tombstoned rows no reader can see.

        A tombstone at epoch ``e <= horizon`` is invisible to every
        registered reader and to all future ones, so the row is removed
        from the B-tree. Returns the number of rows collected.
        """
        with self._lock:
            dead = [rid for rid, e in self._tombstones.items() if e <= horizon]
            for rid in dead:
                self._rows.delete(rid)
                self._insert_epochs.pop(rid, None)
                del self._tombstones[rid]
        return len(dead)

    # ------------------------------------------------------------------ #
    # Scans
    # ------------------------------------------------------------------ #
    def scan(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """(row_id, row) pairs of live rows, in row-id order."""
        with self._lock:
            items = [
                (rid, row)
                for rid, row in self._rows.items()
                if rid not in self._tombstones
            ]
        return iter(items)

    def _items_at(self, epoch: int | None) -> list[tuple[int, tuple[Any, ...]]]:
        """Rows visible at ``epoch`` (None = live rows incl. pending)."""
        with self._lock:
            if epoch is None:
                return [
                    (rid, row)
                    for rid, row in self._rows.items()
                    if rid not in self._tombstones
                ]
            inserts = self._insert_epochs
            tombs = self._tombstones
            return [
                (rid, row)
                for rid, row in self._rows.items()
                if inserts.get(rid, GENESIS_EPOCH) <= epoch
                and tombs.get(rid, PENDING_EPOCH + 1) > epoch
            ]

    def _columnize(
        self, rows: list[tuple[int, tuple[Any, ...]]]
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray | None], list[int]]:
        row_ids = [row_id for row_id, _ in rows]
        columns: dict[str, np.ndarray] = {}
        null_masks: dict[str, np.ndarray | None] = {}
        n = len(rows)
        for position, col in enumerate(self.schema):
            raw = [row[position] for _, row in rows]
            mask = np.fromiter((v is None for v in raw), dtype=bool, count=n)
            has_nulls = bool(mask.any())
            dtype = col.dtype.numpy_dtype
            if dtype == object:
                arr = np.empty(n, dtype=object)
                arr[:] = ["" if v is None else v for v in raw]
            else:
                fill = 0 if dtype != np.bool_ else False
                arr = np.array([fill if v is None else v for v in raw], dtype=dtype)
            columns[col.name] = arr
            null_masks[col.name] = mask if has_nulls else None
        return columns, null_masks, row_ids

    def to_columns(self) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray | None], list[int]]:
        """Materialize live rows as column arrays for vectorized scans /
        compression.

        Returns (columns, null_masks, row_ids). VARCHAR columns come back
        as object arrays, everything else in the physical NumPy dtype.
        """
        return self._columnize(self._items_at(None))

    def capture(self, epoch: int | None = None) -> "FrozenDeltaView":
        """An immutable columnar capture of the rows visible at ``epoch``.

        Snapshot reads pin one of these at statement start: the B-tree
        keeps mutating under concurrent DML, but a frozen view's arrays
        are fresh copies, so a scan against it can run without holding
        any lock (see :meth:`ColumnStoreIndex.pin_scan_units`).
        ``epoch=None`` captures the current live rows (pending included).
        """
        columns, null_masks, row_ids = self._columnize(self._items_at(epoch))
        return FrozenDeltaView(self.delta_id, columns, null_masks, row_ids)

    def freeze(self) -> "FrozenDeltaView":
        """Back-compat alias: capture the current live rows."""
        return self.capture(None)

    @property
    def size_bytes(self) -> int:
        """Uncompressed accounting size (rows are stored as Python tuples)."""
        total = 0
        for _, row in self.scan():
            for col, value in zip(self.schema, row):
                if value is None:
                    total += 2
                elif isinstance(value, str):
                    total += len(value.encode("utf-8")) + 2
                else:
                    total += col.dtype.fixed_width_bytes
            total += 16  # per-row B-tree overhead
        return total


class FrozenDeltaView:
    """A point-in-time columnar copy of one delta store.

    Duck-compatible with the slice of :class:`DeltaStore` the scan path
    uses (``delta_id`` / ``row_count`` / ``to_columns`` / ``scan``), but
    backed by arrays materialized at :meth:`DeltaStore.capture` time —
    concurrent inserts and deletes against the live store never show
    through. Read-only by construction: it has no mutating methods.
    """

    __slots__ = ("delta_id", "_columns", "_null_masks", "_row_ids")

    def __init__(
        self,
        delta_id: int,
        columns: dict[str, np.ndarray],
        null_masks: dict[str, np.ndarray | None],
        row_ids: list[int],
    ) -> None:
        self.delta_id = delta_id
        self._columns = columns
        self._null_masks = null_masks
        self._row_ids = row_ids

    @property
    def row_count(self) -> int:
        return len(self._row_ids)

    def to_columns(self) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray | None], list[int]]:
        return self._columns, self._null_masks, self._row_ids

    def scan(self) -> Iterator[tuple[int, tuple[Any, ...]]]:
        """(row_id, row) pairs reconstructed from the frozen columns."""
        names = list(self._columns)
        for position, row_id in enumerate(self._row_ids):
            row = []
            for name in names:
                mask = self._null_masks[name]
                if mask is not None and mask[position]:
                    row.append(None)
                else:
                    value = self._columns[name][position]
                    row.append(value.item() if hasattr(value, "item") else value)
            yield row_id, tuple(row)
