"""Bit packing of non-negative integer arrays.

Column segments store dictionary codes and rebased numeric offsets with the
minimum number of bits needed for the segment's value range, exactly as the
paper's bit-pack compression does. Packing is vectorized via NumPy's
``packbits``/``unpackbits`` with little-endian bit order, so a value ``v``
occupies bits ``[i*width, (i+1)*width)`` of the output stream.
"""

from __future__ import annotations

import numpy as np

from ..errors import EncodingError


def bits_needed(max_value: int) -> int:
    """Number of bits required to represent values in ``[0, max_value]``.

    ``max_value == 0`` needs zero bits: the whole segment is the single
    value 0 and the packed payload is empty.
    """
    if max_value < 0:
        raise EncodingError(f"bit packing requires non-negative values, got max {max_value}")
    return int(max_value).bit_length()


def pack(values: np.ndarray, width: int) -> bytes:
    """Pack ``values`` (non-negative ints) into ``width`` bits each.

    Returns the packed byte payload. ``width`` may be zero when every value
    is zero.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise EncodingError("pack expects a 1-D array")
    if width == 0:
        if values.size and int(values.max()) != 0:
            raise EncodingError("width 0 requires all values to be zero")
        return b""
    if width > 64:
        raise EncodingError(f"bit width {width} exceeds 64")
    if values.size == 0:
        return b""
    vals = values.astype(np.uint64, copy=False)
    if int(vals.max()) >= (1 << width):
        raise EncodingError(
            f"value {int(vals.max())} does not fit in {width} bits"
        )
    shifts = np.arange(width, dtype=np.uint64)
    # (n, width) matrix of bits, little-endian within each value.
    bits = ((vals[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.reshape(-1), bitorder="little").tobytes()


def unpack(payload: bytes, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack`: recover ``count`` values of ``width`` bits."""
    if count < 0:
        raise EncodingError(f"negative count {count}")
    if width == 0:
        return np.zeros(count, dtype=np.uint64)
    total_bits = count * width
    if len(payload) * 8 < total_bits:
        raise EncodingError(
            f"payload has {len(payload) * 8} bits, need {total_bits}"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    flat = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8), count=total_bits, bitorder="little"
    )
    bits = flat.reshape(count, width).astype(np.uint64)
    shifts = np.arange(width, dtype=np.uint64)
    return (bits << shifts).sum(axis=1, dtype=np.uint64)


def packed_size_bytes(count: int, width: int) -> int:
    """Exact payload size :func:`pack` produces, for encoding selection."""
    return (count * width + 7) // 8
