"""Database persistence: save/load a whole database to a directory.

Models the on-disk reality of the paper's design: compressed segments are
immutable blobs (one file per segment, written by
:mod:`repro.storage.blob`), the directory/catalog is small metadata, and
the mutable side (delta stores, delete bitmap, row-store heaps) is
serialized row-wise.

All file access goes through the snapshot layer
(:mod:`repro.storage.snapshot`): a *writer* with ``write(relpath, data)``
that records sizes and checksums into the manifest, and a *reader* with
``read(relpath)`` / ``exists(relpath)`` whose bytes were already
checksum-verified. Layout inside a snapshot directory::

    catalog.json                    tables, schemas, configs
    <table>/meta.json               id counters, delta states
    <table>/rowgroups/g<id>.<col>.seg
    <table>/delta_<id>.rows
    <table>/rowstore.rows
    <table>/delete_bitmap.json

Decode paths are bounds-checked: truncated or bit-flipped blobs raise
:class:`~repro.errors.CorruptBlobError` (never ``IndexError``), and
structurally broken metadata raises :class:`~repro.errors.RecoveryError`.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import CorruptBlobError, EncodingError, RecoveryError
from ..schema import ColumnDef, TableSchema
from ..types import DataType, TypeKind
from . import serde
from .blob import deserialize_segment, serialize_segment
from .columnstore import ColumnStoreIndex
from .config import StoreConfig
from .deltastore import DeltaStore
from .rowgroup import RowGroup


# ---------------------------------------------------------------------- #
# Row serialization (delta stores, row-store heaps)
# ---------------------------------------------------------------------- #
def serialize_rows(schema: TableSchema, rows: list[tuple[Any, ...]]) -> bytes:
    """Column-wise serialization of physical rows with NULL flags."""
    out = bytearray()
    serde.write_varint(out, len(rows))
    for position, col in enumerate(schema):
        values = [row[position] for row in rows]
        null_flags = bytearray()
        non_null = []
        for value in values:
            if value is None:
                null_flags.append(1)
            else:
                null_flags.append(0)
                non_null.append(value)
        out += bytes(null_flags)
        payload = serde.serialize_values(non_null, col.dtype)
        serde.write_varint(out, len(payload))
        out += payload
    return bytes(out)


def deserialize_rows(schema: TableSchema, blob: bytes) -> list[tuple[Any, ...]]:
    """Inverse of :func:`serialize_rows`, bounds-checked throughout."""
    count, pos = serde.read_varint(blob, 0)
    columns: list[list[Any]] = []
    for col in schema:
        flags = blob[pos : pos + count]
        if len(flags) != count:
            raise CorruptBlobError(
                f"row blob truncated in null flags of column {col.name!r}: "
                f"need {count} bytes, have {len(flags)}"
            )
        pos += count
        length, pos = serde.read_varint(blob, pos)
        if pos + length > len(blob):
            raise CorruptBlobError(
                f"row blob truncated in payload of column {col.name!r}: "
                f"need {length} bytes at offset {pos}, have {len(blob) - pos}"
            )
        non_null = serde.deserialize_values(blob[pos : pos + length], col.dtype)
        pos += length
        expected = count - sum(flags)
        if len(non_null) != expected:
            raise CorruptBlobError(
                f"row blob column {col.name!r} carries {len(non_null)} "
                f"values but null flags promise {expected}"
            )
        if col.dtype.kind is TypeKind.BOOL:
            non_null = [bool(v) for v in non_null]
        it = iter(non_null)
        columns.append([None if flag else next(it) for flag in flags])
    if pos != len(blob):
        raise CorruptBlobError(
            f"row blob has {len(blob) - pos} trailing bytes after offset {pos}"
        )
    return list(zip(*columns)) if columns else []


# ---------------------------------------------------------------------- #
# Schema / config <-> JSON
# ---------------------------------------------------------------------- #
def schema_to_json(schema: TableSchema) -> list[dict]:
    out = []
    for col in schema:
        out.append(
            {
                "name": col.name,
                "kind": col.dtype.kind.value,
                "scale": col.dtype.scale,
                "length": col.dtype.length,
                "nullable": col.nullable,
            }
        )
    return out


def schema_from_json(data: list[dict]) -> TableSchema:
    columns = []
    for entry in data:
        dtype = DataType(
            TypeKind(entry["kind"]), scale=entry["scale"], length=entry["length"]
        )
        columns.append(ColumnDef(entry["name"], dtype, entry["nullable"]))
    return TableSchema(columns)


def config_to_json(config: StoreConfig) -> dict:
    return {
        "rowgroup_size": config.rowgroup_size,
        "bulk_load_threshold": config.bulk_load_threshold,
        "delta_close_rows": config.delta_close_rows,
        "reorder_rows": config.reorder_rows,
        "archival": config.archival,
        "btree_order": config.btree_order,
    }


def config_from_json(data: dict) -> StoreConfig:
    return StoreConfig(**data)


def _read_json(reader, relpath: str) -> Any:
    """Parse a JSON metadata file; structural failure is a recovery error."""
    try:
        return json.loads(reader.read(relpath).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise RecoveryError(f"unreadable metadata file {relpath}: {exc}") from exc


# ---------------------------------------------------------------------- #
# Columnstore index save/load
# ---------------------------------------------------------------------- #
def save_columnstore(index: ColumnStoreIndex, writer, prefix: str) -> None:
    """Write one columnstore's files under ``<prefix>/`` via ``writer``."""
    group_ids = []
    for group in index.directory.row_groups():
        group_ids.append(group.group_id)
        for column, segment in group.segments.items():
            writer.write(
                f"{prefix}/rowgroups/g{group.group_id}.{column}.seg",
                serialize_segment(segment),
            )

    delta_meta = []
    for delta in index.delta_stores():
        # One scan pass: ids and rows come from the same iteration, so
        # they can never pair up rows from different tree states.
        pairs = list(delta.scan())
        payload = bytearray()
        serde.write_varint(payload, len(pairs))
        for row_id, _ in pairs:
            serde.write_varint(payload, row_id)
        payload += serialize_rows(index.schema, [row for _, row in pairs])
        writer.write(f"{prefix}/delta_{delta.delta_id}.rows", bytes(payload))
        delta_meta.append({"id": delta.delta_id, "open": delta.is_open})

    bitmap = {
        str(gid): index.delete_bitmap.marks_for(gid)
        for gid in index.delete_bitmap.groups_with_deletes()
    }
    writer.write(f"{prefix}/delete_bitmap.json", json.dumps(bitmap).encode("utf-8"))

    meta = {
        "group_ids": group_ids,
        "next_group_id": index.directory._next_group_id,
        "deltas": delta_meta,
        "next_delta_id": index._next_delta_id,
        "next_row_id": index._next_row_id,
        "open_delta_id": index._open_delta_id,
    }
    writer.write(f"{prefix}/meta.json", json.dumps(meta).encode("utf-8"))


def load_columnstore(
    schema: TableSchema, config: StoreConfig, reader, prefix: str
) -> ColumnStoreIndex:
    """Rebuild a columnstore from ``<prefix>/`` files of ``reader``."""
    index = ColumnStoreIndex(schema, config)
    meta = _read_json(reader, f"{prefix}/meta.json")

    try:
        group_ids = meta["group_ids"]
        delta_entries = meta["deltas"]
    except (KeyError, TypeError) as exc:
        raise RecoveryError(f"malformed {prefix}/meta.json: {exc!r}") from exc

    for group_id in group_ids:
        segments = {}
        for col in schema:
            relpath = f"{prefix}/rowgroups/g{group_id}.{col.name}.seg"
            try:
                segments[col.name] = deserialize_segment(reader.read(relpath))
            except EncodingError as exc:
                raise CorruptBlobError(str(exc), path=relpath) from exc
        group = RowGroup(group_id=group_id, schema=schema, segments=segments)
        index.directory.add_row_group(group)
        # Re-intern dictionary values so global dictionaries match a
        # freshly-built index (the dictionary field is populated for
        # archived segments too).
        for col in schema:
            segment = segments[col.name]
            if segment.dictionary is not None:
                index.directory.global_dictionary(col.name).intern_all(
                    segment.dictionary.values
                )
    index.directory._next_group_id = meta["next_group_id"]

    for entry in delta_entries:
        relpath = f"{prefix}/delta_{entry['id']}.rows"
        delta = DeltaStore(entry["id"], schema, config.btree_order)
        blob = reader.read(relpath)
        try:
            n, pos = serde.read_varint(blob, 0)
            row_ids = []
            for _ in range(n):
                row_id, pos = serde.read_varint(blob, pos)
                row_ids.append(row_id)
            rows = deserialize_rows(schema, blob[pos:])
        except EncodingError as exc:
            raise CorruptBlobError(str(exc), path=relpath) from exc
        if len(rows) != n:
            raise CorruptBlobError(
                f"delta blob promises {n} rows but carries {len(rows)}",
                path=relpath,
            )
        for row_id, row in zip(row_ids, rows):
            delta.insert(row_id, row)
        if not entry["open"]:
            delta.close()
        index._delta_stores[entry["id"]] = delta
    index._next_delta_id = meta["next_delta_id"]
    index._next_row_id = meta["next_row_id"]
    index._open_delta_id = meta["open_delta_id"]

    bitmap = _read_json(reader, f"{prefix}/delete_bitmap.json")
    for gid, positions in bitmap.items():
        index.delete_bitmap.mark_many(int(gid), positions)
    return index
