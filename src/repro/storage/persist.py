"""Database persistence: save/load a whole database to a directory.

Models the on-disk reality of the paper's design: compressed segments are
immutable blobs (one file per segment, written by
:mod:`repro.storage.blob`), the directory/catalog is small metadata, and
the mutable side (delta stores, delete bitmap, row-store heaps) is
serialized row-wise.

Layout::

    <root>/catalog.json                    tables, schemas, configs
    <root>/<table>/meta.json               id counters, delta states
    <root>/<table>/rowgroups/g<id>.<col>.seg
    <root>/<table>/delta_<id>.rows
    <root>/<table>/rowstore.rows
    <root>/<table>/delete_bitmap.json
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import StorageError
from ..schema import ColumnDef, TableSchema
from ..types import DataType, TypeKind
from . import serde
from .blob import deserialize_segment, serialize_segment
from .columnstore import ColumnStoreIndex
from .config import StoreConfig
from .deltastore import DeltaStore
from .rowgroup import RowGroup


# ---------------------------------------------------------------------- #
# Row serialization (delta stores, row-store heaps)
# ---------------------------------------------------------------------- #
def serialize_rows(schema: TableSchema, rows: list[tuple[Any, ...]]) -> bytes:
    """Column-wise serialization of physical rows with NULL flags."""
    out = bytearray()
    serde.write_varint(out, len(rows))
    for position, col in enumerate(schema):
        values = [row[position] for row in rows]
        null_flags = bytearray()
        non_null = []
        for value in values:
            if value is None:
                null_flags.append(1)
            else:
                null_flags.append(0)
                non_null.append(value)
        out += bytes(null_flags)
        payload = serde.serialize_values(non_null, col.dtype)
        serde.write_varint(out, len(payload))
        out += payload
    return bytes(out)


def deserialize_rows(schema: TableSchema, blob: bytes) -> list[tuple[Any, ...]]:
    count, pos = serde.read_varint(blob, 0)
    columns: list[list[Any]] = []
    for col in schema:
        flags = blob[pos : pos + count]
        pos += count
        length, pos = serde.read_varint(blob, pos)
        non_null = serde.deserialize_values(blob[pos : pos + length], col.dtype)
        pos += length
        if col.dtype.kind is TypeKind.BOOL:
            non_null = [bool(v) for v in non_null]
        it = iter(non_null)
        columns.append([None if flag else next(it) for flag in flags])
    return list(zip(*columns)) if columns else []


# ---------------------------------------------------------------------- #
# Schema / config <-> JSON
# ---------------------------------------------------------------------- #
def schema_to_json(schema: TableSchema) -> list[dict]:
    out = []
    for col in schema:
        out.append(
            {
                "name": col.name,
                "kind": col.dtype.kind.value,
                "scale": col.dtype.scale,
                "length": col.dtype.length,
                "nullable": col.nullable,
            }
        )
    return out


def schema_from_json(data: list[dict]) -> TableSchema:
    columns = []
    for entry in data:
        dtype = DataType(
            TypeKind(entry["kind"]), scale=entry["scale"], length=entry["length"]
        )
        columns.append(ColumnDef(entry["name"], dtype, entry["nullable"]))
    return TableSchema(columns)


def config_to_json(config: StoreConfig) -> dict:
    return {
        "rowgroup_size": config.rowgroup_size,
        "bulk_load_threshold": config.bulk_load_threshold,
        "delta_close_rows": config.delta_close_rows,
        "reorder_rows": config.reorder_rows,
        "archival": config.archival,
        "btree_order": config.btree_order,
    }


def config_from_json(data: dict) -> StoreConfig:
    return StoreConfig(**data)


# ---------------------------------------------------------------------- #
# Columnstore index save/load
# ---------------------------------------------------------------------- #
def save_columnstore(index: ColumnStoreIndex, table_dir: Path) -> None:
    groups_dir = table_dir / "rowgroups"
    groups_dir.mkdir(parents=True, exist_ok=True)
    group_ids = []
    for group in index.directory.row_groups():
        group_ids.append(group.group_id)
        for column, segment in group.segments.items():
            path = groups_dir / f"g{group.group_id}.{column}.seg"
            path.write_bytes(serialize_segment(segment))

    delta_meta = []
    for delta in index.delta_stores():
        rows = [row for _, row in delta.scan()]
        row_ids = [row_id for row_id, _ in delta.scan()]
        payload = bytearray()
        serde.write_varint(payload, len(row_ids))
        for row_id in row_ids:
            serde.write_varint(payload, row_id)
        payload += serialize_rows(index.schema, rows)
        (table_dir / f"delta_{delta.delta_id}.rows").write_bytes(bytes(payload))
        delta_meta.append({"id": delta.delta_id, "open": delta.is_open})

    bitmap = {
        str(gid): sorted(index.delete_bitmap._deleted.get(gid, ()))
        for gid in index.delete_bitmap.groups_with_deletes()
    }
    (table_dir / "delete_bitmap.json").write_text(json.dumps(bitmap))

    meta = {
        "group_ids": group_ids,
        "next_group_id": index.directory._next_group_id,
        "deltas": delta_meta,
        "next_delta_id": index._next_delta_id,
        "next_row_id": index._next_row_id,
        "open_delta_id": index._open_delta_id,
    }
    (table_dir / "meta.json").write_text(json.dumps(meta))


def load_columnstore(
    schema: TableSchema, config: StoreConfig, table_dir: Path
) -> ColumnStoreIndex:
    index = ColumnStoreIndex(schema, config)
    meta = json.loads((table_dir / "meta.json").read_text())

    groups_dir = table_dir / "rowgroups"
    for group_id in meta["group_ids"]:
        segments = {}
        for col in schema:
            path = groups_dir / f"g{group_id}.{col.name}.seg"
            if not path.exists():
                raise StorageError(f"missing segment blob {path}")
            segments[col.name] = deserialize_segment(path.read_bytes())
        group = RowGroup(group_id=group_id, schema=schema, segments=segments)
        index.directory.add_row_group(group)
        # Re-intern dictionary values so global dictionaries match a
        # freshly-built index (the dictionary field is populated for
        # archived segments too).
        for col in schema:
            segment = segments[col.name]
            if segment.dictionary is not None:
                index.directory.global_dictionary(col.name).intern_all(
                    segment.dictionary.values
                )
    index.directory._next_group_id = meta["next_group_id"]

    for entry in meta["deltas"]:
        delta = DeltaStore(entry["id"], schema, config.btree_order)
        blob = (table_dir / f"delta_{entry['id']}.rows").read_bytes()
        n, pos = serde.read_varint(blob, 0)
        row_ids = []
        for _ in range(n):
            row_id, pos = serde.read_varint(blob, pos)
            row_ids.append(row_id)
        rows = deserialize_rows(schema, blob[pos:])
        for row_id, row in zip(row_ids, rows):
            delta.insert(row_id, row)
        if not entry["open"]:
            delta.close()
        index._delta_stores[entry["id"]] = delta
    index._next_delta_id = meta["next_delta_id"]
    index._next_row_id = meta["next_row_id"]
    index._open_delta_id = meta["open_delta_id"]

    bitmap = json.loads((table_dir / "delete_bitmap.json").read_text())
    for gid, positions in bitmap.items():
        index.delete_bitmap.mark_many(int(gid), positions)
    return index
