"""Compressed code-stream blocks and encoding selection helpers.

A column segment's integer stream (dictionary codes or value-encoded
offsets) is compressed either with run-length encoding or with bit packing,
whichever is smaller for that segment — the same per-segment choice the
paper describes. Raw blocks hold values that defeat both (e.g. full-range
floats).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..errors import EncodingError
from . import bitpack, rle
from .rle import RleBlock


class Scheme(enum.Enum):
    """How a segment's values map to its integer stream."""

    DICT = "dict"       # codes into a sorted local dictionary
    VALUE = "value"     # affine value encoding (exponent/base)
    RAW = "raw"         # verbatim fixed-width values


@dataclass(frozen=True)
class BitpackBlock:
    """A bit-packed stream of non-negative integer codes."""

    count: int
    width: int
    payload: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.payload) + 8

    def decode(self) -> np.ndarray:
        return bitpack.unpack(self.payload, self.width, self.count)


@dataclass(frozen=True)
class RawBlock:
    """Verbatim little-endian values (used when encoding does not pay off)."""

    count: int
    dtype_str: str
    payload: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.payload) + 8

    def decode(self) -> np.ndarray:
        return np.frombuffer(self.payload, dtype=np.dtype(self.dtype_str)).copy()

    @classmethod
    def from_array(cls, values: np.ndarray) -> "RawBlock":
        values = np.ascontiguousarray(values)
        return cls(count=int(values.size), dtype_str=values.dtype.str, payload=values.tobytes())


StreamBlock = Union[RleBlock, BitpackBlock, RawBlock]


def encode_stream(codes: np.ndarray) -> StreamBlock:
    """Compress an integer code stream: RLE vs bit packing, smaller wins.

    The choice is made from cheap estimates first, then the winning block is
    materialized (the paper's compressor likewise picks per-segment).
    """
    codes = np.asarray(codes)
    if codes.size and int(codes.min()) < 0:
        raise EncodingError("code streams must be non-negative")
    width = bitpack.bits_needed(int(codes.max()) if codes.size else 0)
    bitpack_size = bitpack.packed_size_bytes(codes.size, width) + 8
    rle_size = rle.estimated_size_bytes(codes, width)
    if rle_size < bitpack_size:
        return rle.encode(codes)
    return BitpackBlock(
        count=int(codes.size), width=width, payload=bitpack.pack(codes, width)
    )


def pack_null_mask(null_mask: np.ndarray) -> bytes:
    """Pack a boolean null mask into a bitmap (little-endian bit order)."""
    return np.packbits(null_mask.astype(np.uint8), bitorder="little").tobytes()


def unpack_null_mask(payload: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_null_mask`."""
    return np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8), count=count, bitorder="little"
    ).astype(bool)


def run_keep_weights(run_lengths: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Fold a full-length row mask into per-run surviving-row counts.

    ``keep`` has one entry per row; the result has one int64 entry per
    RLE run. Run-granular aggregation weights each run's value by its
    surviving rows instead of expanding the run, so a segment is
    processed once per run, not once per row.
    """
    if run_lengths.size == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.zeros(run_lengths.size, dtype=np.int64)
    np.cumsum(run_lengths[:-1], out=starts[1:])
    return np.add.reduceat(keep.astype(np.int64), starts)


def code_keep_weights(codes: np.ndarray, keep: np.ndarray, n_codes: int) -> np.ndarray:
    """Fold a full-length row mask into per-dictionary-code counts.

    One int64 entry per dictionary code: how many surviving rows carry
    that code. NULL rows store filler code 0, so callers must exclude
    them from ``keep`` before folding.
    """
    if n_codes == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(codes[keep].astype(np.int64), minlength=n_codes).astype(np.int64)


def dictionary_pays_off(
    count: int, ndv: int, offset_width: int, dict_entry_bytes: int
) -> bool:
    """Whether dictionary encoding beats value encoding for an int segment.

    Dictionary wins when the code stream shrinks (fewer bits per row because
    NDV << value range) by more than the dictionary's own storage cost.
    """
    if ndv == 0:
        return False
    dict_width = bitpack.bits_needed(ndv - 1)
    stream_saving_bits = (offset_width - dict_width) * count
    dict_cost_bits = ndv * dict_entry_bytes * 8
    return stream_saving_bits > dict_cost_bits
