"""Value-based encoding for numeric segments.

The paper rebases numeric values so they fit in fewer bits before bit
packing: pick a power-of-ten *exponent* that turns the values into small
integers (divide ints by a common power of ten; scale decimals/floats up to
integers), then subtract the minimum (*base*). The stored stream is
``value * 10**exponent - base``, always non-negative.

Decoding applies the inverse affine transform, which is exact for integer
and decimal columns and exact-by-construction for floats that admit a small
scale (others are stored raw — see :mod:`repro.storage.encodings`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EncodingError

# Scales we try when looking for an integer representation of floats.
_MAX_FLOAT_SCALE = 4
# Largest power of ten we try to divide integer columns by.
_MAX_INT_DOWNSCALE = 6


@dataclass(frozen=True)
class ValueEncoding:
    """Parameters of an affine value encoding.

    ``exponent`` is the power-of-ten multiplier applied to raw values
    (negative = divide, used for integers sharing trailing zeros; positive =
    multiply, used for floats with few fractional digits). ``base`` is the
    minimum of the transformed values.
    """

    exponent: int
    base: int

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Transform raw numeric values into non-negative offsets."""
        transformed = _scale(values, self.exponent)
        offsets = transformed - self.base
        if offsets.size and int(offsets.min()) < 0:
            raise EncodingError("value encoding produced negative offsets")
        return offsets.astype(np.uint64)

    def invert(self, offsets: np.ndarray, target_dtype: np.dtype) -> np.ndarray:
        """Recover raw values from stored offsets."""
        ints = offsets.astype(np.int64) + self.base
        if self.exponent > 0:
            if np.issubdtype(target_dtype, np.floating):
                return ints.astype(np.float64) / float(10**self.exponent)
            raise EncodingError("positive exponent is only used for float columns")
        if self.exponent < 0:
            ints = ints * 10 ** (-self.exponent)
        return ints.astype(target_dtype)


def _scale(values: np.ndarray, exponent: int) -> np.ndarray:
    if exponent == 0:
        return values.astype(np.int64)
    if exponent > 0:
        return np.round(values.astype(np.float64) * 10**exponent).astype(np.int64)
    divisor = 10 ** (-exponent)
    return (values.astype(np.int64) // divisor).astype(np.int64)


def _common_power_of_ten(values: np.ndarray) -> int:
    """Largest ``k <= _MAX_INT_DOWNSCALE`` with all values divisible by 10**k."""
    ints = values.astype(np.int64)
    k = 0
    while k < _MAX_INT_DOWNSCALE:
        divisor = 10 ** (k + 1)
        if not bool(np.all(ints % divisor == 0)):
            break
        k += 1
    return k


def choose_integer_encoding(values: np.ndarray) -> ValueEncoding:
    """Pick the encoding for an int/bigint/decimal(physical int) segment."""
    if values.size == 0:
        return ValueEncoding(exponent=0, base=0)
    ints = values.astype(np.int64)
    k = _common_power_of_ten(ints)
    scaled = ints // 10**k if k else ints
    return ValueEncoding(exponent=-k, base=int(scaled.min()))


def choose_float_encoding(values: np.ndarray) -> ValueEncoding | None:
    """Pick an exact affine encoding for a float segment, or ``None``.

    Floats qualify when some scale ``10**k`` (k ≤ 4) turns every value into
    an integer that round-trips exactly and fits comfortably in int64.
    """
    if values.size == 0:
        return ValueEncoding(exponent=0, base=0)
    floats = values.astype(np.float64)
    if not np.all(np.isfinite(floats)):
        return None
    if values.size and float(np.abs(floats).max()) > 2**52:
        return None
    for k in range(0, _MAX_FLOAT_SCALE + 1):
        scaled = floats * 10**k
        rounded = np.round(scaled)
        if float(np.abs(rounded).max()) > 2**62:
            return None
        if np.all(rounded / 10**k == floats):
            return ValueEncoding(exponent=k, base=int(rounded.min()))
    return None
