"""Columnstore storage substrate.

This package implements the storage side of the paper: column segments with
dictionary / value-based encoding, RLE and bit packing, row groups, segment
metadata for segment elimination, archival (LZ77) compression, delta stores,
the delete bitmap and the tuple mover.
"""

from .columnstore import ColumnStoreIndex
from .directory import SegmentDirectory
from .loader import BulkLoader
from .rowgroup import RowGroup
from .segment import ColumnSegment

__all__ = [
    "BulkLoader",
    "ColumnSegment",
    "ColumnStoreIndex",
    "RowGroup",
    "SegmentDirectory",
]
