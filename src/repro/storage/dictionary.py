"""Dictionaries for dictionary-encoded column segments.

The paper's columnstore keeps *primary* (column-wide, shared by many
segments) and *secondary* (per-segment overflow) dictionaries. We model
this with:

* :class:`LocalDictionary` — the sorted distinct values of one segment.
  Codes are positions in the sorted order, so range predicates on values
  translate to range predicates on codes (encoded-space evaluation).
* :class:`GlobalDictionary` — a column-wide value ↔ global-id map built
  during load and extended by later loads. It lets predicates and joins be
  evaluated once per distinct value instead of once per row, and lets the
  scan map constants to codes without touching segment payloads.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence

import numpy as np

from ..errors import EncodingError


class LocalDictionary:
    """Sorted distinct values of one segment; codes are sort positions."""

    __slots__ = ("values", "_lookup")

    def __init__(self, sorted_values: Sequence[Any]) -> None:
        self.values: list[Any] = list(sorted_values)
        self._lookup: dict[Any, int] = {v: i for i, v in enumerate(self.values)}
        if len(self._lookup) != len(self.values):
            raise EncodingError("dictionary values must be distinct")

    def __len__(self) -> int:
        return len(self.values)

    @property
    def size_bytes(self) -> int:
        """Approximate in-memory footprint, for compression accounting."""
        total = 0
        for value in self.values:
            if isinstance(value, str):
                total += len(value.encode("utf-8")) + 4
            else:
                total += 8
        return total

    def code_of(self, value: Any) -> int | None:
        """Code for ``value``, or ``None`` if absent from this segment."""
        return self._lookup.get(value)

    def codes_of(self, values: Iterable[Hashable]) -> list[int]:
        """Codes of values known to be present (raises otherwise)."""
        try:
            return [self._lookup[v] for v in values]
        except KeyError as exc:
            raise EncodingError(f"value {exc.args[0]!r} not in dictionary") from None

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map an array of codes back to values (object array for strings)."""
        table = np.array(self.values, dtype=object)
        return table[codes.astype(np.int64)]

    def decode_typed(self, codes: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Decode into a concrete NumPy dtype (for numeric dictionaries)."""
        table = np.array(self.values, dtype=dtype)
        return table[codes.astype(np.int64)]

    # ------------------------------------------------------------------ #
    # Encoded-space predicate support: value predicates -> code predicates
    # ------------------------------------------------------------------ #
    def range_codes(self, low: Any, high: Any, low_inc: bool, high_inc: bool) -> tuple[int, int]:
        """Half-open code interval ``[lo, hi)`` matching the value range.

        ``low``/``high`` may be ``None`` for unbounded ends. Relies on the
        dictionary being sorted.
        """
        import bisect

        lo = 0
        hi = len(self.values)
        if low is not None:
            lo = (
                bisect.bisect_left(self.values, low)
                if low_inc
                else bisect.bisect_right(self.values, low)
            )
        if high is not None:
            hi = (
                bisect.bisect_right(self.values, high)
                if high_inc
                else bisect.bisect_left(self.values, high)
            )
        return lo, max(lo, hi)

    @classmethod
    def build(cls, values: np.ndarray) -> tuple["LocalDictionary", np.ndarray]:
        """Build a dictionary from raw values and return (dict, codes).

        ``values`` must not contain NULL placeholders; callers handle nulls
        separately (see :mod:`repro.storage.encodings`).
        """
        arr = np.asarray(values)
        if arr.dtype == object:
            # np.unique on object arrays is fine for homogeneous values.
            distinct = sorted(set(arr.tolist()))
            dictionary = cls(distinct)
            codes = np.fromiter(
                (dictionary._lookup[v] for v in arr.tolist()),
                dtype=np.int64,
                count=arr.size,
            )
            return dictionary, codes
        distinct, codes = np.unique(arr, return_inverse=True)
        return cls(distinct.tolist()), codes.astype(np.int64)


class GlobalDictionary:
    """Column-wide value ↔ global-id map (the paper's primary dictionary).

    Ids are assigned in first-seen order and never change, so segments
    compressed at different times agree on ids. The map is extended, never
    rewritten.
    """

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: dict[Any, int] = {}
        self._values: list[Any] = []

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Any) -> bool:
        return value in self._ids

    def id_of(self, value: Any) -> int | None:
        return self._ids.get(value)

    def value_of(self, gid: int) -> Any:
        return self._values[gid]

    def intern(self, value: Any) -> int:
        """Id of ``value``, inserting it if new."""
        gid = self._ids.get(value)
        if gid is None:
            gid = len(self._values)
            self._ids[value] = gid
            self._values.append(value)
        return gid

    def intern_all(self, values: Iterable[Any]) -> None:
        for value in values:
            self.intern(value)

    def truncate(self, length: int) -> None:
        """Forget every id >= ``length`` (bulk-load undo).

        Ids are assigned densely in first-seen order, so dropping the
        tail restores the exact pre-load map — a later load re-interning
        the same values reassigns the same ids.
        """
        if length >= len(self._values):
            return
        for value in self._values[length:]:
            del self._ids[value]
        del self._values[length:]

    @property
    def size_bytes(self) -> int:
        total = 0
        for value in self._values:
            if isinstance(value, str):
                total += len(value.encode("utf-8")) + 12
            else:
                total += 16
        return total
