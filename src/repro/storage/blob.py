"""Binary serialization of column segments (the paper's segment LOBs).

SQL Server stores each column segment and dictionary as a LOB blob and
keeps only metadata in the directory. This module defines that blob
format for our segments: a self-describing, versioned binary layout that
round-trips every segment exactly — including archived ones — so indexes
can be persisted and reopened (:mod:`repro.storage.persist`).

Layout (little-endian, varint = LEB128):

    magic "CSEG" | version u8 | flags u8
    dtype: kind u8 | scale u8 | has_length u8 [| length varint]
    row_count varint | null_count varint | raw_size varint
    scheme u8
    stream: kind u8 | per-kind fields | payloads (varint length + bytes)
    [dictionary: serialized values]        (flag)
    [value encoding: exponent zigzag | base zigzag]  (flag)
    [null payload: varint length + bytes]  (flag)
    [min/max: serialized 2-value list]     (flag)
    [archive: varint length + bytes]       (flag)
"""

from __future__ import annotations

import struct

from ..errors import CorruptBlobError, EncodingError, TypeMismatchError
from ..types import DataType, TypeKind
from . import serde
from .dictionary import LocalDictionary
from .encodings import BitpackBlock, RawBlock, Scheme
from .rle import RleBlock
from .segment import ColumnSegment
from .value_encoding import ValueEncoding

_MAGIC = b"CSEG"
_VERSION = 1

_KIND_CODES = {kind: i for i, kind in enumerate(TypeKind)}
_KIND_FROM_CODE = {i: kind for kind, i in _KIND_CODES.items()}
_SCHEME_CODES = {Scheme.DICT: 0, Scheme.VALUE: 1, Scheme.RAW: 2}
_SCHEME_FROM_CODE = {v: k for k, v in _SCHEME_CODES.items()}

_FLAG_DICT = 1
_FLAG_VENC = 2
_FLAG_NULLS = 4
_FLAG_MINMAX = 8
_FLAG_ARCHIVE = 16

_STREAM_RLE = 0
_STREAM_BITPACK = 1
_STREAM_RAW = 2


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _write_bytes(out: bytearray, payload: bytes) -> None:
    serde.write_varint(out, len(payload))
    out += payload


def _need(blob: bytes, pos: int, count: int) -> None:
    """Bounds check: the next ``count`` bytes must exist."""
    if pos + count > len(blob):
        raise CorruptBlobError(
            f"segment blob truncated at offset {pos} "
            f"(need {count} more bytes, have {len(blob) - pos})"
        )


def _read_bytes(blob: bytes, pos: int) -> tuple[bytes, int]:
    length, pos = serde.read_varint(blob, pos)
    _need(blob, pos, length)
    return blob[pos : pos + length], pos + length


def serialize_segment(segment: ColumnSegment) -> bytes:
    """Serialize a segment (archived or plain) to its blob form."""
    out = bytearray(_MAGIC)
    out.append(_VERSION)
    flags = 0
    if segment.dictionary is not None:
        flags |= _FLAG_DICT
    if segment.value_enc is not None:
        flags |= _FLAG_VENC
    if segment.null_payload is not None:
        flags |= _FLAG_NULLS
    if segment.min_value is not None:
        flags |= _FLAG_MINMAX
    if segment.archive is not None:
        flags |= _FLAG_ARCHIVE
    out.append(flags)

    dtype = segment.dtype
    out.append(_KIND_CODES[dtype.kind])
    out.append(dtype.scale)
    out.append(1 if dtype.length is not None else 0)
    if dtype.length is not None:
        serde.write_varint(out, dtype.length)

    serde.write_varint(out, segment.row_count)
    serde.write_varint(out, segment.null_count)
    serde.write_varint(out, segment.raw_size_bytes)
    out.append(_SCHEME_CODES[segment.scheme])

    _write_stream(out, segment)

    if segment.dictionary is not None:
        _write_bytes(out, serde.serialize_values(segment.dictionary.values, dtype))
    if segment.value_enc is not None:
        serde.write_varint(out, _zigzag(segment.value_enc.exponent))
        serde.write_varint(out, _zigzag(segment.value_enc.base))
    if segment.null_payload is not None:
        _write_bytes(out, segment.null_payload)
    if segment.min_value is not None:
        minmax = serde.serialize_values([segment.min_value, segment.max_value], dtype)
        _write_bytes(out, minmax)
    if segment.archive is not None:
        _write_bytes(out, segment.archive)
    return bytes(out)


def _write_stream(out: bytearray, segment: ColumnSegment) -> None:
    stream = segment.stream
    if isinstance(stream, RleBlock):
        out.append(_STREAM_RLE)
        serde.write_varint(out, stream.count)
        serde.write_varint(out, stream.n_runs)
        out.append(stream.value_width)
        out.append(stream.length_width)
        _write_bytes(out, stream.value_payload)
        _write_bytes(out, stream.length_payload)
    elif isinstance(stream, BitpackBlock):
        out.append(_STREAM_BITPACK)
        serde.write_varint(out, stream.count)
        out.append(stream.width)
        _write_bytes(out, stream.payload)
    elif isinstance(stream, RawBlock):
        out.append(_STREAM_RAW)
        serde.write_varint(out, stream.count)
        _write_bytes(out, stream.dtype_str.encode("ascii"))
        _write_bytes(out, stream.payload)
    else:  # pragma: no cover - exhaustive
        raise EncodingError(f"unknown stream block {type(stream).__name__}")


def deserialize_segment(blob: bytes) -> ColumnSegment:
    """Inverse of :func:`serialize_segment`.

    Decoding is fully bounds-checked: any truncated, bit-flipped, or
    otherwise malformed blob raises :class:`EncodingError` (usually its
    :class:`CorruptBlobError` subclass) — raw ``IndexError``/``KeyError``/
    ``struct.error`` never escape.
    """
    try:
        return _deserialize_segment(blob)
    except EncodingError:
        raise
    except (
        IndexError,
        KeyError,
        ValueError,
        OverflowError,
        TypeMismatchError,  # e.g. a flipped scale byte on a non-DECIMAL dtype
        struct.error,
    ) as exc:
        # Belt and braces behind the explicit checks: whatever slips
        # through still surfaces as a structured storage error.
        raise CorruptBlobError(f"malformed segment blob: {exc!r}") from exc


def _deserialize_segment(blob: bytes) -> ColumnSegment:
    _need(blob, 0, 6)
    if blob[:4] != _MAGIC:
        raise EncodingError("not a CSEG segment blob")
    if blob[4] != _VERSION:
        raise EncodingError(f"unsupported segment blob version {blob[4]}")
    flags = blob[5]
    pos = 6

    _need(blob, pos, 3)
    if blob[pos] not in _KIND_FROM_CODE:
        raise CorruptBlobError(f"unknown type kind code {blob[pos]}")
    kind = _KIND_FROM_CODE[blob[pos]]
    scale = blob[pos + 1]
    has_length = blob[pos + 2]
    pos += 3
    length = None
    if has_length:
        length, pos = serde.read_varint(blob, pos)
    dtype = DataType(kind, scale=scale, length=length)

    row_count, pos = serde.read_varint(blob, pos)
    null_count, pos = serde.read_varint(blob, pos)
    raw_size, pos = serde.read_varint(blob, pos)
    _need(blob, pos, 1)
    if blob[pos] not in _SCHEME_FROM_CODE:
        raise CorruptBlobError(f"unknown scheme code {blob[pos]}")
    scheme = _SCHEME_FROM_CODE[blob[pos]]
    pos += 1

    stream, pos = _read_stream(blob, pos)

    dictionary = None
    if flags & _FLAG_DICT:
        payload, pos = _read_bytes(blob, pos)
        dictionary = LocalDictionary(serde.deserialize_values(payload, dtype))
    value_enc = None
    if flags & _FLAG_VENC:
        exponent, pos = serde.read_varint(blob, pos)
        base, pos = serde.read_varint(blob, pos)
        value_enc = ValueEncoding(_unzigzag(exponent), _unzigzag(base))
    null_payload = None
    if flags & _FLAG_NULLS:
        null_payload, pos = _read_bytes(blob, pos)
    min_value = max_value = None
    if flags & _FLAG_MINMAX:
        payload, pos = _read_bytes(blob, pos)
        min_value, max_value = serde.deserialize_values(payload, dtype)
        if dtype.kind is TypeKind.BOOL:
            min_value, max_value = bool(min_value), bool(max_value)
    archive = None
    if flags & _FLAG_ARCHIVE:
        archive, pos = _read_bytes(blob, pos)

    return ColumnSegment(
        dtype=dtype,
        row_count=row_count,
        scheme=scheme,
        stream=stream,
        dictionary=dictionary,
        value_enc=value_enc,
        null_payload=null_payload,
        null_count=null_count,
        min_value=min_value,
        max_value=max_value,
        raw_size_bytes=raw_size,
        archive=archive,
    )


def _read_stream(blob: bytes, pos: int):
    _need(blob, pos, 1)
    stream_kind = blob[pos]
    pos += 1
    if stream_kind == _STREAM_RLE:
        count, pos = serde.read_varint(blob, pos)
        n_runs, pos = serde.read_varint(blob, pos)
        _need(blob, pos, 2)
        value_width = blob[pos]
        length_width = blob[pos + 1]
        pos += 2
        value_payload, pos = _read_bytes(blob, pos)
        length_payload, pos = _read_bytes(blob, pos)
        return (
            RleBlock(
                count=count,
                n_runs=n_runs,
                value_width=value_width,
                length_width=length_width,
                value_payload=value_payload,
                length_payload=length_payload,
            ),
            pos,
        )
    if stream_kind == _STREAM_BITPACK:
        count, pos = serde.read_varint(blob, pos)
        _need(blob, pos, 1)
        width = blob[pos]
        pos += 1
        payload, pos = _read_bytes(blob, pos)
        return BitpackBlock(count=count, width=width, payload=payload), pos
    if stream_kind == _STREAM_RAW:
        count, pos = serde.read_varint(blob, pos)
        dtype_str, pos = _read_bytes(blob, pos)
        payload, pos = _read_bytes(blob, pos)
        try:
            dtype_decoded = dtype_str.decode("ascii")
        except UnicodeDecodeError as exc:
            raise CorruptBlobError(f"corrupt raw-block dtype string: {exc}") from exc
        return RawBlock(count=count, dtype_str=dtype_decoded, payload=payload), pos
    raise CorruptBlobError(f"unknown stream kind {stream_kind}")
