"""The tuple mover: compresses closed delta stores into row groups.

In SQL Server this is a background task; here it runs when invoked (tests
and benchmarks drive it explicitly, and the database facade exposes it as a
maintenance call). Each closed delta store is materialized column-wise,
compressed through the bulk loader, and dropped — after which its rows are
served from the new compressed row group.

Under the concurrency layer (DESIGN.md "Concurrency") a tuple-mover run
takes the exclusive side of the database lock, like any writer: no
reader is mid-pin and no DML is mid-statement while it reorganizes. A
reader that pinned *before* the run is unaffected — the mover never
mutates a delta store or row group in place, it builds new row groups
and swaps the directory, so a pinned snapshot (frozen delta copies +
the old group list) keeps serving the same rows the statement started
with.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..observability import registry as metrics
from .columnstore import ColumnStoreIndex


@dataclass
class TupleMoverReport:
    """What one tuple-mover run did (for tests and observability)."""

    delta_stores_compressed: int = 0
    rows_moved: int = 0
    row_groups_created: int = 0
    group_ids: list[int] = field(default_factory=list)


class TupleMover:
    """Moves rows from closed delta stores into compressed row groups."""

    def __init__(self, index: ColumnStoreIndex) -> None:
        self.index = index

    def run(self, include_open: bool = False) -> TupleMoverReport:
        """Compress every closed delta store (optionally the open one too).

        ``include_open`` models a forced move (e.g. REORGANIZE with
        COMPRESS_ALL_ROW_GROUPS): the open delta store is closed first.
        """
        if include_open:
            self.index.close_open_delta()
        report = TupleMoverReport()
        # The whole reorganization installs one new epoch: replacement
        # row groups become visible at it, the compressed-away delta
        # stores are retired at it — a snapshot reader pinned before the
        # run keeps scanning the retired deltas, one pinned after sees
        # only the new groups. Vacuum then frees whatever no reader needs.
        with self.index.mvcc.installing() as epoch:
            for delta in self.index.closed_delta_stores():
                columns, null_masks, _row_ids = delta.to_columns()
                with self.index.directory.creating_at(epoch):
                    groups = self.index.loader.load_columns(columns, null_masks)
                report.rows_moved += delta.row_count
                self.index._retire_delta(delta, epoch)
                report.delta_stores_compressed += 1
                report.row_groups_created += len(groups)
                report.group_ids.extend(g.group_id for g in groups)
        self.index.vacuum()
        metrics.increment("storage.tuple_mover.runs")
        metrics.increment(
            "storage.tuple_mover.delta_stores_compressed",
            report.delta_stores_compressed,
        )
        metrics.increment("storage.tuple_mover.rows_moved", report.rows_moved)
        metrics.increment(
            "storage.tuple_mover.row_groups_created", report.row_groups_created
        )
        return report
