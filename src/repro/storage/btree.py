"""An in-memory B+tree.

This is the row-store substrate the paper's delta stores and delete buffers
are built on (SQL Server keeps both as B-trees). Keys are any totally
ordered Python values (ints, strings, tuples); values are arbitrary
payloads. Leaves are chained for range scans. Deletion rebalances by
borrowing from or merging with siblings.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from ..errors import StorageError

_DEFAULT_ORDER = 64


class _Node:
    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list[Any] = []


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self) -> None:
        super().__init__()
        self.values: list[Any] = []
        self.next: _Leaf | None = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        # len(children) == len(keys) + 1; keys[i] is the smallest key in
        # the subtree children[i + 1].
        self.children: list[_Node] = []


class BPlusTree:
    """A B+tree mapping unique keys to values."""

    def __init__(self, order: int = _DEFAULT_ORDER) -> None:
        if order < 4:
            raise StorageError(f"B+tree order must be >= 4, got {order}")
        self._order = order
        self._root: _Node = _Leaf()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        assert isinstance(node, _Leaf)
        return node

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    # ------------------------------------------------------------------ #
    # Insert
    # ------------------------------------------------------------------ #
    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key``; replaces the value if the key already exists."""
        result = self._insert_into(self._root, key, value)
        if result is not None:
            split_key, right = result
            new_root = _Internal()
            new_root.keys = [split_key]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert_into(self, node: _Node, key: Any, value: Any):
        """Insert under ``node``; returns (split_key, new_right) on split."""
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._size += 1
            if len(node.keys) <= self._order:
                return None
            return self._split_leaf(node)
        assert isinstance(node, _Internal)
        child_index = bisect.bisect_right(node.keys, key)
        result = self._insert_into(node.children[child_index], key, value)
        if result is None:
            return None
        split_key, right = result
        node.keys.insert(child_index, split_key)
        node.children.insert(child_index + 1, right)
        if len(node.children) <= self._order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        split_key = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return split_key, right

    # ------------------------------------------------------------------ #
    # Delete
    # ------------------------------------------------------------------ #
    def delete(self, key: Any) -> bool:
        """Remove ``key``; returns ``False`` if it was absent."""
        removed = self._delete_from(self._root, key)
        if removed:
            # Collapse a root that has become a single-child internal node.
            if isinstance(self._root, _Internal) and len(self._root.children) == 1:
                self._root = self._root.children[0]
        return removed

    def _min_fill(self) -> int:
        return self._order // 2

    def _delete_from(self, node: _Node, key: Any) -> bool:
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            node.keys.pop(index)
            node.values.pop(index)
            self._size -= 1
            return True
        assert isinstance(node, _Internal)
        child_index = bisect.bisect_right(node.keys, key)
        child = node.children[child_index]
        removed = self._delete_from(child, key)
        if removed:
            self._rebalance(node, child_index)
        return removed

    def _node_fill(self, node: _Node) -> int:
        if isinstance(node, _Leaf):
            return len(node.keys)
        return len(node.children)

    def _rebalance(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        if self._node_fill(child) >= self._min_fill():
            return
        left = parent.children[child_index - 1] if child_index > 0 else None
        right = (
            parent.children[child_index + 1]
            if child_index + 1 < len(parent.children)
            else None
        )
        if left is not None and self._node_fill(left) > self._min_fill():
            self._borrow_from_left(parent, child_index)
        elif right is not None and self._node_fill(right) > self._min_fill():
            self._borrow_from_right(parent, child_index)
        elif left is not None:
            self._merge(parent, child_index - 1)
        elif right is not None:
            self._merge(parent, child_index)

    def _borrow_from_left(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        left = parent.children[child_index - 1]
        if isinstance(child, _Leaf):
            assert isinstance(left, _Leaf)
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[child_index - 1] = child.keys[0]
        else:
            assert isinstance(left, _Internal) and isinstance(child, _Internal)
            child.keys.insert(0, parent.keys[child_index - 1])
            parent.keys[child_index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _Internal, child_index: int) -> None:
        child = parent.children[child_index]
        right = parent.children[child_index + 1]
        if isinstance(child, _Leaf):
            assert isinstance(right, _Leaf)
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[child_index] = right.keys[0]
        else:
            assert isinstance(right, _Internal) and isinstance(child, _Internal)
            child.keys.append(parent.keys[child_index])
            parent.keys[child_index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _Internal, left_index: int) -> None:
        """Merge children[left_index + 1] into children[left_index]."""
        left = parent.children[left_index]
        right = parent.children[left_index + 1]
        if isinstance(left, _Leaf):
            assert isinstance(right, _Leaf)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next = right.next
        else:
            assert isinstance(left, _Internal) and isinstance(right, _Internal)
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)

    # ------------------------------------------------------------------ #
    # Scans
    # ------------------------------------------------------------------ #
    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, value) pairs in key order."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        leaf: _Leaf | None = node  # type: ignore[assignment]
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next

    def range(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """(key, value) pairs with ``low <op> key <op> high`` in key order."""
        if low is None:
            node = self._root
            while isinstance(node, _Internal):
                node = node.children[0]
            leaf: _Leaf = node  # type: ignore[assignment]
            index = 0
        else:
            leaf = self._find_leaf(low)
            index = (
                bisect.bisect_left(leaf.keys, low)
                if low_inclusive
                else bisect.bisect_right(leaf.keys, low)
            )
        current: _Leaf | None = leaf
        while current is not None:
            while index < len(current.keys):
                key = current.keys[index]
                if high is not None:
                    if high_inclusive and key > high:
                        return
                    if not high_inclusive and key >= high:
                        return
                yield key, current.values[index]
                index += 1
            current = current.next
            index = 0

    def min_key(self) -> Any:
        """Smallest key, or ``None`` when empty."""
        for key, _value in self.items():
            return key
        return None

    def depth(self) -> int:
        """Tree height (1 = just a leaf); exposed for tests."""
        node = self._root
        depth = 1
        while isinstance(node, _Internal):
            node = node.children[0]
            depth += 1
        return depth

    def check_invariants(self) -> None:
        """Validate structural invariants; raises StorageError on violation.

        Used by property-based tests: key ordering within nodes, separator
        correctness, leaf chaining, and size accounting.
        """
        count = self._check_node(self._root, None, None)
        if count != self._size:
            raise StorageError(f"size {self._size} but {count} keys reachable")
        chained = sum(1 for _ in self.items())
        if chained != self._size:
            raise StorageError(f"leaf chain yields {chained} keys, size is {self._size}")

    def _check_node(self, node: _Node, low: Any, high: Any) -> int:
        keys = node.keys
        for left_key, right_key in zip(keys, keys[1:]):
            if not left_key < right_key:
                raise StorageError(f"keys out of order: {left_key!r} >= {right_key!r}")
        for key in keys:
            if low is not None and key < low:
                raise StorageError(f"key {key!r} below subtree bound {low!r}")
            if high is not None and key >= high:
                raise StorageError(f"key {key!r} at or above subtree bound {high!r}")
        if isinstance(node, _Leaf):
            if len(node.values) != len(keys):
                raise StorageError("leaf keys/values length mismatch")
            return len(keys)
        assert isinstance(node, _Internal)
        if len(node.children) != len(keys) + 1:
            raise StorageError("internal fanout mismatch")
        total = 0
        bounds = [low, *keys, high]
        for index, child in enumerate(node.children):
            total += self._check_node(child, bounds[index], bounds[index + 1])
        return total
