"""Run-length encoding of integer code streams.

RLE is the preferred compression for column segments when values cluster
into runs (which the Vertipaq-style row reordering actively manufactures —
see :mod:`repro.storage.reorder`). A run is a ``(value, length)`` pair; both
streams are themselves bit-packed with their minimal widths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EncodingError
from . import bitpack


def split_runs(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decompose ``values`` into (run_values, run_lengths).

    >>> split_runs(np.array([7, 7, 7, 2, 2, 9]))
    (array([7, 2, 9]), array([3, 2, 1]))
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise EncodingError("split_runs expects a 1-D array")
    if values.size == 0:
        return values[:0], np.zeros(0, dtype=np.int64)
    boundaries = np.flatnonzero(values[1:] != values[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [values.size]))
    return values[starts], (ends - starts).astype(np.int64)


def run_count(values: np.ndarray) -> int:
    """Number of runs, without materializing them (used by size estimation)."""
    values = np.asarray(values)
    if values.size == 0:
        return 0
    return int(np.count_nonzero(values[1:] != values[:-1])) + 1


@dataclass(frozen=True)
class RleBlock:
    """An RLE-compressed stream of non-negative integer codes."""

    count: int
    n_runs: int
    value_width: int
    length_width: int
    value_payload: bytes
    length_payload: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.value_payload) + len(self.length_payload) + 16

    def decode(self) -> np.ndarray:
        """Expand back to the original code stream (dtype uint64)."""
        run_values = bitpack.unpack(self.value_payload, self.value_width, self.n_runs)
        run_lengths = bitpack.unpack(self.length_payload, self.length_width, self.n_runs)
        decoded = np.repeat(run_values, run_lengths.astype(np.int64))
        if decoded.size != self.count:
            raise EncodingError(
                f"RLE block decoded to {decoded.size} values, expected {self.count}"
            )
        return decoded

    def runs(self) -> tuple[np.ndarray, np.ndarray]:
        """The (values, lengths) pair, for per-run predicate evaluation."""
        run_values = bitpack.unpack(self.value_payload, self.value_width, self.n_runs)
        run_lengths = bitpack.unpack(self.length_payload, self.length_width, self.n_runs)
        return run_values, run_lengths.astype(np.int64)


def encode(values: np.ndarray) -> RleBlock:
    """RLE-encode a stream of non-negative integer codes."""
    values = np.asarray(values)
    run_values, run_lengths = split_runs(values)
    value_width = bitpack.bits_needed(int(run_values.max()) if run_values.size else 0)
    length_width = bitpack.bits_needed(int(run_lengths.max()) if run_lengths.size else 0)
    return RleBlock(
        count=int(values.size),
        n_runs=int(run_values.size),
        value_width=value_width,
        length_width=length_width,
        value_payload=bitpack.pack(run_values.astype(np.uint64), value_width),
        length_payload=bitpack.pack(run_lengths.astype(np.uint64), length_width),
    )


def estimated_size_bytes(values: np.ndarray, value_width: int) -> int:
    """Cheap size estimate used by the encoding chooser (no payload built).

    Assumes run lengths fit in 20 bits (row groups are ≤ 2^20 rows).
    """
    n_runs = run_count(values)
    return (
        bitpack.packed_size_bytes(n_runs, value_width)
        + bitpack.packed_size_bytes(n_runs, 20)
        + 16
    )
