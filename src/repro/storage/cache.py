"""In-memory cache of decoded column segments.

SQL Server caches decompressed column segments in memory (the large-
object cache), so hot segments pay decompression once. This LRU holds
decoded ``(values, null_mask)`` pairs keyed by the segment object's
identity — row groups are immutable, and every mutation path (tuple
mover, REBUILD, archive toggle) swaps in *new* segment objects, so stale
entries can never be served; they simply age out.

Off by default (``StoreConfig.segment_cache_bytes = 0``): several
benchmarks measure decompression cost on purpose.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..observability import registry as metrics
from .segment import ColumnSegment


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _decoded_bytes(values: np.ndarray, null_mask: np.ndarray | None) -> int:
    if values.dtype == object:
        size = sum(
            len(v) + 50 for v in values.tolist() if isinstance(v, str)
        ) + values.shape[0] * 8
    else:
        size = values.nbytes
    if null_mask is not None:
        size += null_mask.nbytes
    return size


class SegmentCache:
    """LRU over decoded segments, bounded by (approximate) decoded bytes."""

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self._entries: OrderedDict[int, tuple[np.ndarray, np.ndarray | None, int]] = (
            OrderedDict()
        )
        self._used_bytes = 0
        # Keep decoded segments' owners alive so id() keys stay unique.
        self._pins: dict[int, ColumnSegment] = {}
        # Concurrent snapshot readers share one cache; the LRU OrderedDict
        # is not safe to mutate from two scan threads at once. Decoding
        # a miss happens outside the lock (it is the expensive part and
        # touches only the immutable segment).
        self._lock = threading.Lock()

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def decode(self, segment: ColumnSegment) -> tuple[np.ndarray, np.ndarray | None]:
        """Decoded (values, null_mask) for a segment, cached."""
        key = id(segment)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                metrics.increment("storage.cache.hits")
                return entry[0], entry[1]
            self.stats.misses += 1
        metrics.increment("storage.cache.misses")
        values, null_mask = segment.decode()
        size = _decoded_bytes(values, null_mask)
        if size <= self.capacity_bytes:
            with self._lock:
                if key not in self._entries:
                    # Two threads may decode the same miss concurrently;
                    # only the first insert is accounted, the loser just
                    # returns its (identical) decode.
                    self._entries[key] = (values, null_mask, size)
                    self._pins[key] = segment
                    self._used_bytes += size
                    self._evict_locked()
        return values, null_mask

    def _evict_locked(self) -> None:
        while self._used_bytes > self.capacity_bytes and self._entries:
            key, (_values, _mask, size) = self._entries.popitem(last=False)
            self._pins.pop(key, None)
            self._used_bytes -= size
            self.stats.evictions += 1
            metrics.increment("storage.cache.evictions")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pins.clear()
            self._used_bytes = 0
