"""Filesystem abstraction for crash-safe persistence.

Every durable byte the persistence layer writes flows through a
:class:`DiskIO` instance instead of raw :mod:`pathlib` calls. The default
implementation provides the two primitives that the snapshot protocol's
atomicity rests on:

* :meth:`DiskIO.write_file` — write to a temporary sibling, flush,
  ``fsync``, then atomically rename into place. A file is either fully
  present under its final name or absent; a crash can only ever leave a
  stray ``*.tmp`` file, which recovery garbage-collects.
* :meth:`DiskIO.rename` — ``os.replace``, the atomic commit point.

Because all I/O funnels through one small object, tests substitute
:class:`FaultyDisk` to simulate crashes after N write operations, torn
writes (only a prefix reaches the disk), silently lost renames, and bit
flips on read — the machinery behind the crash-consistency suite in
``tests/storage/test_crash_consistency.py``.

The module also hosts :func:`crc32c` (CRC-32C/Castagnoli, the checksum
the manifest records per file). It is a table-driven software
implementation: persistence is not a hot path in this repo, and a
dependency-free checksum keeps the container constraint satisfied.
"""

from __future__ import annotations

import os
from pathlib import Path


# ---------------------------------------------------------------------- #
# CRC-32C (Castagnoli)
# ---------------------------------------------------------------------- #
def _build_crc32c_table() -> tuple[int, ...]:
    poly = 0x82F63B78  # reversed Castagnoli polynomial
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _build_crc32c_table()


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC-32C of ``data``; pass a previous result as ``value`` to chain."""
    crc = value ^ 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


class InjectedFault(BaseException):
    """A simulated crash raised by :class:`FaultyDisk`.

    Deliberately derives from :class:`BaseException` (not ``ReproError``,
    not even ``Exception``) so no error-handling path in the engine can
    accidentally swallow it — a real power cut is not catchable either.
    """


class DiskIO:
    """Real filesystem access with atomic, durable file replacement."""

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def write_file(self, path: Path, data: bytes) -> None:
        """Atomically (re)place ``path`` with ``data``.

        Write-temp -> flush -> fsync -> atomic rename: after this returns
        the file is durable; if it is interrupted the final name is
        untouched and only a ``*.tmp`` sibling may remain.
        """
        path = Path(path)
        self.mkdir(path.parent)
        tmp = path.with_name(path.name + ".tmp")
        self._write_bytes(tmp, data)
        self.rename(tmp, path)

    def _write_bytes(self, path: Path, data: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def append_file(self, path: Path, data: bytes) -> None:
        """Append ``data`` to ``path`` (created if missing), flushed to the
        OS but **not** fsynced — durability is deferred to
        :meth:`sync_file` so a write-ahead log can amortize fsyncs across
        many appends (group commit)."""
        path = Path(path)
        self.mkdir(path.parent)
        with open(path, "ab") as handle:
            handle.write(data)
            handle.flush()

    def sync_file(self, path: Path) -> None:
        """fsync a file previously written with :meth:`append_file`."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def sync_dir(self, path: Path) -> None:
        """fsync a directory, persisting its entries.

        ``fsync`` of a file makes its *bytes* durable but not the
        directory entry that names it: on a metadata-lazy filesystem a
        power cut can leave a fully-fsynced file unreachable. Callers
        that create files via :meth:`append_file` (the WAL's segment
        creation) must sync the parent directory too —
        :meth:`write_file`/:meth:`rename` already do this internally as
        part of the atomic-rename protocol.
        """
        self._fsync_dir(Path(path))

    def file_size(self, path: Path) -> int:
        """Size of a file in bytes; 0 if it does not exist."""
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    def rename(self, src: Path, dst: Path) -> None:
        os.replace(src, dst)
        self._fsync_dir(Path(dst).parent)

    def _fsync_dir(self, directory: Path) -> None:
        # Persist the directory entry itself (best-effort: not all
        # platforms allow opening a directory for fsync).
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform dependent
            pass
        finally:
            os.close(fd)

    def mkdir(self, path: Path) -> None:
        Path(path).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def read_file(self, path: Path) -> bytes:
        return Path(path).read_bytes()

    def exists(self, path: Path) -> bool:
        return Path(path).exists()

    def is_dir(self, path: Path) -> bool:
        return Path(path).is_dir()

    def listdir(self, path: Path) -> list[str]:
        """Sorted entry names of a directory; ``[]`` if it is missing."""
        try:
            return sorted(os.listdir(path))
        except FileNotFoundError:
            return []

    # ------------------------------------------------------------------ #
    # Removal (garbage collection)
    # ------------------------------------------------------------------ #
    def remove(self, path: Path) -> None:
        try:
            os.remove(path)
        except FileNotFoundError:
            pass

    def remove_tree(self, path: Path) -> None:
        """Recursively delete a directory tree (missing is fine)."""
        path = Path(path)
        if not path.is_dir():
            self.remove(path)
            return
        for name in self.listdir(path):
            self.remove_tree(path / name)
        try:
            os.rmdir(path)
        except OSError:  # pragma: no cover - raced or non-empty
            pass


class FaultyDisk(DiskIO):
    """Deterministic fault injection for the crash-consistency suite.

    Counts *write points* — every file-content write and every rename is
    one operation. Fault knobs:

    ``crash_after_ops=N``
        the first N operations succeed, then the next one raises
        :class:`InjectedFault` (N=0 crashes on the very first write).
    ``torn_write_bytes=K``
        when the crashing operation is a content write, the first K bytes
        still reach the (temporary) file before the crash — a torn write.
    ``drop_rename_of=substr``
        renames whose destination contains ``substr`` silently do nothing
        (a lost directory-entry update); the save continues believing the
        rename happened.
    ``flip_bit_on_read=(substr, byte_index, bit)``
        reads of paths containing ``substr`` come back with one bit
        flipped (``byte_index`` is taken modulo the file length).
    ``lose_unsynced_on_crash=True``
        appends that were never followed by a :meth:`sync_file` are
        rolled back (the file truncated to its last-synced length) when
        the crash fires — the honest power-cut model for group commit,
        where a commit is durable only once its fsync completed. Files
        *created* by :meth:`append_file` whose parent directory was
        never :meth:`sync_dir`-ed disappear entirely: their directory
        entry was still unsynced metadata, so the power cut unlinks them
        no matter how many times the file itself was fsynced. (Files
        that arrive via :meth:`rename` are exempt — rename fsyncs the
        destination directory as part of the atomic protocol.)

    Every content write, append, fsync (file or directory), and rename
    counts as one write point, so crash sweeps cover the WAL's
    append/sync sequence too.
    """

    def __init__(
        self,
        crash_after_ops: int | None = None,
        torn_write_bytes: int | None = None,
        drop_rename_of: str | None = None,
        flip_bit_on_read: tuple[str, int, int] | None = None,
        lose_unsynced_on_crash: bool = False,
    ) -> None:
        self.crash_after_ops = crash_after_ops
        self.torn_write_bytes = torn_write_bytes
        self.drop_rename_of = drop_rename_of
        self.flip_bit_on_read = flip_bit_on_read
        self.lose_unsynced_on_crash = lose_unsynced_on_crash
        self.ops = 0
        self.dropped_renames: list[str] = []
        self._synced_sizes: dict[str, int] = {}
        # Directory entries created by append_file whose parent dir was
        # never sync_dir-ed: parent dir -> set of file paths. A crash
        # with lose_unsynced_on_crash unlinks these files entirely.
        self._unsynced_entries: dict[str, set[str]] = {}

    def _maybe_crash(
        self, path: Path, data: bytes | None, append: bool = False
    ) -> None:
        if self.crash_after_ops is None or self.ops < self.crash_after_ops:
            return
        if data is not None and self.torn_write_bytes is not None:
            # Model a torn write: a prefix hits the platter, no fsync.
            self.mkdir(Path(path).parent)
            with open(path, "ab" if append else "wb") as handle:
                handle.write(data[: self.torn_write_bytes])
        if self.lose_unsynced_on_crash:
            # Un-fsynced appended bytes never reached the platter.
            for unsynced_path, synced_size in self._synced_sizes.items():
                try:
                    os.truncate(unsynced_path, synced_size)
                except OSError:  # pragma: no cover - file never created
                    pass
            # Un-fsynced directory entries never reached the platter:
            # the files they name are unreachable after the power cut,
            # however thoroughly their contents were fsynced.
            for entries in self._unsynced_entries.values():
                for entry_path in entries:
                    try:
                        os.remove(entry_path)
                    except OSError:  # pragma: no cover - never created
                        pass
        raise InjectedFault(
            f"simulated crash at write point {self.ops} ({Path(path).name})"
        )

    def _write_bytes(self, path: Path, data: bytes) -> None:
        self._maybe_crash(path, data)
        super()._write_bytes(path, data)
        self.ops += 1

    def append_file(self, path: Path, data: bytes) -> None:
        self._maybe_crash(path, data, append=True)
        if self.lose_unsynced_on_crash:
            if not self.exists(path):
                self._unsynced_entries.setdefault(
                    str(Path(path).parent), set()
                ).add(str(path))
            self._synced_sizes.setdefault(str(path), self.file_size(path))
        super().append_file(path, data)
        self.ops += 1

    def sync_file(self, path: Path) -> None:
        self._maybe_crash(path, None)
        super().sync_file(path)
        self._synced_sizes.pop(str(path), None)
        self.ops += 1

    def sync_dir(self, path: Path) -> None:
        self._maybe_crash(path, None)
        super().sync_dir(path)
        self._unsynced_entries.pop(str(Path(path)), None)
        self.ops += 1

    def rename(self, src: Path, dst: Path) -> None:
        self._maybe_crash(dst, None)
        if self.drop_rename_of is not None and self.drop_rename_of in str(dst):
            # The rename is lost: leave the temp file behind, report success.
            self.dropped_renames.append(str(dst))
            self.ops += 1
            return
        super().rename(src, dst)
        # rename fsyncs the destination directory, so every entry in it
        # (not just the renamed one) is durable from here on.
        self._unsynced_entries.pop(str(Path(dst).parent), None)
        self.ops += 1

    def read_file(self, path: Path) -> bytes:
        data = super().read_file(path)
        if self.flip_bit_on_read is not None and data:
            substr, byte_index, bit = self.flip_bit_on_read
            if substr in str(path):
                flipped = bytearray(data)
                flipped[byte_index % len(flipped)] ^= 1 << (bit % 8)
                return bytes(flipped)
        return data
