"""Bulk loading: rows → compressed row groups.

Large loads bypass delta stores entirely (the paper's bulk-insert path):
rows are chunked into row-group-sized units, optionally reordered for run
length (Vertipaq), and each column is compressed into a segment. The loader
is also what the tuple mover uses to compress a closed delta store.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import StorageError
from ..schema import TableSchema
from .config import StoreConfig
from .directory import SegmentDirectory
from .reorder import choose_row_order
from .rowgroup import RowGroup
from .segment import encode_segment


def rows_to_columns(
    schema: TableSchema, rows: Sequence[tuple[Any, ...]]
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray | None]]:
    """Pivot physical row tuples into per-column arrays + null masks."""
    n = len(rows)
    columns: dict[str, np.ndarray] = {}
    null_masks: dict[str, np.ndarray | None] = {}
    for position, col in enumerate(schema):
        raw = [row[position] for row in rows]
        mask = np.fromiter((v is None for v in raw), dtype=bool, count=n)
        has_nulls = bool(mask.any())
        dtype = col.dtype.numpy_dtype
        if dtype == object:
            arr = np.empty(n, dtype=object)
            arr[:] = ["" if v is None else v for v in raw]
        else:
            fill: Any = False if dtype == np.bool_ else 0
            arr = np.array([fill if v is None else v for v in raw], dtype=dtype)
        columns[col.name] = arr
        null_masks[col.name] = mask if has_nulls else None
    return columns, null_masks


class BulkLoader:
    """Compresses column data into row groups registered in a directory."""

    def __init__(self, schema: TableSchema, directory: SegmentDirectory, config: StoreConfig) -> None:
        self.schema = schema
        self.directory = directory
        self.config = config

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def load_rows(self, rows: Sequence[tuple[Any, ...]]) -> list[RowGroup]:
        """Compress already-coerced physical rows into row groups."""
        columns, null_masks = rows_to_columns(self.schema, rows)
        return self.load_columns(columns, null_masks)

    def load_columns(
        self,
        columns: Mapping[str, np.ndarray],
        null_masks: Mapping[str, np.ndarray | None] | None = None,
    ) -> list[RowGroup]:
        """Compress per-column arrays into row groups (chunked, reordered)."""
        null_masks = dict(null_masks or {})
        names = self.schema.names
        missing = [name for name in names if name not in columns]
        if missing:
            raise StorageError(f"bulk load missing columns {missing}")
        sizes = {np.asarray(columns[name]).size for name in names}
        if len(sizes) != 1:
            raise StorageError(f"bulk load column lengths differ: {sorted(sizes)}")
        total = sizes.pop()
        groups: list[RowGroup] = []
        for start in range(0, total, self.config.rowgroup_size):
            end = min(start + self.config.rowgroup_size, total)
            chunk_cols = {name: np.asarray(columns[name])[start:end] for name in names}
            chunk_masks = {
                name: (mask[start:end] if (mask := null_masks.get(name)) is not None else None)
                for name in names
            }
            groups.extend(self._compress_bounded(chunk_cols, chunk_masks))
        return groups

    def _compress_bounded(
        self,
        columns: dict[str, np.ndarray],
        null_masks: dict[str, np.ndarray | None],
    ) -> list[RowGroup]:
        """Compress a chunk, splitting it when dictionaries grow too large.

        The paper caps per-row-group dictionary size (16 MB): high-NDV
        string data therefore produces *smaller* row groups. We compress,
        check the resulting dictionary footprint, and if it exceeds the
        limit re-compress the chunk in halves.
        """
        group = self._compress_chunk(columns, null_masks)
        rows = group.row_count
        if rows <= 1 or self._dictionary_bytes(group) <= self.config.dictionary_size_limit:
            return [group]
        # Too big: withdraw the oversized group and split the chunk.
        self.directory.remove_row_group(group.group_id)
        mid = rows // 2
        halves: list[RowGroup] = []
        for lo, hi in ((0, mid), (mid, rows)):
            half_cols = {name: arr[lo:hi] for name, arr in columns.items()}
            half_masks = {
                name: (mask[lo:hi] if mask is not None else None)
                for name, mask in null_masks.items()
            }
            halves.extend(self._compress_bounded(half_cols, half_masks))
        return halves

    @staticmethod
    def _dictionary_bytes(group: RowGroup) -> int:
        return sum(
            seg.dictionary.size_bytes
            for seg in group.segments.values()
            if seg.dictionary is not None
        )

    # ------------------------------------------------------------------ #
    # One row group
    # ------------------------------------------------------------------ #
    def _compress_chunk(
        self,
        columns: dict[str, np.ndarray],
        null_masks: dict[str, np.ndarray | None],
    ) -> RowGroup:
        if self.config.reorder_rows:
            perm = choose_row_order(columns, null_masks)
            columns = {name: arr[perm] for name, arr in columns.items()}
            null_masks = {
                name: (mask[perm] if mask is not None else None)
                for name, mask in null_masks.items()
            }
        segments = {}
        for col in self.schema:
            segment = encode_segment(
                col.dtype,
                columns[col.name],
                null_masks.get(col.name),
                global_dict=self.directory.global_dictionary(col.name),
            )
            if self.config.archival:
                segment = segment.to_archived()
            segments[col.name] = segment
        group = RowGroup(
            group_id=self.directory.allocate_group_id(),
            schema=self.schema,
            segments=segments,
        )
        self.directory.add_row_group(group)
        return group
