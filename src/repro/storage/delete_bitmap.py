"""The delete bitmap (delete buffer) of a columnstore index.

Compressed row groups are immutable, so DELETE marks rows in a side
structure keyed by (row-group id, position) — the paper's delete bitmap.
Scans subtract marked rows; the tuple mover / REBUILD physically removes
them. SQL Server keeps an in-memory bitmap backed by a B-tree on disk; we
keep per-row-group Python dicts with a vectorized mask materialization
for batch scans.

MVCC: every mark carries the commit epoch at which the delete became
visible (:mod:`repro.mvcc`). A transactional delete marks at
:data:`~repro.mvcc.PENDING_EPOCH` and stamps the real epoch at commit;
:meth:`mask_for` filters by a reader's epoch so a snapshot pinned before
the delete committed keeps seeing the row. ``epoch=None`` means "current
state including pending marks" — the read-your-writes view the
single-caller engine and in-transaction scans use.

Redo determinism: marks are keyed by (group id, position), and group ids
are assigned by deterministic maintenance operations that the WAL logs
(:mod:`repro.wal.replay`), so replaying a DELETE record's locators on a
replayed index marks exactly the rows the original statement marked.
"""

from __future__ import annotations

import threading
from typing import Iterator

import numpy as np

from ..mvcc import GENESIS_EPOCH


class DeleteBitmap:
    """Deleted-row marks for the compressed row groups of one index."""

    def __init__(self) -> None:
        # group id -> {position -> mark epoch}
        self._deleted: dict[int, dict[int, int]] = {}
        # Guards structural mutation vs. lock-free mask materialization:
        # snapshot readers call mask_for with no outer lock held, and a
        # dict being resized mid-iteration would tear the capture.
        self._lock = threading.Lock()
        # Monotonic mutation counter. Snapshot reads pin a bitmap version
        # at statement start (masks are materialized then) and concurrent
        # DML bumps this, so a pinned scan can tell — and tests can
        # assert — that its masks predate any concurrent mutation.
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic version, bumped by every mark/unmark/forget."""
        return self._version

    # ------------------------------------------------------------------ #
    # Marking
    # ------------------------------------------------------------------ #
    def mark(self, group_id: int, position: int, epoch: int = GENESIS_EPOCH) -> bool:
        """Mark one row deleted; returns ``False`` if it already was.

        ``epoch`` is the visibility epoch of the mark — GENESIS for
        txn-less callers (visible to everyone immediately), PENDING for
        transactional deletes awaiting :meth:`stamp` at commit.
        """
        with self._lock:
            positions = self._deleted.setdefault(group_id, {})
            if position in positions:
                return False
            positions[position] = epoch
            self._version += 1
            return True

    def stamp(self, group_id: int, position: int, epoch: int) -> None:
        """Commit hook: replace a PENDING mark with its commit epoch.

        A no-op if the mark is gone (rolled back) or already stamped —
        stamp-if-still-pending is what makes stale hooks after a
        statement-level rollback harmless.
        """
        from ..mvcc import PENDING_EPOCH

        with self._lock:
            positions = self._deleted.get(group_id)
            if positions is not None and positions.get(position) == PENDING_EPOCH:
                positions[position] = epoch

    def unmark(self, group_id: int, position: int) -> bool:
        """Clear one mark (delete undo); returns ``False`` if not marked.

        An entry left empty is removed entirely so the bitmap's group
        set (and accounting size) returns to its exact pre-mark state.
        """
        with self._lock:
            positions = self._deleted.get(group_id)
            if positions is None or position not in positions:
                return False
            del positions[position]
            if not positions:
                del self._deleted[group_id]
            self._version += 1
            return True

    def mark_many(
        self,
        group_id: int,
        positions: Iterator[int] | list[int],
        epoch: int = GENESIS_EPOCH,
    ) -> int:
        """Mark many rows of one row group; returns newly marked count."""
        with self._lock:
            existing = self._deleted.setdefault(group_id, {})
            added = 0
            for p in positions:
                p = int(p)
                if p not in existing:
                    existing[p] = epoch
                    added += 1
            if added:
                self._version += 1
            elif not existing:
                del self._deleted[group_id]
            return added

    def is_deleted(self, group_id: int, position: int) -> bool:
        positions = self._deleted.get(group_id)
        return positions is not None and position in positions

    # ------------------------------------------------------------------ #
    # Scan support
    # ------------------------------------------------------------------ #
    def deleted_count(self, group_id: int) -> int:
        positions = self._deleted.get(group_id)
        return len(positions) if positions else 0

    @property
    def total_deleted(self) -> int:
        return sum(len(p) for p in self._deleted.values())

    def mask_for(
        self, group_id: int, row_count: int, epoch: int | None = None
    ) -> np.ndarray | None:
        """Boolean deleted-mask for a row group, or ``None`` if untouched.

        ``epoch=None`` applies every mark including PENDING ones (the
        current-state / read-your-writes view); an integer epoch applies
        only marks committed at or before it (a snapshot view).
        """
        with self._lock:
            positions = self._deleted.get(group_id)
            if not positions:
                return None
            if epoch is None:
                marked = list(positions)
            else:
                marked = [p for p, e in positions.items() if e <= epoch]
        if not marked:
            return None
        mask = np.zeros(row_count, dtype=bool)
        mask[np.fromiter(marked, dtype=np.int64, count=len(marked))] = True
        return mask

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def forget_group(self, group_id: int) -> None:
        """Drop all marks for a row group (after rebuild/removal)."""
        with self._lock:
            if self._deleted.pop(group_id, None) is not None:
                self._version += 1

    def take_group(self, group_id: int) -> dict[int, int]:
        """Detach and return a row group's marks (group retirement).

        The retiring maintenance operation snapshots the marks alongside
        the retired group object, so readers at older epochs keep
        filtering the retired group with the marks it had — while the
        live bitmap sheds the entry (the replacement groups contain no
        deleted rows).
        """
        with self._lock:
            marks = self._deleted.pop(group_id, None)
            if marks is None:
                return {}
            self._version += 1
            return dict(marks)

    def groups_with_deletes(self) -> list[int]:
        return sorted(gid for gid, positions in self._deleted.items() if positions)

    def marks_for(self, group_id: int) -> list[int]:
        """Sorted marked positions of one row group (persistence/WAL use)."""
        return sorted(self._deleted.get(group_id, ()))

    @property
    def size_bytes(self) -> int:
        """Accounting size: a compressed bitmap would be ~4 bytes/entry."""
        return self.total_deleted * 4 + 16 * len(self._deleted)
