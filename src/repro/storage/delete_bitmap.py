"""The delete bitmap (delete buffer) of a columnstore index.

Compressed row groups are immutable, so DELETE marks rows in a side
structure keyed by (row-group id, position) — the paper's delete bitmap.
Scans subtract marked rows; the tuple mover / REBUILD physically removes
them. SQL Server keeps an in-memory bitmap backed by a B-tree on disk; we
keep per-row-group Python sets with a vectorized mask materialization for
batch scans.

Redo determinism: marks are keyed by (group id, position), and group ids
are assigned by deterministic maintenance operations that the WAL logs
(:mod:`repro.wal.replay`), so replaying a DELETE record's locators on a
replayed index marks exactly the rows the original statement marked.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


class DeleteBitmap:
    """Deleted-row marks for the compressed row groups of one index."""

    def __init__(self) -> None:
        self._deleted: dict[int, set[int]] = {}
        # Monotonic mutation counter. Snapshot reads pin a bitmap version
        # at statement start (masks are materialized then) and concurrent
        # DML bumps this, so a pinned scan can tell — and tests can
        # assert — that its masks predate any concurrent mutation.
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic version, bumped by every mark/unmark/forget."""
        return self._version

    # ------------------------------------------------------------------ #
    # Marking
    # ------------------------------------------------------------------ #
    def mark(self, group_id: int, position: int) -> bool:
        """Mark one row deleted; returns ``False`` if it already was."""
        positions = self._deleted.setdefault(group_id, set())
        if position in positions:
            return False
        positions.add(position)
        self._version += 1
        return True

    def unmark(self, group_id: int, position: int) -> bool:
        """Clear one mark (delete undo); returns ``False`` if not marked.

        An entry left empty is removed entirely so the bitmap's group
        set (and accounting size) returns to its exact pre-mark state.
        """
        positions = self._deleted.get(group_id)
        if positions is None or position not in positions:
            return False
        positions.discard(position)
        if not positions:
            del self._deleted[group_id]
        self._version += 1
        return True

    def mark_many(self, group_id: int, positions: Iterator[int] | list[int]) -> int:
        """Mark many rows of one row group; returns newly marked count."""
        existing = self._deleted.setdefault(group_id, set())
        before = len(existing)
        existing.update(int(p) for p in positions)
        added = len(existing) - before
        if added:
            self._version += 1
        elif not existing:
            del self._deleted[group_id]
        return added

    def is_deleted(self, group_id: int, position: int) -> bool:
        positions = self._deleted.get(group_id)
        return positions is not None and position in positions

    # ------------------------------------------------------------------ #
    # Scan support
    # ------------------------------------------------------------------ #
    def deleted_count(self, group_id: int) -> int:
        positions = self._deleted.get(group_id)
        return len(positions) if positions else 0

    @property
    def total_deleted(self) -> int:
        return sum(len(p) for p in self._deleted.values())

    def mask_for(self, group_id: int, row_count: int) -> np.ndarray | None:
        """Boolean deleted-mask for a row group, or ``None`` if untouched."""
        positions = self._deleted.get(group_id)
        if not positions:
            return None
        mask = np.zeros(row_count, dtype=bool)
        mask[np.fromiter(positions, dtype=np.int64, count=len(positions))] = True
        return mask

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def forget_group(self, group_id: int) -> None:
        """Drop all marks for a row group (after rebuild/removal)."""
        if self._deleted.pop(group_id, None) is not None:
            self._version += 1

    def groups_with_deletes(self) -> list[int]:
        return sorted(gid for gid, positions in self._deleted.items() if positions)

    def marks_for(self, group_id: int) -> list[int]:
        """Sorted marked positions of one row group (persistence/WAL use)."""
        return sorted(self._deleted.get(group_id, ()))

    @property
    def size_bytes(self) -> int:
        """Accounting size: a compressed bitmap would be ~4 bytes/entry."""
        return self.total_deleted * 4 + 16 * len(self._deleted)
