"""Vertipaq-style row reordering.

Rows within a row group may be stored in any order, so the compressor is
free to permute them to lengthen runs and make RLE effective. The paper
(and the VertiPaq engine it inherits from) uses a greedy heuristic; we use
the standard practical one: lexicographic sort with columns ordered by
ascending distinct-value count, so the lowest-cardinality columns form the
longest runs and higher-cardinality columns form runs within them.

Reordering is applied per row group at bulk-load time (see
:mod:`repro.storage.loader`) and is benchmarked as ablation E11.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np


def _sortable_view(values: np.ndarray, null_mask: np.ndarray | None) -> np.ndarray:
    """A totally-ordered proxy for one column: nulls first, strings ranked."""
    if values.dtype == object:
        # Rank strings through their sorted distinct values so lexsort can
        # operate on integers.
        lst = values.tolist()
        distinct = {v: i for i, v in enumerate(sorted(set(lst)))}
        proxy = np.fromiter((distinct[v] for v in lst), dtype=np.int64, count=len(lst))
    else:
        proxy = values.astype(np.float64, copy=True)
    if null_mask is not None and null_mask.any():
        proxy = proxy.astype(np.float64)
        proxy[null_mask] = -np.inf
    return proxy


def _cardinality(values: np.ndarray) -> int:
    if values.dtype == object:
        return len(set(values.tolist()))
    return int(np.unique(values).size)


def choose_row_order(
    columns: Mapping[str, np.ndarray],
    null_masks: Mapping[str, np.ndarray | None] | None = None,
) -> np.ndarray:
    """Permutation of row positions that improves run lengths.

    Returns an index array ``perm`` such that ``col[perm]`` is the stored
    order. Deterministic: ties resolve by column name.
    """
    null_masks = null_masks or {}
    names = sorted(columns, key=lambda name: (_cardinality(columns[name]), name))
    if not names:
        return np.zeros(0, dtype=np.int64)
    # np.lexsort sorts by the LAST key first, so pass highest-cardinality
    # columns first and the lowest-cardinality column last (primary key).
    keys = [
        _sortable_view(columns[name], null_masks.get(name))
        for name in reversed(names)
    ]
    return np.lexsort(keys).astype(np.int64)


def run_total(columns: Mapping[str, np.ndarray]) -> int:
    """Total number of RLE runs across columns (lower is better)."""
    from .rle import run_count

    total = 0
    for values in columns.values():
        if values.dtype == object:
            lst = values.tolist()
            distinct = {v: i for i, v in enumerate(sorted(set(lst)))}
            values = np.fromiter(
                (distinct[v] for v in lst), dtype=np.int64, count=len(lst)
            )
        total += run_count(values)
    return total
