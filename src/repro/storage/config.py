"""Tunables of the columnstore index.

Defaults follow the paper (row groups of 2^20 rows, bulk loads at or above
~100k rows bypass delta stores). Tests shrink these to exercise the same
code paths on small data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError


@dataclass(frozen=True)
class StoreConfig:
    """Configuration of one columnstore index."""

    # Maximum rows per compressed row group (paper: 2^20).
    rowgroup_size: int = 1 << 20
    # Bulk inserts of at least this many rows compress directly into row
    # groups instead of landing in a delta store (paper: ~100k).
    bulk_load_threshold: int = 100_000
    # A delta store closes (becomes eligible for the tuple mover) when it
    # reaches this many rows; the paper uses the row-group size.
    delta_close_rows: int | None = None  # None -> rowgroup_size
    # Apply Vertipaq-style row reordering before compressing a row group.
    reorder_rows: bool = True
    # A row group whose local dictionaries exceed this many bytes is split
    # and re-compressed in halves (the paper caps dictionaries at 16 MB,
    # producing smaller row groups on wide/high-NDV string data).
    dictionary_size_limit: int = 16 * 1024 * 1024
    # Apply archival (LZ77) compression on top of segment encoding.
    archival: bool = False
    # B+tree order for delta stores.
    btree_order: int = 64
    # Decoded-segment LRU cache capacity in bytes (0 = disabled). Models
    # SQL Server's in-memory caching of decompressed segments; several
    # benchmarks keep it off to measure decompression cost.
    segment_cache_bytes: int = 0

    def __post_init__(self) -> None:
        if self.rowgroup_size < 1:
            raise StorageError("rowgroup_size must be positive")
        if self.bulk_load_threshold < 1:
            raise StorageError("bulk_load_threshold must be positive")
        if self.delta_close_rows is not None and self.delta_close_rows < 1:
            raise StorageError("delta_close_rows must be positive")

    @property
    def effective_delta_close_rows(self) -> int:
        return self.delta_close_rows if self.delta_close_rows is not None else self.rowgroup_size
