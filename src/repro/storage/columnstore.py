"""The updatable columnstore index.

Combines every storage structure of the paper into one object:

* compressed **row groups** catalogued by a :class:`SegmentDirectory`,
* **delta stores** (B-tree row stores) absorbing trickle inserts,
* a **delete bitmap** marking deleted rows of compressed row groups,
* the **bulk loader** that turns large inserts straight into row groups.

Rows are addressed by :class:`RowLocator`: compressed rows by (row-group
id, position), delta rows by (delta-store id, row id). UPDATE is modelled
the way the paper does: delete + insert (see :meth:`ColumnStoreIndex.update`).

MVCC (DESIGN.md "Multi-versioning"): the index owns an
:class:`~repro.mvcc.EpochManager` (private by default; the Database
attaches its shared one). Transactional mutations stamp
:data:`~repro.mvcc.PENDING_EPOCH` and register commit hooks that stamp
the real epoch; maintenance operations *retire* superseded structures
(row groups folded by REBUILD/archival, delta stores compressed by the
tuple mover) into side lists instead of dropping them, so a snapshot
reader pinned at an older epoch keeps scanning exactly the structures
that were visible then. :meth:`vacuum` frees retired structures and
tombstoned delta rows once the reader-registry horizon passes them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..errors import StorageError
from ..mvcc import GENESIS_EPOCH, PENDING_EPOCH, EpochManager
from ..observability import registry as metrics
from ..schema import TableSchema
from .config import StoreConfig
from .delete_bitmap import DeleteBitmap
from .deltastore import DeltaStore, FrozenDeltaView
from .directory import SegmentDirectory
from .loader import BulkLoader, rows_to_columns
from .rowgroup import RowGroup

GROUP = "group"
DELTA = "delta"


@dataclass(frozen=True)
class RetiredGroup:
    """A row group superseded by maintenance, kept for older readers.

    ``marks`` is the delete-bitmap state snapshotted at retirement
    (positions -> mark epoch), or ``None`` when the live bitmap still
    holds the group's marks (archival keeps the same group id live, so
    its marks never moved).
    """

    group: RowGroup
    created_epoch: int
    retired_epoch: int
    marks: dict[int, int] | None


@dataclass(frozen=True)
class RetiredDelta:
    """A delta store compressed away, kept for older readers."""

    delta: DeltaStore
    retired_epoch: int


@dataclass(frozen=True)
class RowLocator:
    """A stable address of one live row inside the index."""

    kind: str  # GROUP or DELTA
    container_id: int  # row-group id or delta-store id
    position: int  # position within the row group, or delta row id


@dataclass
class ScanUnit:
    """One scannable unit handed to the execution engine.

    Either a compressed row group (with its current deleted-row mask) or a
    delta store. The executor turns each into column batches.
    """

    kind: str
    group: RowGroup | None = None
    deleted_mask: np.ndarray | None = None
    delta: DeltaStore | FrozenDeltaView | None = None

    @property
    def container_id(self) -> int:
        if self.kind == GROUP:
            assert self.group is not None
            return self.group.group_id
        assert self.delta is not None
        return self.delta.delta_id


class ColumnStoreIndex:
    """An updatable columnstore index over one table's rows."""

    def __init__(self, schema: TableSchema, config: StoreConfig | None = None) -> None:
        self.schema = schema
        self.config = config or StoreConfig()
        self.directory = SegmentDirectory(schema)
        self.loader = BulkLoader(schema, self.directory, self.config)
        self.delete_bitmap = DeleteBitmap()
        self.segment_cache = None
        if self.config.segment_cache_bytes > 0:
            from .cache import SegmentCache

            self.segment_cache = SegmentCache(self.config.segment_cache_bytes)
        self._delta_stores: dict[int, DeltaStore] = {}
        self._open_delta_id: int | None = None
        self._next_delta_id = 0
        self._next_row_id = 0
        # MVCC. Every index works standalone with a private epoch
        # manager; Database swaps in its shared one (attach_mvcc) so all
        # tables advance one clock. The retired lists hold structures
        # superseded by maintenance but still visible to older readers;
        # they are immutable tuples swapped whole, and _pin_mutex makes
        # retire/vacuum atomic against a lock-free reader's capture.
        self.mvcc = EpochManager()
        self._retired_groups: tuple[RetiredGroup, ...] = ()
        self._retired_deltas: tuple[RetiredDelta, ...] = ()
        self._pin_mutex = threading.Lock()

    def attach_mvcc(self, manager: EpochManager) -> None:
        """Share the database-wide epoch manager (called at table
        creation and after persistence load)."""
        self.mvcc = manager

    # ------------------------------------------------------------------ #
    # Inserts
    # ------------------------------------------------------------------ #
    def _open_delta(self) -> DeltaStore:
        if self._open_delta_id is not None:
            return self._delta_stores[self._open_delta_id]
        delta = DeltaStore(self._next_delta_id, self.schema, self.config.btree_order)
        self._delta_stores[delta.delta_id] = delta
        self._open_delta_id = delta.delta_id
        self._next_delta_id += 1
        return delta

    def insert(self, row: tuple[Any, ...], txn=None) -> RowLocator:
        """Trickle-insert one physical row into the open delta store.

        With a transaction context, records an undo that removes the row
        and restores the allocator counters and delta open/close/creation
        transitions — rollback leaves the index structurally identical to
        its pre-insert state, so replayed locators stay valid.
        """
        created = self._open_delta_id is None
        delta = self._open_delta()
        row_id = self._next_row_id
        self._next_row_id += 1
        if txn is not None:
            txn.record(
                f"un-insert delta row {row_id} (delta {delta.delta_id})",
                lambda: self._undo_insert(delta.delta_id, row_id, created),
            )
            delta.insert(row_id, tuple(row), epoch=PENDING_EPOCH)
            txn.on_commit(
                lambda epoch, d=delta, r=row_id: d.stamp_insert(r, epoch)
            )
        else:
            delta.insert(row_id, tuple(row))
        if delta.row_count >= self.config.effective_delta_close_rows:
            delta.close()
            self._open_delta_id = None
        return RowLocator(DELTA, delta.delta_id, row_id)

    def _undo_insert(self, delta_id: int, row_id: int, created: bool) -> None:
        delta = self._delta_stores.get(delta_id)
        if delta is None:
            raise StorageError(f"insert undo: delta store {delta_id} vanished")
        delta.delete(row_id)
        self._next_row_id = row_id
        if not delta.is_open:
            # This insert tripped the close threshold (later inserts of
            # the statement are already undone — they went elsewhere).
            delta.reopen()
            self._open_delta_id = delta_id
        if created:
            del self._delta_stores[delta_id]
            self._next_delta_id = delta_id
            self._open_delta_id = None

    def insert_many(self, rows: Iterable[tuple[Any, ...]], txn=None) -> list[RowLocator]:
        return [self.insert(row, txn) for row in rows]

    def bulk_load(self, rows: Sequence[tuple[Any, ...]], txn=None) -> None:
        """Insert many rows at once.

        At or above the bulk-load threshold the rows are compressed directly
        into row groups (the paper's bulk-insert path); below it they fall
        back to trickle inserts into the delta store.
        """
        if len(rows) >= self.config.bulk_load_threshold:
            if txn is not None:
                # Record before loading: a failure mid-load must also
                # withdraw any row groups the loader already registered.
                mark = (
                    self.directory.next_group_id,
                    {col.name: len(self.directory.global_dictionary(col.name))
                     for col in self.schema},
                )
                txn.record(
                    f"withdraw bulk-loaded row groups (ids >= {mark[0]})",
                    lambda: self._undo_bulk_load(mark),
                )
                # Groups are born PENDING and stamped at commit: a
                # snapshot reader never sees half a bulk load.
                with self.directory.creating_at(PENDING_EPOCH):
                    self.loader.load_rows(rows)
                txn.on_commit(
                    lambda epoch, first=mark[0]: self.directory.stamp_pending_from(
                        first, epoch
                    )
                )
            else:
                self.loader.load_rows(rows)
        else:
            self.insert_many(rows, txn)

    def _undo_bulk_load(self, mark: tuple[int, dict[str, int]]) -> None:
        next_group_id, dict_lengths = mark
        for group in list(self.directory.row_groups()):
            if group.group_id >= next_group_id:
                self.directory.remove_row_group(group.group_id)
                self.delete_bitmap.forget_group(group.group_id)
        self.directory.rewind_group_ids(next_group_id)
        for column, length in dict_lengths.items():
            self.directory.global_dictionary(column).truncate(length)

    def bulk_load_columns(
        self,
        columns: dict[str, np.ndarray],
        null_masks: dict[str, np.ndarray | None] | None = None,
    ) -> None:
        """Columnar bulk load (always takes the direct-compress path)."""
        self.loader.load_columns(columns, null_masks)

    # ------------------------------------------------------------------ #
    # Deletes and updates
    # ------------------------------------------------------------------ #
    def delete(self, locator: RowLocator, txn=None) -> bool:
        """Delete one row; returns ``False`` if it was already gone.

        MVCC: deletes are *versioned* — a bitmap mark carries its commit
        epoch and a delta delete tombstones the row in place — so a
        snapshot reader pinned before the delete committed keeps seeing
        the row. Txn-less deletes stamp GENESIS (immediately visible);
        transactional ones stamp PENDING and register a commit hook.
        """
        if locator.kind == GROUP:
            group = self.directory.row_group(locator.container_id)
            if not 0 <= locator.position < group.row_count:
                raise StorageError(
                    f"position {locator.position} out of range for row group "
                    f"{locator.container_id}"
                )
            epoch = GENESIS_EPOCH if txn is None else PENDING_EPOCH
            marked = self.delete_bitmap.mark(
                locator.container_id, locator.position, epoch=epoch
            )
            if marked and txn is not None:
                txn.record(
                    f"unmark deleted row {locator}",
                    lambda: self.delete_bitmap.unmark(
                        locator.container_id, locator.position
                    ),
                )
                txn.on_commit(
                    lambda e, g=locator.container_id, p=locator.position:
                        self.delete_bitmap.stamp(g, p, e)
                )
            return marked
        delta = self._delta_stores.get(locator.container_id)
        if delta is None:
            raise StorageError(f"unknown delta store {locator.container_id}")
        if txn is not None:
            if not delta.tombstone(locator.position, PENDING_EPOCH):
                return False
            txn.record(
                f"restore delta row {locator}",
                lambda: delta.clear_tombstone(locator.position),
            )
            txn.on_commit(
                lambda e, d=delta, r=locator.position: d.stamp_tombstone(r, e)
            )
            return True
        return delta.tombstone(locator.position, GENESIS_EPOCH)

    def delete_many(self, locators: Iterable[RowLocator], txn=None) -> int:
        return sum(1 for locator in locators if self.delete(locator, txn))

    def update(self, locator: RowLocator, new_row: tuple[Any, ...]) -> RowLocator:
        """UPDATE = DELETE + INSERT, as in the paper."""
        if not self.delete(locator):
            raise StorageError(f"row {locator} is already deleted")
        return self.insert(new_row)

    def get_row(self, locator: RowLocator) -> tuple[Any, ...] | None:
        """Fetch one live row by locator (None if deleted/absent)."""
        if locator.kind == DELTA:
            delta = self._delta_stores.get(locator.container_id)
            return delta.get(locator.position) if delta is not None else None
        if self.delete_bitmap.is_deleted(locator.container_id, locator.position):
            return None
        group = self.directory.row_group(locator.container_id)
        row = []
        for col in self.schema:
            values, mask = group.decode_column(col.name)
            if mask is not None and mask[locator.position]:
                row.append(None)
            else:
                value = values[locator.position]
                row.append(value.item() if hasattr(value, "item") else value)
        return tuple(row)

    # ------------------------------------------------------------------ #
    # Scan interface
    # ------------------------------------------------------------------ #
    def decode_segment(self, group: RowGroup, column: str):
        """Decode one segment, through the decode cache when enabled."""
        metrics.increment("storage.segments.decode_requests")
        segment = group.segment(column)
        if self.segment_cache is not None:
            return self.segment_cache.decode(segment)
        return segment.decode()

    def scan_units(self) -> Iterator[ScanUnit]:
        """All scannable units: compressed groups first, then delta stores."""
        for group in self.directory.row_groups():
            yield ScanUnit(
                kind=GROUP,
                group=group,
                deleted_mask=self.delete_bitmap.mask_for(group.group_id, group.row_count),
            )
        for delta_id in sorted(self._delta_stores):
            delta = self._delta_stores[delta_id]
            if delta.row_count:
                yield ScanUnit(kind=DELTA, delta=delta)

    def pin_scan_units(self, epoch: int | None = None) -> list[ScanUnit]:
        """A snapshot-stable capture of :meth:`scan_units`.

        The concurrency layer calls this at statement start and then
        scans the returned units with **no lock held**. Everything
        reachable from the result is stable under concurrent DML and
        maintenance:

        * compressed row groups are immutable objects — the tuple mover,
          REBUILD and archival all swap *new* group objects into the
          directory, and the pinned references keep the old ones alive;
        * deleted-row masks are materialized here, so later delete-bitmap
          marks never show through mid-scan (the bitmap's ``version`` at
          pin time is recorded for assertions);
        * delta stores are frozen into columnar copies
          (:meth:`DeltaStore.capture`) — the live B-trees keep absorbing
          trickle inserts without tearing the pinned view.

        ``epoch`` selects the snapshot: ``None`` pins the current state
        (pending mutations included — the in-transaction
        read-your-writes view), an integer pins exactly the structures
        and rows committed at or before that epoch, including *retired*
        row groups / delta stores maintenance has since superseded. The
        capture runs under ``_pin_mutex`` so it can never interleave
        with a retirement half-way (structure in neither the live
        directory nor the retired list); the expensive delta
        materialization happens after the mutex is dropped, on
        references the retired lists keep alive.
        """
        with self._pin_mutex:
            group_units: dict[int, ScanUnit] = {}
            if epoch is not None:
                # Retired groups first: a group mid-retirement may appear
                # both here and in the directory, and the retired record
                # carries the marks it had when superseded.
                for record in self._retired_groups:
                    if not record.created_epoch <= epoch < record.retired_epoch:
                        continue
                    group = record.group
                    if record.marks is None:
                        mask = self.delete_bitmap.mask_for(
                            group.group_id, group.row_count, epoch
                        )
                    else:
                        marked = [p for p, e in record.marks.items() if e <= epoch]
                        if marked:
                            mask = np.zeros(group.row_count, dtype=bool)
                            mask[np.fromiter(marked, dtype=np.int64,
                                             count=len(marked))] = True
                        else:
                            mask = None
                    group_units[group.group_id] = ScanUnit(
                        kind=GROUP, group=group, deleted_mask=mask
                    )
                for group, _created in self.directory.visible_groups(epoch):
                    if group.group_id in group_units:
                        continue
                    group_units[group.group_id] = ScanUnit(
                        kind=GROUP,
                        group=group,
                        deleted_mask=self.delete_bitmap.mask_for(
                            group.group_id, group.row_count, epoch
                        ),
                    )
            else:
                for group in self.directory.row_groups():
                    group_units[group.group_id] = ScanUnit(
                        kind=GROUP,
                        group=group,
                        deleted_mask=self.delete_bitmap.mask_for(
                            group.group_id, group.row_count
                        ),
                    )
            delta_refs: list[DeltaStore] = []
            seen: set[int] = set()
            if epoch is not None:
                for delta_record in self._retired_deltas:
                    if epoch < delta_record.retired_epoch:
                        seen.add(delta_record.delta.delta_id)
                        delta_refs.append(delta_record.delta)
            for delta_id in sorted(self._delta_stores):
                if delta_id not in seen:
                    delta_refs.append(self._delta_stores[delta_id])
        units: list[ScanUnit] = [group_units[gid] for gid in sorted(group_units)]
        for delta in sorted(delta_refs, key=lambda d: d.delta_id):
            view = delta.capture(epoch)
            if view.row_count:
                units.append(ScanUnit(kind=DELTA, delta=view))
        metrics.increment("concurrency.snapshot_pins")
        return units

    def delta_stores(self) -> list[DeltaStore]:
        return [self._delta_stores[k] for k in sorted(self._delta_stores)]

    def closed_delta_stores(self) -> list[DeltaStore]:
        return [d for d in self.delta_stores() if not d.is_open and d.row_count]

    def remove_delta_store(self, delta_id: int) -> None:
        if delta_id == self._open_delta_id:
            self._open_delta_id = None
        self._delta_stores.pop(delta_id, None)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def compressed_rows(self) -> int:
        return self.directory.total_rows

    @property
    def delta_rows(self) -> int:
        return sum(d.row_count for d in self._delta_stores.values())

    @property
    def live_rows(self) -> int:
        return self.compressed_rows - self.delete_bitmap.total_deleted + self.delta_rows

    @property
    def size_bytes(self) -> int:
        return (
            self.directory.encoded_size_bytes
            + sum(d.size_bytes for d in self._delta_stores.values())
            + self.delete_bitmap.size_bytes
        )

    @property
    def fraction_in_delta(self) -> float:
        live = self.live_rows
        return self.delta_rows / live if live else 0.0

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def close_open_delta(self) -> None:
        """Force-close the open delta store (e.g. before a tuple-mover run)."""
        if self._open_delta_id is not None:
            self._delta_stores[self._open_delta_id].close()
            self._open_delta_id = None

    def _retire_group(self, group: RowGroup, epoch: int, keep_marks: bool = False) -> None:
        """Move a superseded row group to the retired list.

        Appended *before* the caller removes it from the directory, and
        under ``_pin_mutex``, so a concurrent snapshot capture sees the
        group in at least one of the two places (the capture dedupes by
        id, retired record winning). ``keep_marks`` is the archival case:
        the same group id stays live, so its delete marks stay in the
        live bitmap and older readers consult it through the record's
        ``marks=None`` sentinel.
        """
        with self._pin_mutex:
            marks = None if keep_marks else self.delete_bitmap.take_group(group.group_id)
            self._retired_groups = self._retired_groups + (
                RetiredGroup(
                    group=group,
                    created_epoch=self.directory.created_epoch(group.group_id),
                    retired_epoch=epoch,
                    marks=marks,
                ),
            )

    def _retire_delta(self, delta: DeltaStore, epoch: int) -> None:
        """Move a compressed-away delta store to the retired list."""
        with self._pin_mutex:
            self._retired_deltas = self._retired_deltas + (
                RetiredDelta(delta=delta, retired_epoch=epoch),
            )
            if delta.delta_id == self._open_delta_id:
                self._open_delta_id = None
            self._delta_stores.pop(delta.delta_id, None)

    def vacuum(self) -> dict[str, int]:
        """Free versions no registered reader can see.

        Drops retired row groups / delta stores whose retirement epoch is
        at or below the GC horizon (the oldest active reader epoch, or
        the current epoch when no reader is registered) and physically
        removes tombstoned delta rows past it. Purely a garbage pass:
        the current-state view is untouched, so no data version bump.
        """
        horizon = self.mvcc.horizon()
        with self._pin_mutex:
            keep_groups = tuple(
                r for r in self._retired_groups if r.retired_epoch > horizon
            )
            keep_deltas = tuple(
                r for r in self._retired_deltas if r.retired_epoch > horizon
            )
            freed_groups = len(self._retired_groups) - len(keep_groups)
            freed_deltas = len(self._retired_deltas) - len(keep_deltas)
            self._retired_groups = keep_groups
            self._retired_deltas = keep_deltas
        tombstones = sum(d.gc(horizon) for d in self.delta_stores())
        if freed_groups or freed_deltas:
            metrics.increment("mvcc.versions_gced", freed_groups + freed_deltas)
        return {
            "groups": freed_groups,
            "deltas": freed_deltas,
            "tombstones": tombstones,
        }

    @property
    def retired_counts(self) -> tuple[int, int]:
        """(retired row groups, retired delta stores) awaiting vacuum."""
        return len(self._retired_groups), len(self._retired_deltas)

    def rebuild(self) -> None:
        """REBUILD: recompress all live rows, dropping deleted ones.

        Models ``ALTER INDEX ... REBUILD``: delete-bitmap entries and delta
        stores are folded into fresh compressed row groups. The swap
        installs a new epoch — old groups and deltas are retired, not
        dropped, so snapshot readers pinned before the rebuild keep
        scanning the exact structures that were visible to them.
        """
        live_rows: list[tuple[Any, ...]] = list(self._iter_live_rows())
        with self.mvcc.installing() as epoch:
            for group in list(self.directory.row_groups()):
                self._retire_group(group, epoch)
                self.directory.remove_row_group(group.group_id)
            for delta in self.delta_stores():
                if delta.physical_row_count:
                    self._retire_delta(delta, epoch)
                else:
                    self.remove_delta_store(delta.delta_id)
            self._open_delta_id = None
            if live_rows:
                with self.directory.creating_at(epoch):
                    self.loader.load_rows(live_rows)
        self.vacuum()

    def archive(self) -> None:
        """Switch compressed row groups to archival compression.

        Each group is re-created at the installing epoch; the original
        object is retired with the ``marks=None`` sentinel (the group id
        — and hence its delete marks — stays live in the bitmap).
        """
        with self.mvcc.installing() as epoch:
            for group in list(self.directory.row_groups()):
                self._retire_group(group, epoch, keep_marks=True)
                self.directory.replace_row_group(group.to_archived(), epoch=epoch)
        self.vacuum()

    def unarchive(self) -> None:
        with self.mvcc.installing() as epoch:
            for group in list(self.directory.row_groups()):
                self._retire_group(group, epoch, keep_marks=True)
                self.directory.replace_row_group(group.to_unarchived(), epoch=epoch)
        self.vacuum()

    def iter_unit_rows(self, units: Iterable[ScanUnit]) -> Iterator[tuple[Any, ...]]:
        """Decode scan units back into Python row tuples (row-mode path)."""
        names = self.schema.names
        for unit in units:
            if unit.kind == GROUP:
                group = unit.group
                assert group is not None
                decoded = {name: group.decode_column(name) for name in names}
                for position in range(group.row_count):
                    if unit.deleted_mask is not None and unit.deleted_mask[position]:
                        continue
                    row = []
                    for name in names:
                        values, mask = decoded[name]
                        if mask is not None and mask[position]:
                            row.append(None)
                        else:
                            value = values[position]
                            row.append(value.item() if hasattr(value, "item") else value)
                    yield tuple(row)
            else:
                assert unit.delta is not None
                for _row_id, row in unit.delta.scan():
                    yield row

    def _iter_live_rows(self) -> Iterator[tuple[Any, ...]]:
        return self.iter_unit_rows(self.scan_units())
