"""The updatable columnstore index.

Combines every storage structure of the paper into one object:

* compressed **row groups** catalogued by a :class:`SegmentDirectory`,
* **delta stores** (B-tree row stores) absorbing trickle inserts,
* a **delete bitmap** marking deleted rows of compressed row groups,
* the **bulk loader** that turns large inserts straight into row groups.

Rows are addressed by :class:`RowLocator`: compressed rows by (row-group
id, position), delta rows by (delta-store id, row id). UPDATE is modelled
the way the paper does: delete + insert (see :meth:`ColumnStoreIndex.update`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..errors import StorageError
from ..observability import registry as metrics
from ..schema import TableSchema
from .config import StoreConfig
from .delete_bitmap import DeleteBitmap
from .deltastore import DeltaStore, FrozenDeltaView
from .directory import SegmentDirectory
from .loader import BulkLoader, rows_to_columns
from .rowgroup import RowGroup

GROUP = "group"
DELTA = "delta"


@dataclass(frozen=True)
class RowLocator:
    """A stable address of one live row inside the index."""

    kind: str  # GROUP or DELTA
    container_id: int  # row-group id or delta-store id
    position: int  # position within the row group, or delta row id


@dataclass
class ScanUnit:
    """One scannable unit handed to the execution engine.

    Either a compressed row group (with its current deleted-row mask) or a
    delta store. The executor turns each into column batches.
    """

    kind: str
    group: RowGroup | None = None
    deleted_mask: np.ndarray | None = None
    delta: DeltaStore | FrozenDeltaView | None = None

    @property
    def container_id(self) -> int:
        if self.kind == GROUP:
            assert self.group is not None
            return self.group.group_id
        assert self.delta is not None
        return self.delta.delta_id


class ColumnStoreIndex:
    """An updatable columnstore index over one table's rows."""

    def __init__(self, schema: TableSchema, config: StoreConfig | None = None) -> None:
        self.schema = schema
        self.config = config or StoreConfig()
        self.directory = SegmentDirectory(schema)
        self.loader = BulkLoader(schema, self.directory, self.config)
        self.delete_bitmap = DeleteBitmap()
        self.segment_cache = None
        if self.config.segment_cache_bytes > 0:
            from .cache import SegmentCache

            self.segment_cache = SegmentCache(self.config.segment_cache_bytes)
        self._delta_stores: dict[int, DeltaStore] = {}
        self._open_delta_id: int | None = None
        self._next_delta_id = 0
        self._next_row_id = 0

    # ------------------------------------------------------------------ #
    # Inserts
    # ------------------------------------------------------------------ #
    def _open_delta(self) -> DeltaStore:
        if self._open_delta_id is not None:
            return self._delta_stores[self._open_delta_id]
        delta = DeltaStore(self._next_delta_id, self.schema, self.config.btree_order)
        self._delta_stores[delta.delta_id] = delta
        self._open_delta_id = delta.delta_id
        self._next_delta_id += 1
        return delta

    def insert(self, row: tuple[Any, ...], txn=None) -> RowLocator:
        """Trickle-insert one physical row into the open delta store.

        With a transaction context, records an undo that removes the row
        and restores the allocator counters and delta open/close/creation
        transitions — rollback leaves the index structurally identical to
        its pre-insert state, so replayed locators stay valid.
        """
        created = self._open_delta_id is None
        delta = self._open_delta()
        row_id = self._next_row_id
        self._next_row_id += 1
        if txn is not None:
            txn.record(
                f"un-insert delta row {row_id} (delta {delta.delta_id})",
                lambda: self._undo_insert(delta.delta_id, row_id, created),
            )
        delta.insert(row_id, tuple(row))
        if delta.row_count >= self.config.effective_delta_close_rows:
            delta.close()
            self._open_delta_id = None
        return RowLocator(DELTA, delta.delta_id, row_id)

    def _undo_insert(self, delta_id: int, row_id: int, created: bool) -> None:
        delta = self._delta_stores.get(delta_id)
        if delta is None:
            raise StorageError(f"insert undo: delta store {delta_id} vanished")
        delta.delete(row_id)
        self._next_row_id = row_id
        if not delta.is_open:
            # This insert tripped the close threshold (later inserts of
            # the statement are already undone — they went elsewhere).
            delta.reopen()
            self._open_delta_id = delta_id
        if created:
            del self._delta_stores[delta_id]
            self._next_delta_id = delta_id
            self._open_delta_id = None

    def insert_many(self, rows: Iterable[tuple[Any, ...]], txn=None) -> list[RowLocator]:
        return [self.insert(row, txn) for row in rows]

    def bulk_load(self, rows: Sequence[tuple[Any, ...]], txn=None) -> None:
        """Insert many rows at once.

        At or above the bulk-load threshold the rows are compressed directly
        into row groups (the paper's bulk-insert path); below it they fall
        back to trickle inserts into the delta store.
        """
        if len(rows) >= self.config.bulk_load_threshold:
            if txn is not None:
                # Record before loading: a failure mid-load must also
                # withdraw any row groups the loader already registered.
                mark = (
                    self.directory.next_group_id,
                    {col.name: len(self.directory.global_dictionary(col.name))
                     for col in self.schema},
                )
                txn.record(
                    f"withdraw bulk-loaded row groups (ids >= {mark[0]})",
                    lambda: self._undo_bulk_load(mark),
                )
            self.loader.load_rows(rows)
        else:
            self.insert_many(rows, txn)

    def _undo_bulk_load(self, mark: tuple[int, dict[str, int]]) -> None:
        next_group_id, dict_lengths = mark
        for group in list(self.directory.row_groups()):
            if group.group_id >= next_group_id:
                self.directory.remove_row_group(group.group_id)
                self.delete_bitmap.forget_group(group.group_id)
        self.directory.rewind_group_ids(next_group_id)
        for column, length in dict_lengths.items():
            self.directory.global_dictionary(column).truncate(length)

    def bulk_load_columns(
        self,
        columns: dict[str, np.ndarray],
        null_masks: dict[str, np.ndarray | None] | None = None,
    ) -> None:
        """Columnar bulk load (always takes the direct-compress path)."""
        self.loader.load_columns(columns, null_masks)

    # ------------------------------------------------------------------ #
    # Deletes and updates
    # ------------------------------------------------------------------ #
    def delete(self, locator: RowLocator, txn=None) -> bool:
        """Delete one row; returns ``False`` if it was already gone."""
        if locator.kind == GROUP:
            group = self.directory.row_group(locator.container_id)
            if not 0 <= locator.position < group.row_count:
                raise StorageError(
                    f"position {locator.position} out of range for row group "
                    f"{locator.container_id}"
                )
            marked = self.delete_bitmap.mark(locator.container_id, locator.position)
            if marked and txn is not None:
                txn.record(
                    f"unmark deleted row {locator}",
                    lambda: self.delete_bitmap.unmark(
                        locator.container_id, locator.position
                    ),
                )
            return marked
        delta = self._delta_stores.get(locator.container_id)
        if delta is None:
            raise StorageError(f"unknown delta store {locator.container_id}")
        if txn is not None:
            values = delta.get(locator.position)
            if values is None:
                return False
            if not delta.delete(locator.position):  # pragma: no cover
                return False
            txn.record(
                f"restore delta row {locator}",
                lambda: delta.restore(locator.position, values),
            )
            return True
        return delta.delete(locator.position)

    def delete_many(self, locators: Iterable[RowLocator], txn=None) -> int:
        return sum(1 for locator in locators if self.delete(locator, txn))

    def update(self, locator: RowLocator, new_row: tuple[Any, ...]) -> RowLocator:
        """UPDATE = DELETE + INSERT, as in the paper."""
        if not self.delete(locator):
            raise StorageError(f"row {locator} is already deleted")
        return self.insert(new_row)

    def get_row(self, locator: RowLocator) -> tuple[Any, ...] | None:
        """Fetch one live row by locator (None if deleted/absent)."""
        if locator.kind == DELTA:
            delta = self._delta_stores.get(locator.container_id)
            return delta.get(locator.position) if delta is not None else None
        if self.delete_bitmap.is_deleted(locator.container_id, locator.position):
            return None
        group = self.directory.row_group(locator.container_id)
        row = []
        for col in self.schema:
            values, mask = group.decode_column(col.name)
            if mask is not None and mask[locator.position]:
                row.append(None)
            else:
                value = values[locator.position]
                row.append(value.item() if hasattr(value, "item") else value)
        return tuple(row)

    # ------------------------------------------------------------------ #
    # Scan interface
    # ------------------------------------------------------------------ #
    def decode_segment(self, group: RowGroup, column: str):
        """Decode one segment, through the decode cache when enabled."""
        metrics.increment("storage.segments.decode_requests")
        segment = group.segment(column)
        if self.segment_cache is not None:
            return self.segment_cache.decode(segment)
        return segment.decode()

    def scan_units(self) -> Iterator[ScanUnit]:
        """All scannable units: compressed groups first, then delta stores."""
        for group in self.directory.row_groups():
            yield ScanUnit(
                kind=GROUP,
                group=group,
                deleted_mask=self.delete_bitmap.mask_for(group.group_id, group.row_count),
            )
        for delta_id in sorted(self._delta_stores):
            delta = self._delta_stores[delta_id]
            if delta.row_count:
                yield ScanUnit(kind=DELTA, delta=delta)

    def pin_scan_units(self) -> list[ScanUnit]:
        """A snapshot-stable capture of :meth:`scan_units`.

        The concurrency layer calls this at statement start (while
        holding the read side of the database's session lock, so no
        writer is mutating) and then scans the returned units with **no
        lock held**. Everything reachable from the result is stable
        under concurrent DML and maintenance:

        * compressed row groups are immutable objects — the tuple mover,
          REBUILD and archival all swap *new* group objects into the
          directory, and the pinned references keep the old ones alive;
        * deleted-row masks are materialized here, so later delete-bitmap
          marks never show through mid-scan (the bitmap's ``version`` at
          pin time is recorded for assertions);
        * delta stores are frozen into columnar copies
          (:meth:`DeltaStore.freeze`) — the live B-trees keep absorbing
          trickle inserts without tearing the pinned view.
        """
        units: list[ScanUnit] = []
        for group in self.directory.row_groups():
            units.append(
                ScanUnit(
                    kind=GROUP,
                    group=group,
                    deleted_mask=self.delete_bitmap.mask_for(
                        group.group_id, group.row_count
                    ),
                )
            )
        for delta_id in sorted(self._delta_stores):
            delta = self._delta_stores[delta_id]
            if delta.row_count:
                units.append(ScanUnit(kind=DELTA, delta=delta.freeze()))
        metrics.increment("concurrency.snapshot_pins")
        return units

    def delta_stores(self) -> list[DeltaStore]:
        return [self._delta_stores[k] for k in sorted(self._delta_stores)]

    def closed_delta_stores(self) -> list[DeltaStore]:
        return [d for d in self.delta_stores() if not d.is_open and d.row_count]

    def remove_delta_store(self, delta_id: int) -> None:
        if delta_id == self._open_delta_id:
            self._open_delta_id = None
        self._delta_stores.pop(delta_id, None)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    @property
    def compressed_rows(self) -> int:
        return self.directory.total_rows

    @property
    def delta_rows(self) -> int:
        return sum(d.row_count for d in self._delta_stores.values())

    @property
    def live_rows(self) -> int:
        return self.compressed_rows - self.delete_bitmap.total_deleted + self.delta_rows

    @property
    def size_bytes(self) -> int:
        return (
            self.directory.encoded_size_bytes
            + sum(d.size_bytes for d in self._delta_stores.values())
            + self.delete_bitmap.size_bytes
        )

    @property
    def fraction_in_delta(self) -> float:
        live = self.live_rows
        return self.delta_rows / live if live else 0.0

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def close_open_delta(self) -> None:
        """Force-close the open delta store (e.g. before a tuple-mover run)."""
        if self._open_delta_id is not None:
            self._delta_stores[self._open_delta_id].close()
            self._open_delta_id = None

    def rebuild(self) -> None:
        """REBUILD: recompress all live rows, dropping deleted ones.

        Models ``ALTER INDEX ... REBUILD``: delete-bitmap entries and delta
        stores are folded into fresh compressed row groups.
        """
        live_rows: list[tuple[Any, ...]] = list(self._iter_live_rows())
        old_group_ids = [g.group_id for g in self.directory.row_groups()]
        for group_id in old_group_ids:
            self.directory.remove_row_group(group_id)
            self.delete_bitmap.forget_group(group_id)
        self._delta_stores.clear()
        self._open_delta_id = None
        if live_rows:
            self.loader.load_rows(live_rows)

    def archive(self) -> None:
        """Switch compressed row groups to archival compression."""
        for group in list(self.directory.row_groups()):
            self.directory.replace_row_group(group.to_archived())

    def unarchive(self) -> None:
        for group in list(self.directory.row_groups()):
            self.directory.replace_row_group(group.to_unarchived())

    def _iter_live_rows(self) -> Iterator[tuple[Any, ...]]:
        names = self.schema.names
        for unit in self.scan_units():
            if unit.kind == GROUP:
                group = unit.group
                assert group is not None
                decoded = {name: group.decode_column(name) for name in names}
                for position in range(group.row_count):
                    if unit.deleted_mask is not None and unit.deleted_mask[position]:
                        continue
                    row = []
                    for name in names:
                        values, mask = decoded[name]
                        if mask is not None and mask[position]:
                            row.append(None)
                        else:
                            value = values[position]
                            row.append(value.item() if hasattr(value, "item") else value)
                    yield tuple(row)
            else:
                assert unit.delta is not None
                for _row_id, row in unit.delta.scan():
                    yield row
