"""Small binary serializers used when archiving segments and dictionaries.

Only what the archival path needs: a length-prefixed encoding for value
lists (dictionary contents). Integers/floats/dates are 8-byte little-endian;
strings are varint-length-prefixed UTF-8.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from ..errors import EncodingError
from ..types import DataType, TypeKind


def write_varint(out: bytearray, value: int) -> None:
    """LEB128-style unsigned varint."""
    if value < 0:
        raise EncodingError(f"varint requires non-negative value, got {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_varint(payload: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(payload):
            raise EncodingError("truncated varint")
        byte = payload[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise EncodingError("malformed varint (too many continuation bytes)")


def serialize_values(values: Sequence[Any], dtype: DataType) -> bytes:
    """Serialize a list of physical values of one column type."""
    out = bytearray()
    write_varint(out, len(values))
    if dtype.kind is TypeKind.VARCHAR:
        for value in values:
            encoded = value.encode("utf-8")
            write_varint(out, len(encoded))
            out += encoded
    elif dtype.kind is TypeKind.FLOAT:
        for value in values:
            out += struct.pack("<d", float(value))
    else:
        for value in values:
            out += struct.pack("<q", int(value))
    return bytes(out)


def deserialize_values(payload: bytes, dtype: DataType) -> list[Any]:
    """Inverse of :func:`serialize_values`.

    Bounds-checked: truncated or bit-flipped payloads raise
    :class:`EncodingError` — never ``IndexError``/``struct.error`` — so
    corrupt blobs surface as structured storage errors.
    """
    count, pos = read_varint(payload, 0)
    values: list[Any] = []
    if dtype.kind is TypeKind.VARCHAR:
        for _ in range(count):
            length, pos = read_varint(payload, pos)
            if pos + length > len(payload):
                raise EncodingError(
                    f"truncated string payload: need {length} bytes at "
                    f"offset {pos}, have {len(payload) - pos}"
                )
            try:
                values.append(payload[pos : pos + length].decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise EncodingError(f"corrupt utf-8 string payload: {exc}") from exc
            pos += length
    else:
        fmt = "<d" if dtype.kind is TypeKind.FLOAT else "<q"
        if pos + 8 * count > len(payload):
            raise EncodingError(
                f"truncated value payload: need {8 * count} bytes at "
                f"offset {pos}, have {len(payload) - pos}"
            )
        for _ in range(count):
            values.append(struct.unpack_from(fmt, payload, pos)[0])
            pos += 8
    return values
