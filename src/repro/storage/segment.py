"""Column segments: the unit of columnar storage and compression.

One :class:`ColumnSegment` holds one column of one row group, compressed
independently, together with the metadata the scan uses for segment
elimination (min/max, row and null counts) — mirroring Section "Index
storage" of the paper. A segment can additionally be *archived*: its
payloads are run through the LZ77 codec (:mod:`repro.storage.xpress`) and
decompressed on access, modelling COLUMNSTORE_ARCHIVE.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import EncodingError
from ..types import DataType, TypeKind
from . import serde, value_encoding, xpress
from .dictionary import GlobalDictionary, LocalDictionary
from .encodings import (
    BitpackBlock,
    RawBlock,
    Scheme,
    StreamBlock,
    dictionary_pays_off,
    encode_stream,
    pack_null_mask,
    unpack_null_mask,
)
from .rle import RleBlock

_METADATA_OVERHEAD_BYTES = 64


@dataclass(frozen=True)
class ColumnSegment:
    """An immutable, compressed column of one row group."""

    dtype: DataType
    row_count: int
    scheme: Scheme
    stream: StreamBlock
    dictionary: LocalDictionary | None
    value_enc: value_encoding.ValueEncoding | None
    null_payload: bytes | None
    null_count: int
    min_value: Any
    max_value: Any
    raw_size_bytes: int
    archive: bytes | None = None  # xpress-compressed payloads when archived

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #
    @property
    def archived(self) -> bool:
        return self.archive is not None

    @property
    def encoded_size_bytes(self) -> int:
        """On-"disk" size of this segment, including dictionary and nulls."""
        if self.archive is not None:
            payload_size = len(self.archive)
        else:
            payload_size = self.stream.size_bytes
            if self.dictionary is not None:
                payload_size += self.dictionary.size_bytes
        null_size = len(self.null_payload) if self.null_payload else 0
        return payload_size + null_size + _METADATA_OVERHEAD_BYTES

    @property
    def compression_ratio(self) -> float:
        return self.raw_size_bytes / max(1, self.encoded_size_bytes)

    # ------------------------------------------------------------------ #
    # Metadata / segment elimination
    # ------------------------------------------------------------------ #
    def overlaps_range(self, low: Any, high: Any) -> bool:
        """Can any row of this segment satisfy ``low <= value <= high``?

        ``None`` bounds are unbounded. A segment that is entirely NULL can
        never satisfy a range predicate.
        """
        if self.min_value is None:
            return False
        if low is not None and self.max_value < low:
            return False
        if high is not None and self.min_value > high:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def null_mask(self) -> np.ndarray | None:
        """Boolean mask of NULL positions, or ``None`` when fully non-null."""
        if self.null_payload is None:
            return None
        return unpack_null_mask(self.null_payload, self.row_count)

    def codes(self) -> np.ndarray:
        """The integer stream (dict codes or value offsets), dtype uint64."""
        if self.scheme is Scheme.RAW:
            raise EncodingError("raw segments have no code stream")
        return self._live_stream().decode()

    def decode(self) -> tuple[np.ndarray, np.ndarray | None]:
        """Materialize (values, null_mask) in the column's physical dtype."""
        stream = self._live_stream()
        mask = self.null_mask()
        if self.scheme is Scheme.RAW:
            return stream.decode(), mask
        codes = stream.decode()
        if self.scheme is Scheme.DICT:
            dictionary = self._live_dictionary()
            if len(dictionary) == 0:
                # All-NULL segment: the code stream is filler zeros and
                # the dictionary is empty; emit filler values under the
                # (all-True) null mask.
                if self.dtype.kind is TypeKind.VARCHAR:
                    values = np.empty(self.row_count, dtype=object)
                    values[:] = [""] * self.row_count
                else:
                    values = np.zeros(self.row_count, dtype=self.dtype.numpy_dtype)
                return values, mask
            if self.dtype.kind is TypeKind.VARCHAR:
                values = dictionary.decode(codes)
            else:
                values = dictionary.decode_typed(codes, self.dtype.numpy_dtype)
            return values, mask
        assert self.value_enc is not None
        return self.value_enc.invert(codes, self.dtype.numpy_dtype), mask

    def live_dictionary(self) -> LocalDictionary:
        """The segment's dictionary with real values (decompresses archives).

        Used by the scan operator to evaluate predicates in encoded space:
        one evaluation per distinct value instead of one per row.
        """
        return self._live_dictionary()

    def _live_stream(self) -> StreamBlock:
        """The stream with real payload bytes, decompressing if archived."""
        if self.archive is None:
            return self.stream
        payloads, _dict_payload = _split_archive(xpress.decompress(self.archive))
        return _with_payloads(self.stream, payloads)

    def _live_dictionary(self) -> LocalDictionary:
        if self.dictionary is None:
            raise EncodingError("segment has no dictionary")
        if self.archive is None:
            return self.dictionary
        _payloads, dict_payload = _split_archive(xpress.decompress(self.archive))
        if dict_payload is None:
            return self.dictionary
        return LocalDictionary(serde.deserialize_values(dict_payload, self.dtype))

    # ------------------------------------------------------------------ #
    # Archival compression
    # ------------------------------------------------------------------ #
    def to_archived(self) -> "ColumnSegment":
        """Re-compress payloads with the archival codec (idempotent)."""
        if self.archive is not None:
            return self
        payloads = _collect_payloads(self.stream)
        dict_payload = (
            serde.serialize_values(self.dictionary.values, self.dtype)
            if self.dictionary is not None
            else None
        )
        blob = _join_archive(payloads, dict_payload)
        return dataclasses.replace(
            self,
            archive=xpress.compress(blob),
            stream=_with_payloads(self.stream, [b""] * len(payloads)),
        )

    def to_unarchived(self) -> "ColumnSegment":
        """Restore the plain (non-archival) representation."""
        if self.archive is None:
            return self
        payloads, dict_payload = _split_archive(xpress.decompress(self.archive))
        dictionary = self.dictionary
        if dict_payload is not None:
            dictionary = LocalDictionary(serde.deserialize_values(dict_payload, self.dtype))
        return dataclasses.replace(
            self,
            archive=None,
            stream=_with_payloads(self.stream, payloads),
            dictionary=dictionary,
        )


# ---------------------------------------------------------------------- #
# Archive payload plumbing
# ---------------------------------------------------------------------- #
def _collect_payloads(stream: StreamBlock) -> list[bytes]:
    if isinstance(stream, RleBlock):
        return [stream.value_payload, stream.length_payload]
    return [stream.payload]


def _with_payloads(stream: StreamBlock, payloads: list[bytes]) -> StreamBlock:
    if isinstance(stream, RleBlock):
        return dataclasses.replace(
            stream, value_payload=payloads[0], length_payload=payloads[1]
        )
    return dataclasses.replace(stream, payload=payloads[0])


def _join_archive(payloads: list[bytes], dict_payload: bytes | None) -> bytes:
    out = bytearray()
    parts = list(payloads)
    parts.append(dict_payload if dict_payload is not None else b"")
    serde.write_varint(out, len(payloads))
    serde.write_varint(out, 1 if dict_payload is not None else 0)
    for part in parts:
        serde.write_varint(out, len(part))
        out += part
    return bytes(out)


def _split_archive(blob: bytes) -> tuple[list[bytes], bytes | None]:
    n_payloads, pos = serde.read_varint(blob, 0)
    has_dict, pos = serde.read_varint(blob, pos)
    parts: list[bytes] = []
    for _ in range(n_payloads + 1):
        length, pos = serde.read_varint(blob, pos)
        parts.append(blob[pos : pos + length])
        pos += length
    trailing = parts.pop()
    dict_payload = trailing if has_dict else None
    return parts, dict_payload


# ---------------------------------------------------------------------- #
# Segment construction
# ---------------------------------------------------------------------- #
def encode_segment(
    dtype: DataType,
    values: np.ndarray,
    null_mask: np.ndarray | None = None,
    global_dict: GlobalDictionary | None = None,
) -> ColumnSegment:
    """Compress one column of one row group into a :class:`ColumnSegment`.

    ``values`` holds physical values (see :mod:`repro.types`); positions
    flagged in ``null_mask`` are ignored for statistics and dictionary
    construction. If a :class:`GlobalDictionary` is supplied, the segment's
    distinct values are interned into it (the paper's primary dictionary).
    """
    values = np.asarray(values)
    row_count = int(values.size)
    if null_mask is not None:
        null_mask = np.asarray(null_mask, dtype=bool)
        if null_mask.shape != (row_count,):
            raise EncodingError("null mask shape does not match values")
        if not null_mask.any():
            null_mask = None
    null_count = int(null_mask.sum()) if null_mask is not None else 0
    non_null = values[~null_mask] if null_mask is not None else values

    raw_size = _raw_size_bytes(dtype, values, null_mask)
    min_value, max_value = _min_max(dtype, non_null)

    if dtype.kind is TypeKind.VARCHAR:
        scheme, stream, dictionary, venc = _encode_strings(non_null, null_mask, row_count)
    elif dtype.kind is TypeKind.FLOAT:
        scheme, stream, dictionary, venc = _encode_floats(values, non_null, null_mask, row_count)
    else:
        scheme, stream, dictionary, venc = _encode_ints(values, non_null, null_mask, row_count)

    if global_dict is not None and dictionary is not None:
        global_dict.intern_all(dictionary.values)

    return ColumnSegment(
        dtype=dtype,
        row_count=row_count,
        scheme=scheme,
        stream=stream,
        dictionary=dictionary,
        value_enc=venc,
        null_payload=pack_null_mask(null_mask) if null_mask is not None else None,
        null_count=null_count,
        min_value=min_value,
        max_value=max_value,
        raw_size_bytes=raw_size,
    )


def _raw_size_bytes(
    dtype: DataType, values: np.ndarray, null_mask: np.ndarray | None
) -> int:
    if dtype.kind is TypeKind.VARCHAR:
        total = 0
        mask = null_mask if null_mask is not None else np.zeros(values.size, dtype=bool)
        for value, is_null in zip(values.tolist(), mask.tolist()):
            total += 2 if is_null else len(str(value).encode("utf-8")) + 2
        return total
    return int(values.size) * dtype.fixed_width_bytes


def _min_max(dtype: DataType, non_null: np.ndarray) -> tuple[Any, Any]:
    if non_null.size == 0:
        return None, None
    if dtype.kind is TypeKind.VARCHAR:
        lst = non_null.tolist()
        return min(lst), max(lst)
    if dtype.kind is TypeKind.FLOAT:
        return float(non_null.min()), float(non_null.max())
    if dtype.kind is TypeKind.BOOL:
        return bool(non_null.min()), bool(non_null.max())
    return int(non_null.min()), int(non_null.max())


def _fill_codes(
    codes_non_null: np.ndarray, null_mask: np.ndarray | None, row_count: int
) -> np.ndarray:
    """Scatter non-null codes into a full-length stream (nulls become 0)."""
    if null_mask is None:
        return codes_non_null
    full = np.zeros(row_count, dtype=np.int64)
    full[~null_mask] = codes_non_null
    return full


def _encode_strings(non_null, null_mask, row_count):
    dictionary, codes = LocalDictionary.build(non_null)
    stream = encode_stream(_fill_codes(codes, null_mask, row_count))
    return Scheme.DICT, stream, dictionary, None


def _encode_ints(values, non_null, null_mask, row_count):
    """Physical-int columns: choose dictionary vs value encoding by size."""
    venc = value_encoding.choose_integer_encoding(non_null.astype(np.int64))
    offsets = venc.apply(non_null.astype(np.int64)) if non_null.size else non_null.astype(np.uint64)
    offset_width = int(offsets.max()).bit_length() if offsets.size else 0
    ndv = int(np.unique(non_null).size) if non_null.size else 0
    if non_null.size and dictionary_pays_off(row_count, ndv, offset_width, 8):
        dictionary, codes = LocalDictionary.build(non_null.astype(np.int64))
        stream = encode_stream(_fill_codes(codes, null_mask, row_count))
        return Scheme.DICT, stream, dictionary, None
    stream = encode_stream(_fill_codes(offsets.astype(np.int64), null_mask, row_count))
    return Scheme.VALUE, stream, None, venc


def _encode_floats(values, non_null, null_mask, row_count):
    venc = value_encoding.choose_float_encoding(non_null.astype(np.float64))
    if venc is not None:
        offsets = (
            venc.apply(non_null.astype(np.float64))
            if non_null.size
            else np.zeros(0, dtype=np.uint64)
        )
        stream = encode_stream(_fill_codes(offsets.astype(np.int64), null_mask, row_count))
        return Scheme.VALUE, stream, None, venc
    ndv = int(np.unique(non_null).size) if non_null.size else 0
    if non_null.size and ndv <= row_count // 4 and dictionary_pays_off(row_count, ndv, 64, 8):
        dictionary, codes = LocalDictionary.build(non_null.astype(np.float64))
        stream = encode_stream(_fill_codes(codes, null_mask, row_count))
        return Scheme.DICT, stream, dictionary, None
    filled = values.astype(np.float64).copy()
    if null_mask is not None:
        filled[null_mask] = 0.0
    return Scheme.RAW, RawBlock.from_array(filled), None, None
