"""Row groups: horizontal partitions of a columnstore index.

A compressed row group holds about a million rows (configurable), stored as
one :class:`~repro.storage.segment.ColumnSegment` per column. Rows inside a
row group are addressed by position; together with the row-group id this
forms the row locator that the delete bitmap uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import StorageError
from ..schema import TableSchema
from .segment import ColumnSegment


@dataclass
class RowGroup:
    """A compressed row group: one segment per column, equal row counts."""

    group_id: int
    schema: TableSchema
    segments: dict[str, ColumnSegment] = field(default_factory=dict)

    def __post_init__(self) -> None:
        expected = {col.name for col in self.schema}
        if set(self.segments) != expected:
            missing = expected - set(self.segments)
            extra = set(self.segments) - expected
            raise StorageError(
                f"row group {self.group_id}: segments do not match schema "
                f"(missing {sorted(missing)}, extra {sorted(extra)})"
            )
        counts = {seg.row_count for seg in self.segments.values()}
        if len(counts) != 1:
            raise StorageError(
                f"row group {self.group_id}: unequal segment row counts {sorted(counts)}"
            )

    @property
    def row_count(self) -> int:
        return next(iter(self.segments.values())).row_count

    def segment(self, column: str) -> ColumnSegment:
        try:
            return self.segments[column]
        except KeyError:
            raise StorageError(
                f"row group {self.group_id} has no segment for column {column!r}"
            ) from None

    def decode_column(self, column: str) -> tuple[np.ndarray, np.ndarray | None]:
        """Materialize one column as (values, null_mask)."""
        return self.segment(column).decode()

    @property
    def encoded_size_bytes(self) -> int:
        return sum(seg.encoded_size_bytes for seg in self.segments.values())

    @property
    def raw_size_bytes(self) -> int:
        return sum(seg.raw_size_bytes for seg in self.segments.values())

    @property
    def archived(self) -> bool:
        return all(seg.archived for seg in self.segments.values())

    def to_archived(self) -> "RowGroup":
        """Archive every segment (COLUMNSTORE_ARCHIVE)."""
        return RowGroup(
            group_id=self.group_id,
            schema=self.schema,
            segments={name: seg.to_archived() for name, seg in self.segments.items()},
        )

    def to_unarchived(self) -> "RowGroup":
        return RowGroup(
            group_id=self.group_id,
            schema=self.schema,
            segments={name: seg.to_unarchived() for name, seg in self.segments.items()},
        )
