"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SqlSyntaxError

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "as", "and", "or", "not", "in", "like", "between", "is", "null",
    "join", "inner", "left", "right", "full", "outer", "on", "case",
    "when", "then",
    "else", "end", "distinct", "insert", "into", "values", "create",
    "table", "drop", "delete", "update", "set", "using", "asc", "desc",
    "true", "false", "exists", "explain", "analyze",
    "begin", "commit", "rollback", "start", "transaction", "work",
    "with", "recursive", "over", "partition",
    "union", "intersect", "except",
    "show", "kill",
}

# Multi-character operators first so they win over single-char prefixes.
OPERATORS = ["<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/", "%",
             "(", ")", ",", ".", ";"]


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | ident | number | string | op | eof
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.text == op


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL string; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql[i : i + 2] == "--":
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            text, i = _read_string(sql, i)
            tokens.append(Token("string", text, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            start = i
            while i < n and (sql[i].isdigit() or sql[i] == "."):
                i += 1
            if i < n and sql[i] in "eE":
                i += 1
                if i < n and sql[i] in "+-":
                    i += 1
                while i < n and sql[i].isdigit():
                    i += 1
            tokens.append(Token("number", sql[start:i], start))
            continue
        if ch.isalpha() or ch == "_" or ch == '"':
            if ch == '"':
                end = sql.find('"', i + 1)
                if end == -1:
                    raise SqlSyntaxError("unterminated quoted identifier", i)
                tokens.append(Token("ident", sql[i + 1 : end], i))
                i = end + 1
                continue
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            lower = word.lower()
            if lower in KEYWORDS:
                tokens.append(Token("keyword", lower, start))
            else:
                tokens.append(Token("ident", word, start))
            continue
        matched = False
        for op in OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token("op", "!=" if op == "<>" else op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", n))
    return tokens


def line_column(sql: str, position: int) -> tuple[int, int]:
    """1-based (line, column) of a character offset in ``sql``."""
    position = max(0, min(position, len(sql)))
    line = sql.count("\n", 0, position) + 1
    last_newline = sql.rfind("\n", 0, position)
    column = position - last_newline if last_newline != -1 else position + 1
    return line, column


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string with '' as the escape for a quote."""
    out = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", start)
