"""Binding: SQL ASTs → logical plans over the catalog.

Name resolution, implicit literal coercion (date strings and decimal
literals become their physical representations), aggregate extraction and
the single-namespace-per-stage discipline that keeps plan column names
unique (multi-table queries qualify columns as ``alias.column``).

Subqueries bind in two ways. Uncorrelated ones (scalar, ``IN``,
``EXISTS``) are planned and *executed once* at bind time through the
``executor`` callback, folding their result into the outer plan as a
literal / constant IN-list. Correlated ``EXISTS`` / ``IN`` predicates in
the WHERE clause are decorrelated into semi/anti-joins on their
correlation equalities. Non-recursive CTEs are inlined: every reference
re-binds the definition (the optimizer mutates plans in place, so shared
subtrees are not allowed).
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import BindingError
from ..exec import expressions as X
from ..exec.operators.hash_aggregate import COUNT_STAR, AggregateSpec
from ..exec.operators.window import RANKING_FUNCS, WindowSpec
from ..planner.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalWindow,
)
from ..types import BIGINT, FLOAT, DataType, TypeKind
from . import ast as A

_AGG_FUNCS = {"count", "sum", "min", "max", "avg"}
_WINDOW_AGG_FUNCS = {"count", "sum", "min", "max", "avg"}

# Executes a bound logical plan, returning physical-value tuples. Wired by
# the runner; binding statements with subqueries fails without one.
SubqueryExecutor = Callable[[LogicalNode], list[tuple]]


class _Namespace:
    """A resolution scope: visible names, their plan columns and types."""

    def __init__(self) -> None:
        # (qualifier, column) -> plan name; qualifier None = unqualified.
        self.qualified: dict[tuple[str, str], str] = {}
        self.unqualified: dict[str, list[str]] = {}
        self.dtypes: dict[str, DataType] = {}

    def add(self, qualifier: str | None, column: str, plan_name: str, dtype: DataType) -> None:
        if qualifier is not None:
            self.qualified[(qualifier.lower(), column.lower())] = plan_name
        self.unqualified.setdefault(column.lower(), []).append(plan_name)
        self.dtypes[plan_name] = dtype

    def resolve(self, ident: A.EIdent) -> str:
        if ident.qualifier is not None:
            key = (ident.qualifier.lower(), ident.name.lower())
            plan_name = self.qualified.get(key)
            if plan_name is None:
                raise BindingError(f"unknown column {ident.qualifier}.{ident.name}")
            return plan_name
        candidates = self.unqualified.get(ident.name.lower(), [])
        if not candidates:
            raise BindingError(f"unknown column {ident.name!r}")
        if len(set(candidates)) > 1:
            raise BindingError(f"ambiguous column {ident.name!r}: {sorted(set(candidates))}")
        return candidates[0]

    def dtype_of(self, plan_name: str) -> DataType:
        return self.dtypes[plan_name]


class Binder:
    """Binds one SELECT statement against a catalog."""

    def __init__(self, catalog, executor: SubqueryExecutor | None = None) -> None:
        self.catalog = catalog
        self.executor = executor
        # name -> (definition, CTEs visible to that definition). Each
        # reference re-binds the definition against its own snapshot, so
        # a CTE may use earlier CTEs but never itself (no recursion).
        self._ctes: dict[str, tuple[A.SelectStatement, dict]] = {}

    # ------------------------------------------------------------------ #
    # SELECT
    # ------------------------------------------------------------------ #
    def bind_select(self, stmt: A.SelectStatement) -> LogicalNode:
        outer_ctes = self._ctes
        if stmt.ctes:
            registry = dict(outer_ctes)
            local: set[str] = set()
            for name, definition in stmt.ctes:
                key = name.lower()
                if key in local:
                    raise BindingError(f"duplicate CTE name {name!r}")
                local.add(key)
                registry[key] = (definition, dict(registry))
            self._ctes = registry
        try:
            return self._bind_select_body(stmt)
        finally:
            self._ctes = outer_ctes

    def _bind_select_body(self, stmt: A.SelectStatement) -> LogicalNode:
        if stmt.from_table is None:
            raise BindingError("SELECT without FROM is not supported")
        plan, namespace = self._bind_from(stmt)

        self._reject_windows_in(stmt.where, "WHERE")
        self._reject_windows_in(stmt.having, "HAVING")
        for group_expr in stmt.group_by:
            self._reject_windows_in(group_expr, "GROUP BY")

        if stmt.where is not None:
            plan = self._bind_where(stmt.where, plan, namespace)

        window_lookup: dict[str, str] | None = None
        has_aggregates = self._contains_aggregate(stmt)
        has_windows = any(self._has_window(item.expr) for item in stmt.items)
        if has_windows and (has_aggregates or stmt.group_by):
            raise BindingError(
                "not supported: window functions mixed with GROUP BY / aggregates"
            )
        if has_aggregates or stmt.group_by:
            base = namespace
            plan, namespace, agg_lookup, group_lookup = self._bind_aggregate(
                stmt, plan, namespace
            )
            plan = self._bind_outputs(
                stmt, plan, namespace, agg_lookup, base=base, group_lookup=group_lookup
            )
        else:
            self._reject_aggregates_in(stmt.having, "HAVING without GROUP BY")
            if has_windows:
                plan, window_lookup = self._bind_windows(stmt, plan, namespace)
            plan = self._bind_outputs(
                stmt, plan, namespace, agg_lookup=None, group_lookup=window_lookup
            )

        if stmt.distinct:
            plan = LogicalAggregate(plan, list(plan.output_names()), [])
        if stmt.order_by:
            plan = self._bind_order_by(stmt, plan)
        if stmt.limit is not None:
            plan = LogicalLimit(plan, stmt.limit)
        return plan

    # ------------------------------------------------------------------ #
    # WHERE: plain conjuncts, uncorrelated subqueries, decorrelation
    # ------------------------------------------------------------------ #
    def _bind_where(
        self, where: A.SqlExpr, plan: LogicalNode, namespace: _Namespace
    ) -> LogicalNode:
        """Bind the WHERE clause conjunct by conjunct.

        EXISTS / IN-subquery conjuncts first try the uncorrelated path
        (bind + execute once); if that fails on name resolution they are
        decorrelated into a semi/anti-join on their correlation columns.
        """
        residual: list[X.Expr] = []
        for conjunct in _split_ast_conjuncts(where):
            node, flipped = _strip_not(conjunct)
            if isinstance(node, (A.EExists, A.EInSubquery)):
                negated = node.negated ^ flipped
                try:
                    residual.append(self._bind_scalar(conjunct, namespace))
                    continue
                except BindingError as error:
                    plan = self._decorrelate(node, negated, plan, namespace, error)
                    continue
            residual.append(self._bind_scalar(conjunct, namespace))
        if residual:
            predicate = residual[0]
            for extra in residual[1:]:
                predicate = X.And(predicate, extra)
            plan = LogicalFilter(plan, predicate)
        return plan

    def _decorrelate(
        self,
        node: A.EExists | A.EInSubquery,
        negated: bool,
        plan: LogicalNode,
        namespace: _Namespace,
        original_error: BindingError,
    ) -> LogicalNode:
        """Rewrite a correlated EXISTS / IN predicate as a semi/anti-join.

        Supported shape: a plain SELECT whose WHERE splits into conjuncts
        each either local to the subquery or an equality between an inner
        expression and one *outer* column. Anything else re-raises the
        uncorrelated path's error.
        """
        sub = node.select
        if (
            sub.from_table is None
            or sub.ctes
            or sub.group_by
            or sub.having is not None
            or sub.distinct
            or sub.order_by
            or sub.limit is not None
            or self._contains_aggregate(sub)
        ):
            raise original_error
        if isinstance(node, A.EInSubquery) and negated:
            raise BindingError(
                "not supported: correlated NOT IN subquery — rewrite as "
                "NOT EXISTS for well-defined NULL semantics"
            )

        inner_plan, inner_ns = self._bind_from(sub)
        inner_filters: list[X.Expr] = []
        computed: list[tuple[str, X.Expr]] = []
        pairs: list[tuple[str, str]] = []  # (outer column, inner column)

        def inner_column(bound: X.Expr) -> str:
            if isinstance(bound, X.Column):
                return bound.name
            name = f"__corr_{len(computed)}"
            computed.append((name, bound))
            return name

        conjuncts = _split_ast_conjuncts(sub.where) if sub.where is not None else []
        for conjunct in conjuncts:
            try:
                inner_filters.append(self._bind_scalar(conjunct, inner_ns))
                continue
            except BindingError:
                pass
            pair = self._correlation_pair(conjunct, namespace, inner_ns)
            if pair is None:
                raise BindingError(
                    f"unsupported correlated subquery predicate: {conjunct}"
                ) from original_error
            outer_col, inner_bound = pair
            pairs.append((outer_col, inner_column(inner_bound)))

        if isinstance(node, A.EInSubquery):
            if not isinstance(node.operand, A.EIdent):
                raise BindingError(
                    "correlated IN requires a plain column on the left-hand side"
                )
            outer_col = namespace.resolve(node.operand)
            if sub.star or len(sub.items) != 1:
                raise BindingError("IN subquery must select exactly one column")
            value_bound = self._bind_scalar(sub.items[0].expr, inner_ns)
            pairs.insert(0, (outer_col, inner_column(value_bound)))
        if not pairs:
            raise original_error

        if computed:
            passthrough = [(n, X.Column(n)) for n in inner_plan.output_names()]
            inner_plan = LogicalProject(inner_plan, passthrough + computed)
        if inner_filters:
            predicate = inner_filters[0]
            for extra in inner_filters[1:]:
                predicate = X.And(predicate, extra)
            inner_plan = LogicalFilter(inner_plan, predicate)
        return LogicalJoin(
            left=plan,
            right=inner_plan,
            left_keys=[outer for outer, _ in pairs],
            right_keys=[inner for _, inner in pairs],
            join_type="anti" if negated else "semi",
        )

    def _correlation_pair(
        self, conjunct: A.SqlExpr, outer_ns: _Namespace, inner_ns: _Namespace
    ) -> tuple[str, X.Expr] | None:
        """Match ``inner_expr = outer_column`` (either side order)."""
        if not isinstance(conjunct, A.EBinary) or conjunct.op != "=":
            return None
        for outer_side, inner_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(outer_side, A.EIdent):
                continue
            try:
                outer_col = outer_ns.resolve(outer_side)
            except BindingError:
                continue
            try:
                inner_bound = self._bind_scalar(inner_side, inner_ns)
            except BindingError:
                continue
            return outer_col, inner_bound
        return None

    # ------------------------------------------------------------------ #
    # FROM / JOIN
    # ------------------------------------------------------------------ #
    def _bind_from(self, stmt: A.SelectStatement) -> tuple[LogicalNode, _Namespace]:
        refs = [stmt.from_table] + [j.table for j in stmt.joins]
        aliases = [r.alias.lower() for r in refs]
        if len(set(aliases)) != len(aliases):
            raise BindingError(f"duplicate table aliases in FROM: {aliases}")
        multi = len(refs) > 1

        namespace = _Namespace()
        alias_tables: dict[str, Any] = {}

        def make_cte_scan(ref: A.TableRef) -> LogicalNode:
            # Inline the CTE: re-bind its definition (fresh plan per
            # reference — the optimizer mutates plans in place) against
            # the CTEs that were visible at its declaration.
            definition, snapshot = self._ctes[ref.table.lower()]
            saved = self._ctes
            self._ctes = snapshot
            try:
                subplan = self.bind_select(definition)
            finally:
                self._ctes = saved
            from ..planner.schema_infer import infer_output_dtypes

            dtypes = infer_output_dtypes(subplan, self.catalog)
            projections: list[tuple[str, X.Expr]] = []
            rename = False
            for label in subplan.output_names():
                plan_name = f"{ref.alias}.{label}" if multi else label
                rename = rename or plan_name != label
                projections.append((plan_name, X.Column(label)))
                namespace.add(ref.alias, label, plan_name, dtypes[label])
            if rename:
                return LogicalProject(subplan, projections)
            return subplan

        def make_scan(ref: A.TableRef) -> LogicalNode:
            if ref.table.lower() in self._ctes:
                return make_cte_scan(ref)
            table = self.catalog.table(ref.table)
            alias_tables[ref.alias.lower()] = table
            projections: dict[str, str] = {}
            for col in table.schema:
                plan_name = f"{ref.alias}.{col.name}" if multi else col.name
                projections[plan_name] = col.name
                namespace.add(ref.alias, col.name, plan_name, col.dtype)
            return LogicalScan(table=table.name, projections=projections)

        plan: LogicalNode = make_scan(stmt.from_table)
        bound_aliases = {stmt.from_table.alias.lower()}
        for join in stmt.joins:
            right_scan = make_scan(join.table)
            new_alias = join.table.alias.lower()
            left_keys: list[str] = []
            right_keys: list[str] = []
            for a, b in join.conditions:
                if a.qualifier is None or b.qualifier is None:
                    raise BindingError(
                        "join conditions must use qualified columns (alias.column)"
                    )
                sides = {a.qualifier.lower(): a, b.qualifier.lower(): b}
                if new_alias not in sides:
                    raise BindingError(
                        f"join condition {a}={b} does not reference {join.table.alias}"
                    )
                new_side = sides.pop(new_alias)
                other_alias, other_side = next(iter(sides.items()))
                if other_alias not in bound_aliases:
                    raise BindingError(
                        f"join condition {a}={b} references unbound table {other_alias!r}"
                    )
                left_keys.append(namespace.resolve(other_side))
                right_keys.append(namespace.resolve(new_side))
            plan = LogicalJoin(
                left=plan,
                right=right_scan,
                left_keys=left_keys,
                right_keys=right_keys,
                join_type=join.join_type,
            )
            bound_aliases.add(new_alias)
        return plan, namespace

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def _contains_aggregate(self, stmt: A.SelectStatement) -> bool:
        exprs = [item.expr for item in stmt.items]
        if stmt.having is not None:
            exprs.append(stmt.having)
        return any(self._has_agg(e) for e in exprs)

    def _has_agg(self, expr: A.SqlExpr) -> bool:
        if isinstance(expr, A.EFunc) and expr.name in _AGG_FUNCS:
            return True
        for child in _ast_children(expr):
            if self._has_agg(child):
                return True
        return False

    def _reject_aggregates_in(self, expr: A.SqlExpr | None, context: str) -> None:
        if expr is not None and self._has_agg(expr):
            raise BindingError(f"aggregate not allowed here: {context}")

    def _bind_aggregate(
        self, stmt: A.SelectStatement, plan: LogicalNode, namespace: _Namespace
    ) -> tuple[LogicalNode, _Namespace, dict[str, str], dict[str, str]]:
        # Group keys: plain columns use their plan name; computed
        # expressions (and select-alias references) are pre-projected.
        alias_map = {
            item.alias.lower(): item.expr
            for item in stmt.items
            if item.alias is not None
        }
        group_keys: list[str] = []
        computed: list[tuple[str, X.Expr]] = []
        group_ast_keys: dict[str, str] = {}  # canonical AST -> key name
        for index, group_expr in enumerate(stmt.group_by):
            if isinstance(group_expr, A.EIdent) and group_expr.qualifier is None:
                alias_target = alias_map.get(group_expr.name.lower())
                try:
                    plan_name = namespace.resolve(group_expr)
                except BindingError:
                    if alias_target is None:
                        raise
                    # GROUP BY <select alias>: group by the aliased expression.
                    group_expr = alias_target
                else:
                    group_keys.append(plan_name)
                    group_ast_keys[_canonical(group_expr, namespace)] = plan_name
                    continue
            if isinstance(group_expr, A.EIdent):
                plan_name = namespace.resolve(group_expr)
                group_keys.append(plan_name)
                group_ast_keys[_canonical(group_expr, namespace)] = plan_name
            else:
                bound = self._bind_scalar(group_expr, namespace)
                name = f"__group_{index}"
                computed.append((name, bound))
                group_keys.append(name)
                group_ast_keys[_canonical(group_expr, namespace)] = name
        # Gather every aggregate call in SELECT/HAVING before deciding the
        # aggregation layout (plain one-level vs two-level for DISTINCT).
        calls: list[dict] = []
        sources = [item.expr for item in stmt.items]
        if stmt.having is not None:
            sources.append(stmt.having)
        for expr in sources:
            self._collect_agg_calls(expr, namespace, calls)

        distinct_calls = [c for c in calls if c["distinct"]]
        specs: list[AggregateSpec] = []
        agg_lookup: dict[str, str] = {}  # canonical call -> output name
        distinct_projection: list[tuple[str, X.Expr]] = []

        if distinct_calls:
            plain = [c for c in calls if not c["distinct"]]
            arg_keys = {c["arg_key"] for c in distinct_calls}
            if plain or len(arg_keys) != 1:
                raise BindingError(
                    "DISTINCT aggregates must all share one argument and "
                    "cannot mix with non-DISTINCT aggregates"
                )
            # Two-level plan: dedup on (group keys, arg), then aggregate
            # the deduplicated values.
            dname = "__distinct_0"
            bound_arg = self._bind_scalar(distinct_calls[0]["arg_ast"], namespace)
            distinct_projection.append((dname, bound_arg))
            namespace.dtypes[dname] = bound_arg.infer_dtype(namespace.dtype_of)
            taken: set[str] = set()
            for call in distinct_calls:
                name = _unique_name(f"{call['func']}", taken)
                taken.add(name)
                specs.append(AggregateSpec(call["func"], X.Column(dname), name))
                agg_lookup[call["canonical"]] = name
                for alias in call["aliases"]:
                    agg_lookup[alias] = name
        else:
            taken = set()
            for call in calls:
                if call["canonical"] in agg_lookup:
                    continue
                if call["func"] == COUNT_STAR:
                    name = _unique_name("count", taken)
                    specs.append(AggregateSpec(COUNT_STAR, None, name))
                else:
                    bound = self._bind_scalar(call["arg_ast"], namespace)
                    name = _unique_name(call["func"], taken)
                    specs.append(AggregateSpec(call["func"], bound, name))
                taken.add(name)
                agg_lookup[call["canonical"]] = name
                for alias in call["aliases"]:
                    agg_lookup[alias] = name

        if computed or distinct_projection:
            passthrough = [
                (name, X.Column(name)) for name in plan.output_names()
            ]
            plan = LogicalProject(plan, passthrough + computed + distinct_projection)
            for name, bound in computed:
                namespace.dtypes[name] = bound.infer_dtype(namespace.dtype_of)

        if distinct_calls:
            dname = distinct_projection[0][0]
            dedup = LogicalAggregate(plan, [*group_keys, dname], [])
            plan = LogicalAggregate(dedup, group_keys, specs)
        else:
            plan = LogicalAggregate(plan, group_keys, specs)

        post = _Namespace()
        for key in group_keys:
            post.add(None, key, key, namespace.dtype_of(key))
            # Keep qualified resolution working for group keys like "c.region".
            if "." in key:
                qualifier, column = key.split(".", 1)
                post.qualified[(qualifier.lower(), column.lower())] = key
                post.unqualified.setdefault(column.lower(), []).append(key)
        for spec in specs:
            post.add(None, spec.name, spec.name, _agg_dtype(spec, namespace))

        if stmt.having is not None:
            having = self._bind_scalar(
                stmt.having,
                post,
                agg_lookup=agg_lookup,
                base=namespace,
                group_lookup=group_ast_keys,
            )
            plan = LogicalFilter(plan, having)
        return plan, post, agg_lookup, group_ast_keys

    def _collect_agg_calls(
        self,
        expr: A.SqlExpr,
        namespace: _Namespace,
        calls: list[dict],
    ) -> None:
        """Record every aggregate call (func, arg AST, DISTINCT flag)."""
        if isinstance(expr, A.EFunc) and expr.name in _AGG_FUNCS:
            canonical = _canonical(expr, namespace)
            if any(c["canonical"] == canonical for c in calls):
                return
            if expr.star:
                calls.append(
                    {
                        "canonical": canonical,
                        "func": COUNT_STAR,
                        "arg_ast": None,
                        "arg_key": "*",
                        "distinct": False,
                        "aliases": [],
                    }
                )
                return
            if len(expr.args) != 1:
                raise BindingError(f"{expr.name} takes exactly one argument")
            self._reject_aggregates_in(expr.args[0], "nested aggregate")
            aliases: list[str] = []
            if expr.distinct and expr.name in ("min", "max"):
                # DISTINCT is a no-op for MIN/MAX; normalize but keep the
                # original canonical as an alias so select items using
                # the DISTINCT spelling still resolve.
                aliases.append(canonical)
                expr = A.EFunc(expr.name, expr.args, distinct=False)
                canonical = _canonical(expr, namespace)
                if any(c["canonical"] == canonical for c in calls):
                    for call in calls:
                        if call["canonical"] == canonical:
                            call["aliases"].extend(aliases)
                    return
            calls.append(
                {
                    "canonical": canonical,
                    "func": expr.name,
                    "arg_ast": expr.args[0],
                    "arg_key": _canonical(expr.args[0], namespace),
                    "distinct": expr.distinct,
                    "aliases": aliases,
                }
            )
            return
        for child in _ast_children(expr):
            self._collect_agg_calls(child, namespace, calls)

    # ------------------------------------------------------------------ #
    # Output projection, ORDER BY
    # ------------------------------------------------------------------ #
    def _bind_outputs(
        self,
        stmt: A.SelectStatement,
        plan: LogicalNode,
        namespace: _Namespace,
        agg_lookup: dict[str, str] | None,
        base: _Namespace | None = None,
        group_lookup: dict[str, str] | None = None,
    ) -> LogicalNode:
        if stmt.star:
            if agg_lookup is not None:
                raise BindingError("SELECT * cannot be combined with GROUP BY")
            projections = [(name, X.Column(name)) for name in plan.output_names()]
            labels = [name.split(".")[-1] for name, _ in projections]
            labels = _dedupe(labels)
            return LogicalProject(plan, [(label, expr) for label, (_, expr) in zip(labels, projections)])

        projections: list[tuple[str, X.Expr]] = []
        labels: list[str] = []
        for index, item in enumerate(stmt.items):
            bound = self._bind_scalar(
                item.expr,
                namespace,
                agg_lookup=agg_lookup,
                base=base,
                group_lookup=group_lookup,
            )
            if item.alias:
                label = item.alias
            elif isinstance(item.expr, A.EIdent):
                label = item.expr.name
            elif isinstance(item.expr, (A.EFunc, A.EWindow)):
                label = item.expr.name if isinstance(item.expr, A.EFunc) else item.expr.func
            else:
                label = f"col{index}"
            labels.append(label)
            projections.append((label, bound))
            # In aggregate queries, bare columns must be group keys; the
            # namespace only holds keys and agg outputs so resolution
            # itself enforces this.
        labels = _dedupe(labels)
        return LogicalProject(plan, [(label, expr) for label, (_, expr) in zip(labels, projections)])

    def _bind_order_by(self, stmt: A.SelectStatement, plan: LogicalNode) -> LogicalNode:
        outputs = plan.output_names()
        keys: list[tuple[str, bool]] = []
        for expr, descending in stmt.order_by:
            if isinstance(expr, A.ELiteral) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(outputs):
                    raise BindingError(f"ORDER BY position {position} out of range")
                keys.append((outputs[position - 1], descending))
            elif isinstance(expr, A.EIdent):
                # Output labels are unqualified, so "ORDER BY c.region"
                # matches the output labelled "region".
                matches = [name for name in outputs if name.lower() == expr.name.lower()]
                if not matches:
                    raise BindingError(
                        f"ORDER BY column {expr.name!r} is not in the select list"
                    )
                keys.append((matches[0], descending))
            elif isinstance(expr, A.EFunc):
                raise BindingError(
                    "ORDER BY expressions must appear in the select list; "
                    "alias the aggregate and order by the alias"
                )
            else:
                raise BindingError("unsupported ORDER BY expression")
        return LogicalSort(plan, keys)

    # ------------------------------------------------------------------ #
    # Window functions
    # ------------------------------------------------------------------ #
    def _has_window(self, expr: A.SqlExpr) -> bool:
        if isinstance(expr, A.EWindow):
            return True
        return any(self._has_window(child) for child in _ast_children(expr))

    def _reject_windows_in(self, expr: A.SqlExpr | None, context: str) -> None:
        if expr is not None and self._has_window(expr):
            raise BindingError(
                f"window functions are only allowed in the select list, not {context}"
            )

    def _bind_windows(
        self, stmt: A.SelectStatement, plan: LogicalNode, namespace: _Namespace
    ) -> tuple[LogicalNode, dict[str, str]]:
        """Plan every window call in the select list.

        Computed partition/order/argument expressions are pre-projected
        (like aggregate arguments); each distinct call becomes one
        :class:`WindowSpec` whose output the select items reference
        through the canonical-expression lookup.
        """
        calls: list[A.EWindow] = []
        for item in stmt.items:
            self._collect_windows(item.expr, calls)
        for expr, _ in stmt.order_by:
            self._reject_windows_in(expr, "ORDER BY")

        computed: list[tuple[str, X.Expr]] = []
        taken = set(plan.output_names())
        specs: list[WindowSpec] = []
        lookup: dict[str, str] = {}

        def column_for(expr: A.SqlExpr, prefix: str) -> str:
            if isinstance(expr, A.EIdent):
                return namespace.resolve(expr)
            bound = self._bind_scalar(expr, namespace)
            name = _unique_name(prefix, taken)
            taken.add(name)
            computed.append((name, bound))
            namespace.dtypes[name] = self._dtype_of(bound, namespace) or BIGINT
            return name

        for index, call in enumerate(calls):
            canonical = _canonical(call, namespace)
            if canonical in lookup:
                continue
            func = COUNT_STAR if call.star else call.func
            arg: str | None = None
            if func in _WINDOW_AGG_FUNCS:
                if len(call.args) != 1:
                    raise BindingError(f"window {call.func} takes exactly one argument")
                self._reject_aggregates_in(call.args[0], "window argument")
                arg = column_for(call.args[0], f"__win_arg_{index}")
            elif call.args:
                raise BindingError(f"window {call.func} takes no arguments")
            partition = tuple(
                column_for(expr, f"__win_part_{index}_{i}")
                for i, expr in enumerate(call.partition_by)
            )
            order = tuple(
                (column_for(expr, f"__win_ord_{index}_{i}"), descending)
                for i, (expr, descending) in enumerate(call.order_by)
            )
            out_name = _unique_name(f"__win_{index}", taken)
            taken.add(out_name)
            spec = WindowSpec(func, arg, partition, order, out_name)
            specs.append(spec)
            lookup[canonical] = out_name
            namespace.dtypes[out_name] = _window_dtype(spec, namespace)

        if computed:
            passthrough = [(n, X.Column(n)) for n in plan.output_names()]
            plan = LogicalProject(plan, passthrough + computed)
        return LogicalWindow(plan, specs), lookup

    def _collect_windows(self, expr: A.SqlExpr, calls: list[A.EWindow]) -> None:
        if isinstance(expr, A.EWindow):
            calls.append(expr)
            for child in expr.args:
                self._reject_windows_in(child, "a window argument")
            return
        for child in _ast_children(expr):
            self._collect_windows(child, calls)

    # ------------------------------------------------------------------ #
    # Uncorrelated subquery execution
    # ------------------------------------------------------------------ #
    def _execute_subquery(self, plan: LogicalNode) -> list[tuple]:
        if self.executor is None:
            raise BindingError(
                "subqueries require an execution context (no executor wired)"
            )
        return self.executor(plan)

    def _scalar_subquery(self, select: A.SelectStatement) -> X.Expr:
        from ..planner.schema_infer import infer_output_dtypes

        plan = self.bind_select(select)
        names = plan.output_names()
        if len(names) != 1:
            raise BindingError("scalar subquery must return exactly one column")
        dtype = infer_output_dtypes(plan, self.catalog)[names[0]]
        rows = self._execute_subquery(plan)
        if len(rows) > 1:
            raise BindingError("scalar subquery returned more than one row")
        value = rows[0][0] if rows else None
        return X.Literal(value, dtype)

    def _exists_subquery(self, select: A.SelectStatement, negated: bool) -> X.Expr:
        plan = LogicalLimit(self.bind_select(select), 1)
        rows = self._execute_subquery(plan)
        return X.Literal(bool(rows) != negated)

    def _in_subquery(
        self, node: A.EInSubquery, operand: X.Expr
    ) -> X.Expr:
        plan = self.bind_select(node.select)
        names = plan.output_names()
        if len(names) != 1:
            raise BindingError("IN subquery must select exactly one column")
        raw = [row[0] for row in self._execute_subquery(plan)]
        values = [v for v in raw if v is not None]
        bound = X.InList(operand, values, has_null=len(values) != len(raw))
        return X.Not(bound) if node.negated else bound

    # ------------------------------------------------------------------ #
    # Scalar expression binding
    # ------------------------------------------------------------------ #
    def _bind_scalar(
        self,
        expr: A.SqlExpr,
        namespace: _Namespace,
        agg_lookup: dict[str, str] | None = None,
        base: _Namespace | None = None,
        group_lookup: dict[str, str] | None = None,
    ) -> X.Expr:
        """Bind a scalar expression in ``namespace``.

        With ``agg_lookup`` set (post-aggregate contexts), aggregate calls
        resolve to their output columns; ``base`` is the pre-aggregate
        namespace used to canonicalize those calls; ``group_lookup`` maps
        canonical grouping expressions to their key columns so select
        items can repeat a computed GROUP BY expression.
        """
        canon_ns = base if base is not None else namespace

        def bind(node: A.SqlExpr) -> X.Expr:
            if group_lookup is not None:
                key_name = group_lookup.get(_canonical(node, canon_ns))
                if key_name is not None:
                    return X.Column(key_name)
            if agg_lookup is not None and isinstance(node, A.EFunc) and node.name in _AGG_FUNCS:
                key = _canonical(node, canon_ns)
                name = agg_lookup.get(key)
                if name is None:
                    raise BindingError(f"aggregate {node} was not collected")
                return X.Column(name)
            if isinstance(node, A.EIdent):
                return X.Column(namespace.resolve(node))
            if isinstance(node, A.ELiteral):
                return X.Literal(node.value)
            if isinstance(node, A.EBinary):
                return self._bind_binary(node, bind, namespace)
            if isinstance(node, A.EUnary):
                if node.op == "not":
                    return X.Not(bind(node.operand))
                raise BindingError(f"unsupported unary operator {node.op!r}")
            if isinstance(node, A.EFunc):
                if node.name in _AGG_FUNCS:
                    raise BindingError(f"aggregate {node.name} is not allowed here")
                try:
                    return X.FunctionCall(node.name, *[bind(a) for a in node.args])
                except X.ExecutionError as exc:
                    raise BindingError(str(exc)) from exc
            if isinstance(node, A.ECase):
                branches = [(bind(c), bind(v)) for c, v in node.branches]
                default = bind(node.default) if node.default is not None else None
                return X.Case(branches, default)
            if isinstance(node, A.EBetween):
                bound = X.Between(
                    bind(node.operand),
                    self._coerced(bind(node.operand), bind(node.low), namespace),
                    self._coerced(bind(node.operand), bind(node.high), namespace),
                )
                return X.Not(bound) if node.negated else bound
            if isinstance(node, A.EIn):
                operand = bind(node.operand)
                values = [self._coerce_value(operand, v, namespace) for v in node.values]
                bound = X.InList(operand, values)
                return X.Not(bound) if node.negated else bound
            if isinstance(node, A.ELike):
                return X.Like(bind(node.operand), node.pattern, node.negated)
            if isinstance(node, A.EIsNull):
                return X.IsNull(bind(node.operand), node.negated)
            if isinstance(node, A.ESubquery):
                return self._scalar_subquery(node.select)
            if isinstance(node, A.EExists):
                return self._exists_subquery(node.select, node.negated)
            if isinstance(node, A.EInSubquery):
                return self._in_subquery(node, bind(node.operand))
            if isinstance(node, A.EWindow):
                raise BindingError(
                    "window functions are only allowed in the select list"
                )
            raise BindingError(f"unsupported expression {type(node).__name__}")

        return bind(expr)

    def _bind_binary(self, node: A.EBinary, bind, namespace: _Namespace) -> X.Expr:
        if node.op == "and":
            return X.And(bind(node.left), bind(node.right))
        if node.op == "or":
            return X.Or(bind(node.left), bind(node.right))
        left = bind(node.left)
        right = bind(node.right)
        if node.op in ("=", "!=", "<", "<=", ">", ">="):
            left2, right2 = self._coerce_pair(left, right, namespace)
            return X.Comparison(node.op, left2, right2)
        if node.op in ("+", "-"):
            left2, right2 = self._coerce_pair(left, right, namespace)
            # Mixed-scale decimal addition descales to float; same-scale
            # stays exact in the scaled-integer representation.
            ld = self._dtype_of(left2, namespace)
            rd = self._dtype_of(right2, namespace)
            if _is_scaled(ld) or _is_scaled(rd):
                if not (ld == rd):
                    left2 = self._descale(left2, ld)
                    right2 = self._descale(right2, rd)
            return X.Arithmetic(node.op, left2, right2)
        if node.op in ("*", "/", "%"):
            # Scaled decimals entering multiplicative arithmetic are
            # descaled to floats so values (not scaled ints) combine.
            left = self._descale(left, self._dtype_of(left, namespace))
            right = self._descale(right, self._dtype_of(right, namespace))
            return X.Arithmetic(node.op, left, right)
        raise BindingError(f"unsupported operator {node.op!r}")

    def _descale(self, expr: X.Expr, dtype: DataType | None) -> X.Expr:
        """Convert a scaled-decimal expression to its float value."""
        if not _is_scaled(dtype):
            return expr
        return X.Arithmetic("/", expr, X.Literal(float(10**dtype.scale)))

    # Implicit coercion: date strings and decimal literals become physical.
    def _coerce_pair(
        self, left: X.Expr, right: X.Expr, namespace: _Namespace
    ) -> tuple[X.Expr, X.Expr]:
        if isinstance(right, X.Literal) and not isinstance(left, X.Literal):
            return left, self._coerced(left, right, namespace)
        if isinstance(left, X.Literal) and not isinstance(right, X.Literal):
            return self._coerced(right, left, namespace), right
        return left, right

    def _coerced(self, target: X.Expr, literal: X.Expr, namespace: _Namespace) -> X.Expr:
        if not isinstance(literal, X.Literal) or literal.value is None:
            return literal
        dtype = self._dtype_of(target, namespace)
        if dtype is None:
            return literal
        if literal.dtype is not None and literal.dtype.kind is dtype.kind:
            # Already physical (e.g. a scalar-subquery result): coercing
            # again would double-scale decimals / re-parse dates.
            return literal
        if dtype.kind in (TypeKind.DATE, TypeKind.DECIMAL):
            try:
                return X.Literal(dtype.coerce(literal.value), dtype)
            except Exception as exc:  # keep the binder error domain
                raise BindingError(
                    f"cannot coerce literal {literal.value!r} to {dtype}: {exc}"
                ) from exc
        return literal

    def _coerce_value(self, target: X.Expr, value: Any, namespace: _Namespace) -> Any:
        if value is None:
            return None
        dtype = self._dtype_of(target, namespace)
        if dtype is not None and dtype.kind in (TypeKind.DATE, TypeKind.DECIMAL):
            return dtype.coerce(value)
        return value

    def _dtype_of(self, expr: X.Expr, namespace: _Namespace) -> DataType | None:
        try:
            return expr.infer_dtype(namespace.dtype_of)
        except Exception:
            return None


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #
def _ast_children(expr: A.SqlExpr) -> list[A.SqlExpr]:
    if isinstance(expr, A.EBinary):
        return [expr.left, expr.right]
    if isinstance(expr, A.EUnary):
        return [expr.operand]
    if isinstance(expr, A.EFunc):
        return list(expr.args)
    if isinstance(expr, A.ECase):
        out: list[A.SqlExpr] = []
        for c, v in expr.branches:
            out.extend((c, v))
        if expr.default is not None:
            out.append(expr.default)
        return out
    if isinstance(expr, (A.EBetween,)):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, (A.EIn, A.ELike, A.EIsNull)):
        return [expr.operand]
    if isinstance(expr, A.EWindow):
        out = list(expr.args)
        out.extend(expr.partition_by)
        out.extend(e for e, _ in expr.order_by)
        return out
    # Subquery selects are separate scopes — walks (aggregate/window
    # detection) must not descend into them; only the IN operand is ours.
    if isinstance(expr, A.EInSubquery):
        return [expr.operand]
    if isinstance(expr, (A.ESubquery, A.EExists)):
        return []
    return []


def _split_ast_conjuncts(expr: A.SqlExpr) -> list[A.SqlExpr]:
    """Flatten a WHERE tree over top-level ANDs."""
    if isinstance(expr, A.EBinary) and expr.op == "and":
        return _split_ast_conjuncts(expr.left) + _split_ast_conjuncts(expr.right)
    return [expr]


def _strip_not(expr: A.SqlExpr) -> tuple[A.SqlExpr, bool]:
    """Peel NOT wrappers; returns (inner expression, negation flipped)."""
    flipped = False
    while isinstance(expr, A.EUnary) and expr.op == "not":
        expr = expr.operand
        flipped = not flipped
    return expr, flipped


def _canonical(expr: A.SqlExpr, namespace: _Namespace) -> str:
    """A resolution-aware canonical string for matching repeated ASTs."""
    if isinstance(expr, A.EIdent):
        try:
            return f"col:{namespace.resolve(expr)}"
        except BindingError:
            return f"ident:{expr.qualifier}.{expr.name}"
    if isinstance(expr, A.ELiteral):
        return f"lit:{expr.value!r}"
    if isinstance(expr, A.EFunc):
        inner = ",".join(_canonical(a, namespace) for a in expr.args)
        star = "*" if expr.star else inner
        distinct = "D:" if expr.distinct else ""
        return f"fn:{expr.name}({distinct}{star})"
    if isinstance(expr, A.EBinary):
        return f"({_canonical(expr.left, namespace)}{expr.op}{_canonical(expr.right, namespace)})"
    if isinstance(expr, A.EUnary):
        return f"{expr.op}({_canonical(expr.operand, namespace)})"
    if isinstance(expr, A.EBetween):
        return (
            f"between({_canonical(expr.operand, namespace)},"
            f"{_canonical(expr.low, namespace)},{_canonical(expr.high, namespace)},{expr.negated})"
        )
    if isinstance(expr, A.EIn):
        return f"in({_canonical(expr.operand, namespace)},{expr.values!r},{expr.negated})"
    if isinstance(expr, A.ELike):
        return f"like({_canonical(expr.operand, namespace)},{expr.pattern!r},{expr.negated})"
    if isinstance(expr, A.EIsNull):
        return f"isnull({_canonical(expr.operand, namespace)},{expr.negated})"
    if isinstance(expr, A.ECase):
        parts = [
            f"{_canonical(c, namespace)}:{_canonical(v, namespace)}"
            for c, v in expr.branches
        ]
        if expr.default is not None:
            parts.append(_canonical(expr.default, namespace))
        return "case(" + ";".join(parts) + ")"
    if isinstance(expr, A.EWindow):
        inner = "*" if expr.star else ",".join(
            _canonical(a, namespace) for a in expr.args
        )
        partition = ",".join(_canonical(p, namespace) for p in expr.partition_by)
        order = ",".join(
            f"{_canonical(e, namespace)}:{d}" for e, d in expr.order_by
        )
        return f"win:{expr.func}({inner})p[{partition}]o[{order}]"
    return repr(expr)


def _unique_name(base: str, taken: set[str]) -> str:
    if base not in taken:
        return base
    index = 2
    while f"{base}_{index}" in taken:
        index += 1
    return f"{base}_{index}"


def _dedupe(labels: list[str]) -> list[str]:
    seen: dict[str, int] = {}
    out = []
    for label in labels:
        if label in seen:
            seen[label] += 1
            out.append(f"{label}_{seen[label]}")
        else:
            seen[label] = 1
            out.append(label)
    return out


def _agg_dtype(spec: AggregateSpec, namespace: _Namespace) -> DataType:
    if spec.func in (COUNT_STAR, "count"):
        return BIGINT
    arg = spec.expr.infer_dtype(namespace.dtype_of)
    if spec.func in ("min", "max"):
        return arg
    if spec.func == "sum":
        return BIGINT if arg.kind is TypeKind.INT else arg
    if arg.kind is TypeKind.DECIMAL:
        return arg
    return FLOAT


def _window_dtype(spec: WindowSpec, namespace: _Namespace) -> DataType:
    if spec.func in RANKING_FUNCS or spec.func in (COUNT_STAR, "count"):
        return BIGINT
    arg = namespace.dtype_of(spec.arg)
    if spec.func in ("min", "max"):
        return arg
    if spec.func == "sum":
        return BIGINT if arg.kind is TypeKind.INT else arg
    if arg.kind is TypeKind.DECIMAL:
        return arg
    return FLOAT


def _is_scaled(dtype: DataType | None) -> bool:
    return dtype is not None and dtype.kind is TypeKind.DECIMAL and dtype.scale > 0
