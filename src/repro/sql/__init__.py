"""SQL frontend: lexer, parser, binder and statement runner.

Supports the analytic SQL subset the paper's workloads use: CREATE TABLE
(with storage options), INSERT ... VALUES, bulk-friendly multi-row
inserts, DELETE/UPDATE with predicates, and SELECT with inner/left joins,
WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, DISTINCT, CASE, BETWEEN, IN,
LIKE and the scalar functions of :mod:`repro.exec.expressions`.
"""

from .parser import parse_statement
from .runner import run_statement

__all__ = ["parse_statement", "run_statement"]
