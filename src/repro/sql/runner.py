"""Statement execution: dispatches parsed SQL against a Database."""

from __future__ import annotations

from typing import Any

from ..errors import BindingError, SqlSyntaxError
from ..exec import expressions as X
from ..planner.logical import LogicalNode
from ..schema import ColumnDef, TableSchema
from ..types import BIGINT, BOOL, DATE, FLOAT, INT, VARCHAR, DataType, decimal, varchar
from . import ast as A
from .binder import Binder, _Namespace
from .parser import parse_statement

_TYPE_CONSTRUCTORS = {
    "int": lambda params: INT,
    "integer": lambda params: INT,
    "bigint": lambda params: BIGINT,
    "float": lambda params: FLOAT,
    "double": lambda params: FLOAT,
    "real": lambda params: FLOAT,
    "date": lambda params: DATE,
    "bool": lambda params: BOOL,
    "boolean": lambda params: BOOL,
    "varchar": lambda params: varchar(params[0]) if params else VARCHAR,
    "text": lambda params: VARCHAR,
    "string": lambda params: VARCHAR,
    "decimal": lambda params: decimal(params[1] if len(params) > 1 else 0),
    "numeric": lambda params: decimal(params[1] if len(params) > 1 else 0),
}


def run_statement(db, sql: str, **options: Any):
    """Parse and execute one SQL statement against ``db``.

    Queries return a Result; DML returns a Result with a single
    ``rows_affected`` value; DDL returns None.
    """
    return run_parsed(db, parse_statement(sql), **options)


def make_binder(db) -> Binder:
    """A binder wired to execute uncorrelated subqueries against ``db``."""
    return Binder(db.catalog, executor=lambda plan: list(db.compile(plan).rows()))


def run_parsed(db, statement: Any, **options: Any):
    """Execute an already-parsed statement against ``db``.

    The concurrency layer parses first (outside any lock) to classify
    the statement as read/write/txn-control, then dispatches here —
    splitting parse from dispatch avoids parsing twice.
    """
    if isinstance(statement, A.SelectStatement):
        plan = make_binder(db).bind_select(statement)
        return db.execute(plan, **options)
    if isinstance(statement, A.ExplainStatement):
        return _run_explain(db, statement, **options)
    if isinstance(statement, A.CreateTableStatement):
        _run_create_table(db, statement)
        return None
    if isinstance(statement, A.DropTableStatement):
        db.drop_table(statement.table)
        return None
    if isinstance(statement, A.InsertStatement):
        return _affected(db, _run_insert(db, statement))
    if isinstance(statement, A.DeleteStatement):
        predicate = _bind_table_predicate(db, statement.table, statement.where)
        return _affected(db, db.delete_where(statement.table, predicate))
    if isinstance(statement, A.UpdateStatement):
        return _run_update(db, statement)
    if isinstance(statement, A.BeginStatement):
        db.begin()
        return None
    if isinstance(statement, A.CommitStatement):
        db.commit()
        return None
    if isinstance(statement, A.RollbackStatement):
        db.rollback()
        return None
    if isinstance(statement, A.SetStatement):
        db.set_setting(statement.name, statement.value)
        return None
    if isinstance(statement, A.ShowStatement):
        return _run_show(db, statement)
    if isinstance(statement, A.KillStatement):
        return _run_kill(db, statement)
    raise SqlSyntaxError(f"unsupported statement {type(statement).__name__}")


def plan_query(db, sql: str) -> LogicalNode:
    """Parse + bind a SELECT (or EXPLAIN-wrapped SELECT) for EXPLAIN."""
    statement = parse_statement(sql)
    if isinstance(statement, A.ExplainStatement):
        statement = statement.select
    if not isinstance(statement, A.SelectStatement):
        raise SqlSyntaxError("EXPLAIN expects a SELECT statement")
    return make_binder(db).bind_select(statement)


def _run_explain(db, statement: A.ExplainStatement, **options: Any):
    """EXPLAIN / EXPLAIN ANALYZE: plan text as a one-column result."""
    from ..db.database import Result

    options.pop("stats", None)  # ANALYZE decides collection itself
    plan = make_binder(db).bind_select(statement.select)
    if statement.analyze:
        text = db.explain_analyze(plan, **options)
    else:
        text = db.explain(plan, **options)
    return Result(
        columns=["plan"],
        dtypes=[VARCHAR],
        rows=[(line,) for line in text.split("\n")],
    )


def _affected(db, count: int):
    from ..db.database import Result

    return Result(columns=["rows_affected"], dtypes=[BIGINT], rows=[(count,)])


def _run_show(db, statement: A.ShowStatement):
    """``SHOW QUERIES`` (registry listing) or ``SHOW <setting>``."""
    from ..db.database import Result
    from ..governance import get_query_registry

    if statement.name == "queries":
        rows = []
        for ctx in get_query_registry().list_running():
            info = ctx.describe()
            rows.append(
                (
                    info["query_id"],
                    info["session"] or "",
                    info["state"],
                    float(info["elapsed_ms"]),
                    info["timeout_ms"] if info["timeout_ms"] is not None else 0,
                    info["reserved_bytes"],
                    info["sql"],
                    # MVCC snapshot epoch of a lock-free read (0 =
                    # not reading from a pinned snapshot). Appended
                    # last so positional consumers stay valid.
                    info["epoch"] if info["epoch"] is not None else 0,
                )
            )
        return Result(
            columns=[
                "query_id",
                "session",
                "state",
                "elapsed_ms",
                "timeout_ms",
                "reserved_bytes",
                "sql",
                "epoch",
            ],
            dtypes=[BIGINT, VARCHAR, VARCHAR, FLOAT, BIGINT, BIGINT, VARCHAR, BIGINT],
            rows=rows,
        )
    value = db.get_setting(statement.name)
    return Result(
        columns=[statement.name],
        dtypes=[BIGINT],
        rows=[(value if value is not None else 0,)],
    )


def _run_kill(db, statement: A.KillStatement):
    """``KILL <id>``: returns 1 row with killed=1/0 (0 = not running)."""
    from ..db.database import Result
    from ..governance import get_query_registry

    killed = get_query_registry().kill(statement.query_id)
    return Result(columns=["killed"], dtypes=[BIGINT], rows=[(int(killed),)])


def _run_create_table(db, statement: A.CreateTableStatement) -> None:
    columns = []
    for name, type_name, params, nullable in statement.columns:
        constructor = _TYPE_CONSTRUCTORS.get(type_name)
        if constructor is None:
            raise SqlSyntaxError(f"unknown type {type_name!r}")
        columns.append(ColumnDef(name, constructor(params), nullable))
    storage = statement.storage or "columnstore"
    db.create_table(statement.table, TableSchema(columns), storage=storage)


def _run_insert(db, statement: A.InsertStatement) -> int:
    table = db.table(statement.table)
    schema = table.schema
    if statement.columns is None:
        positions = list(range(len(schema)))
    else:
        positions = [schema.position(c) for c in statement.columns]
    rows = []
    for value_exprs in statement.rows:
        if len(value_exprs) != len(positions):
            raise BindingError(
                f"INSERT row has {len(value_exprs)} values for {len(positions)} columns"
            )
        row: list[Any] = [None] * len(schema)
        for position, expr in zip(positions, value_exprs):
            row[position] = _constant_value(expr)
        rows.append(tuple(row))
    return db.insert(statement.table, rows)


def _constant_value(expr: A.SqlExpr) -> Any:
    """Evaluate a constant VALUES expression (literals and arithmetic)."""
    if isinstance(expr, A.ELiteral):
        return expr.value
    if isinstance(expr, A.EBinary) and expr.op in ("+", "-", "*", "/", "%"):
        bound = X.Arithmetic(
            expr.op,
            X.Literal(_constant_value(expr.left)),
            X.Literal(_constant_value(expr.right)),
        )
        return bound.eval_row({})
    raise BindingError(f"INSERT values must be constants, got {expr}")


def _table_namespace(db, table_name: str) -> _Namespace:
    table = db.table(table_name)
    namespace = _Namespace()
    for col in table.schema:
        namespace.add(table.name, col.name, col.name, col.dtype)
    return namespace


def _bind_table_predicate(db, table_name: str, where: A.SqlExpr | None):
    if where is None:
        return None
    binder = make_binder(db)
    return binder._bind_scalar(where, _table_namespace(db, table_name))


def _run_update(db, statement: A.UpdateStatement):
    binder = make_binder(db)
    namespace = _table_namespace(db, statement.table)
    table = db.table(statement.table)
    assignments: dict[str, X.Expr] = {}
    for column, expr in statement.assignments:
        dtype: DataType = table.schema.dtype(column)
        if isinstance(expr, A.ELiteral):
            # Literals coerce to the target column's physical form.
            assignments[column] = X.Literal(
                dtype.coerce(expr.value) if expr.value is not None else None, dtype
            )
        else:
            assignments[column] = binder._bind_scalar(expr, namespace)
    predicate = (
        binder._bind_scalar(statement.where, namespace)
        if statement.where is not None
        else None
    )
    return _affected(db, db.update_where(statement.table, assignments, predicate))
