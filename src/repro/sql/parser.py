"""Recursive-descent SQL parser."""

from __future__ import annotations

from typing import Any

from ..errors import SqlSyntaxError
from .ast import (
    BeginStatement,
    CommitStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    EBetween,
    EBinary,
    ECase,
    EExists,
    EFunc,
    EIdent,
    EIn,
    EInSubquery,
    EIsNull,
    ELike,
    ELiteral,
    ESubquery,
    EUnary,
    EWindow,
    ExplainStatement,
    InsertStatement,
    JoinClause,
    KillStatement,
    RollbackStatement,
    SelectItem,
    SelectStatement,
    SetStatement,
    ShowStatement,
    SqlExpr,
    TableRef,
    UpdateStatement,
)
from .lexer import Token, line_column, tokenize

_AGGREGATE_FUNCS = {"count", "sum", "min", "max", "avg"}
_WINDOW_FUNCS = {"row_number", "rank", "dense_rank", "count", "sum", "min", "max", "avg"}
_SET_OPERATIONS = {"union", "intersect", "except"}


class Parser:
    """One-pass recursive-descent parser over the token stream."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        try:
            self.tokens = tokenize(sql)
        except SqlSyntaxError as exc:
            if exc.position is None:
                raise
            line, column = line_column(sql, exc.position)
            # Re-raise with line/column context; the original message
            # carries an "(at offset N)" suffix we rebuild without.
            raise SqlSyntaxError(
                str(exc).rsplit(" (at offset", 1)[0],
                position=exc.position,
                line=line,
                column=column,
            ) from None
        self.pos = 0

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def _error(self, message: str, token: Token) -> SqlSyntaxError:
        """A syntax error pointing at ``token`` with line/column context."""
        line, column = line_column(self.sql, token.position)
        return SqlSyntaxError(message, position=token.position, line=line, column=column)

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        token = self.advance()
        if not token.is_keyword(word):
            raise self._error(f"expected {word.upper()}, got {token.text!r}", token)

    def accept_op(self, op: str) -> bool:
        if self.peek().is_op(op):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        token = self.advance()
        if not token.is_op(op):
            raise self._error(f"expected {op!r}, got {token.text!r}", token)

    def expect_ident(self) -> str:
        token = self.advance()
        if token.kind != "ident":
            raise self._error(f"expected identifier, got {token.text!r}", token)
        return token.text

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def parse_statement(self):
        token = self.peek()
        if token.is_keyword("explain"):
            statement = self.parse_explain()
        elif token.is_keyword("select"):
            statement = self.parse_select()
        elif token.is_keyword("with"):
            statement = self.parse_with()
        elif token.is_keyword("insert"):
            statement = self.parse_insert()
        elif token.is_keyword("create"):
            statement = self.parse_create_table()
        elif token.is_keyword("drop"):
            statement = self.parse_drop_table()
        elif token.is_keyword("delete"):
            statement = self.parse_delete()
        elif token.is_keyword("update"):
            statement = self.parse_update()
        elif token.is_keyword("begin") or token.is_keyword("start"):
            statement = self.parse_begin()
        elif token.is_keyword("commit"):
            statement = self.parse_txn_end("commit", CommitStatement)
        elif token.is_keyword("rollback"):
            statement = self.parse_txn_end("rollback", RollbackStatement)
        elif token.is_keyword("set"):
            statement = self.parse_set()
        elif token.is_keyword("show"):
            statement = self.parse_show()
        elif token.is_keyword("kill"):
            statement = self.parse_kill()
        else:
            raise self._error(f"unexpected token {token.text!r}", token)
        self.accept_op(";")
        tail = self.peek()
        if tail.kind != "eof":
            raise self._error(f"trailing input {tail.text!r}", tail)
        return statement

    def parse_set(self) -> SetStatement:
        """``SET <name> = <int>`` / ``SET <name> TO <int>``.

        The value may be an integer literal, or DEFAULT / OFF / NULL to
        clear the setting (parsed as None).
        """
        self.expect_keyword("set")
        name = self.expect_ident().lower()
        # "TO" is not a reserved word; accept it as an ident alternative
        # to "=" the way PostgreSQL does.
        token = self.peek()
        if token.kind == "ident" and token.text.lower() == "to":
            self.advance()
        else:
            self.expect_op("=")
        token = self.advance()
        if token.kind == "number" and "." not in token.text:
            return SetStatement(name=name, value=int(token.text))
        if token.is_keyword("null") or (
            token.kind == "ident" and token.text.lower() in ("default", "off")
        ):
            return SetStatement(name=name, value=None)
        raise self._error(
            "SET expects an integer value, DEFAULT, or OFF", token
        )

    def parse_show(self) -> ShowStatement:
        """``SHOW QUERIES`` or ``SHOW <setting>``."""
        self.expect_keyword("show")
        return ShowStatement(name=self.expect_ident().lower())

    def parse_kill(self) -> KillStatement:
        """``KILL <query_id>``."""
        self.expect_keyword("kill")
        token = self.advance()
        if token.kind != "number" or "." in token.text:
            raise self._error("KILL expects an integer query id", token)
        return KillStatement(query_id=int(token.text))

    def parse_begin(self) -> BeginStatement:
        """``BEGIN [TRANSACTION | WORK]`` or ``START TRANSACTION``."""
        if self.accept_keyword("start"):
            self.expect_keyword("transaction")
        else:
            self.expect_keyword("begin")
            if not self.accept_keyword("transaction"):
                self.accept_keyword("work")
        return BeginStatement()

    def parse_txn_end(self, word: str, node_cls):
        """``COMMIT`` / ``ROLLBACK``, optionally ``TRANSACTION | WORK``."""
        self.expect_keyword(word)
        if not self.accept_keyword("transaction"):
            self.accept_keyword("work")
        return node_cls()

    def parse_explain(self) -> ExplainStatement:
        """``EXPLAIN [ANALYZE] <select>``."""
        self.expect_keyword("explain")
        analyze = self.accept_keyword("analyze")
        token = self.peek()
        if token.is_keyword("with"):
            return ExplainStatement(self.parse_with(), analyze=analyze)
        if not token.is_keyword("select"):
            raise self._error(
                f"EXPLAIN expects a SELECT statement, got {token.text!r}", token
            )
        return ExplainStatement(self.parse_select(), analyze=analyze)

    def parse_with(self) -> SelectStatement:
        """``WITH name AS (select) [, ...] SELECT ...`` — non-recursive."""
        self.expect_keyword("with")
        token = self.peek()
        if token.is_keyword("recursive"):
            raise self._error(
                "not supported: RECURSIVE common table expressions", token
            )
        ctes = [self._cte()]
        while self.accept_op(","):
            ctes.append(self._cte())
        token = self.peek()
        if not token.is_keyword("select"):
            raise self._error(
                f"expected SELECT after WITH clause, got {token.text!r}", token
            )
        statement = self.parse_select()
        statement.ctes = ctes
        return statement

    def _cte(self) -> tuple[str, SelectStatement]:
        name = self.expect_ident()
        self.expect_keyword("as")
        self.expect_op("(")
        token = self.peek()
        if token.is_keyword("with"):
            raise self._error("not supported: WITH nested inside a CTE body", token)
        if not token.is_keyword("select"):
            raise self._error(
                f"expected SELECT in CTE body, got {token.text!r}", token
            )
        select = self.parse_select()
        self.expect_op(")")
        return name, select

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        star = False
        items: list[SelectItem] = []
        if self.accept_op("*"):
            star = True
        else:
            items.append(self._select_item())
            while self.accept_op(","):
                items.append(self._select_item())
        from_table = None
        joins: list[JoinClause] = []
        if self.accept_keyword("from"):
            from_table = self._table_ref()
            while True:
                join_type = None
                if self.accept_keyword("inner"):
                    join_type = "inner"
                    self.expect_keyword("join")
                elif self.accept_keyword("left"):
                    self.accept_keyword("outer")
                    join_type = "left"
                    self.expect_keyword("join")
                elif self.accept_keyword("right"):
                    self.accept_keyword("outer")
                    join_type = "right"
                    self.expect_keyword("join")
                elif self.accept_keyword("full"):
                    self.accept_keyword("outer")
                    join_type = "full"
                    self.expect_keyword("join")
                elif self.accept_keyword("join"):
                    join_type = "inner"
                else:
                    break
                table = self._table_ref()
                self.expect_keyword("on")
                conditions = self._join_conditions()
                joins.append(JoinClause(table, join_type, conditions))
        where = self.parse_expr() if self.accept_keyword("where") else None
        group_by: list[SqlExpr] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self.accept_keyword("having") else None
        order_by: list[tuple[SqlExpr, bool]] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())
        limit = None
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.kind != "number" or "." in token.text:
                raise self._error("LIMIT expects an integer", token)
            limit = int(token.text)
        tail = self.peek()
        if tail.kind == "keyword" and tail.text in _SET_OPERATIONS:
            raise self._error(
                f"not supported: {tail.text.upper()} (set operations)", tail
            )
        return SelectStatement(
            items=items,
            star=star,
            from_table=from_table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.advance().text
        return SelectItem(expr, alias)

    def _table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = name
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.peek().kind == "ident":
            alias = self.advance().text
        return TableRef(name, alias)

    def _join_conditions(self) -> list[tuple[EIdent, EIdent]]:
        conditions = [self._join_equality()]
        while self.accept_keyword("and"):
            conditions.append(self._join_equality())
        return conditions

    def _join_equality(self) -> tuple[EIdent, EIdent]:
        left = self._qualified_ident()
        self.expect_op("=")
        right = self._qualified_ident()
        return left, right

    def _qualified_ident(self) -> EIdent:
        token = self.advance()
        if token.kind != "ident":
            raise self._error(
                f"expected identifier in join condition, got {token.text!r}", token
            )
        if self.accept_op("."):
            column = self.expect_ident()
            return EIdent(column, qualifier=token.text)
        return EIdent(token.text)

    def _order_item(self) -> tuple[SqlExpr, bool]:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return expr, descending

    # ------------------------------------------------------------------ #
    # Other statements
    # ------------------------------------------------------------------ #
    def parse_insert(self) -> InsertStatement:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_ident()
        columns = None
        if self.accept_op("("):
            columns = [self.expect_ident()]
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        self.expect_keyword("values")
        rows = [self._value_tuple()]
        while self.accept_op(","):
            rows.append(self._value_tuple())
        return InsertStatement(table, columns, rows)

    def _value_tuple(self) -> list[SqlExpr]:
        self.expect_op("(")
        values = [self.parse_expr()]
        while self.accept_op(","):
            values.append(self.parse_expr())
        self.expect_op(")")
        return values

    def parse_create_table(self) -> CreateTableStatement:
        self.expect_keyword("create")
        self.expect_keyword("table")
        table = self.expect_ident()
        self.expect_op("(")
        columns = [self._column_def()]
        while self.accept_op(","):
            columns.append(self._column_def())
        self.expect_op(")")
        storage = None
        if self.accept_keyword("using"):
            storage = self.expect_ident().lower()
        return CreateTableStatement(table, columns, storage)

    def _column_def(self) -> tuple[str, str, list[int], bool]:
        name = self.expect_ident()
        type_token = self.advance()
        if type_token.kind != "ident":
            raise self._error(
                f"expected a type name, got {type_token.text!r}", type_token
            )
        type_name = type_token.text.lower()
        params: list[int] = []
        if self.accept_op("("):
            while True:
                number = self.advance()
                if number.kind != "number":
                    raise self._error("expected numeric type parameter", number)
                params.append(int(number.text))
                if not self.accept_op(","):
                    break
            self.expect_op(")")
        nullable = True
        if self.accept_keyword("not"):
            self.expect_keyword("null")
            nullable = False
        elif self.accept_keyword("null"):
            nullable = True
        return name, type_name, params, nullable

    def parse_drop_table(self) -> DropTableStatement:
        self.expect_keyword("drop")
        self.expect_keyword("table")
        return DropTableStatement(self.expect_ident())

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("where") else None
        return DeleteStatement(table, where)

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("update")
        table = self.expect_ident()
        self.expect_keyword("set")
        assignments = [self._assignment()]
        while self.accept_op(","):
            assignments.append(self._assignment())
        where = self.parse_expr() if self.accept_keyword("where") else None
        return UpdateStatement(table, assignments, where)

    def _assignment(self) -> tuple[str, SqlExpr]:
        column = self.expect_ident()
        self.expect_op("=")
        return column, self.parse_expr()

    # ------------------------------------------------------------------ #
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------ #
    def parse_expr(self) -> SqlExpr:
        return self._or_expr()

    def _or_expr(self) -> SqlExpr:
        left = self._and_expr()
        while self.accept_keyword("or"):
            left = EBinary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> SqlExpr:
        left = self._not_expr()
        while self.accept_keyword("and"):
            left = EBinary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> SqlExpr:
        if self.peek().is_keyword("not") and self.peek(1).is_keyword("exists"):
            self.advance()
            self.advance()
            return self._exists_tail(negated=True)
        if self.accept_keyword("not"):
            return EUnary("not", self._not_expr())
        return self._comparison()

    def _exists_tail(self, negated: bool) -> EExists:
        """Parse ``(SELECT ...)`` after an EXISTS keyword."""
        self.expect_op("(")
        token = self.peek()
        if not token.is_keyword("select"):
            raise self._error(
                f"EXISTS expects a subquery, got {token.text!r}", token
            )
        select = self.parse_select()
        self.expect_op(")")
        return EExists(select, negated=negated)

    def _comparison(self) -> SqlExpr:
        left = self._additive()
        token = self.peek()
        if token.kind == "op" and token.text in ("=", "!=", "<", "<=", ">", ">="):
            self.advance()
            return EBinary(token.text, left, self._additive())
        negated = False
        if token.is_keyword("not"):
            nxt = self.peek(1)
            if nxt.is_keyword("between") or nxt.is_keyword("in") or nxt.is_keyword("like"):
                self.advance()
                negated = True
                token = self.peek()
        if token.is_keyword("between"):
            self.advance()
            low = self._additive()
            self.expect_keyword("and")
            high = self._additive()
            return EBetween(left, low, high, negated)
        if token.is_keyword("in"):
            self.advance()
            self.expect_op("(")
            if self.peek().is_keyword("select"):
                select = self.parse_select()
                self.expect_op(")")
                return EInSubquery(left, select, negated)
            values = [self._literal_value()]
            while self.accept_op(","):
                values.append(self._literal_value())
            self.expect_op(")")
            return EIn(left, values, negated)
        if token.is_keyword("like"):
            self.advance()
            pattern = self.advance()
            if pattern.kind != "string":
                raise self._error("LIKE expects a string pattern", pattern)
            return ELike(left, pattern.text, negated)
        if token.is_keyword("is"):
            self.advance()
            is_not = self.accept_keyword("not")
            self.expect_keyword("null")
            return EIsNull(left, is_not)
        return left

    def _literal_value(self) -> Any:
        token = self.advance()
        if token.kind == "string":
            return token.text
        if token.kind == "number":
            return _parse_number(token.text)
        if token.is_keyword("null"):
            return None
        if token.is_keyword("true"):
            return True
        if token.is_keyword("false"):
            return False
        if token.is_op("-") and self.peek().kind == "number":
            return -_parse_number(self.advance().text)
        raise self._error(f"expected a literal, got {token.text!r}", token)

    def _additive(self) -> SqlExpr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self.advance()
                left = EBinary(token.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> SqlExpr:
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "/", "%"):
                self.advance()
                left = EBinary(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> SqlExpr:
        if self.accept_op("-"):
            operand = self._unary()
            if isinstance(operand, ELiteral) and isinstance(operand.value, (int, float)):
                return ELiteral(-operand.value)
            return EBinary("-", ELiteral(0), operand)
        return self._primary()

    def _primary(self) -> SqlExpr:
        token = self.advance()
        if token.kind == "number":
            return ELiteral(_parse_number(token.text))
        if token.kind == "string":
            return ELiteral(token.text)
        if token.is_keyword("null"):
            return ELiteral(None)
        if token.is_keyword("true"):
            return ELiteral(True)
        if token.is_keyword("false"):
            return ELiteral(False)
        if token.is_op("("):
            if self.peek().is_keyword("select"):
                select = self.parse_select()
                self.expect_op(")")
                return ESubquery(select)
            if self.peek().is_keyword("with"):
                raise self._error(
                    "not supported: WITH inside a subquery — declare CTEs at the "
                    "top level",
                    self.peek(),
                )
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.is_keyword("exists"):
            return self._exists_tail(negated=False)
        if token.is_keyword("case"):
            return self._case_tail()
        if token.kind == "ident":
            if self.peek().is_op("("):
                call = self._function_call(token.text)
                if self.peek().is_keyword("over"):
                    self.advance()
                    return self._window_tail(call)
                return call
            if self.accept_op("."):
                column = self.expect_ident()
                return EIdent(column, qualifier=token.text)
            return EIdent(token.text)
        raise self._error(f"unexpected token {token.text!r}", token)

    def _function_call(self, name: str) -> EFunc:
        token = self.peek()
        self.expect_op("(")
        lowered = name.lower()
        if self.accept_op("*"):
            self.expect_op(")")
            if lowered != "count":
                raise self._error(f"{name}(*) is only valid for COUNT", token)
            return EFunc(lowered, [], star=True)
        if self.accept_op(")"):
            return EFunc(lowered, [])
        distinct = self.accept_keyword("distinct")
        args = [self.parse_expr()]
        while self.accept_op(","):
            args.append(self.parse_expr())
        self.expect_op(")")
        return EFunc(lowered, args, distinct=distinct)

    def _window_tail(self, call: EFunc) -> EWindow:
        """Parse ``( [PARTITION BY ...] [ORDER BY ...] )`` after OVER."""
        opener = self.peek()
        self.expect_op("(")
        if call.name not in _WINDOW_FUNCS:
            raise self._error(
                f"not supported: window function {call.name.upper()}", opener
            )
        if call.distinct:
            raise self._error(
                "not supported: DISTINCT inside a window function", opener
            )
        partition_by: list[SqlExpr] = []
        if self.accept_keyword("partition"):
            self.expect_keyword("by")
            partition_by.append(self.parse_expr())
            while self.accept_op(","):
                partition_by.append(self.parse_expr())
        order_by: list[tuple[SqlExpr, bool]] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())
        token = self.peek()
        if not token.is_op(")"):
            raise self._error(
                "not supported: window frames (ROWS/RANGE/GROUPS) — only the "
                "default frame is available",
                token,
            )
        self.advance()
        return EWindow(
            call.name,
            call.args,
            star=call.star,
            partition_by=partition_by,
            order_by=order_by,
        )

    def _case_tail(self) -> ECase:
        branches = []
        while self.accept_keyword("when"):
            condition = self.parse_expr()
            self.expect_keyword("then")
            branches.append((condition, self.parse_expr()))
        default = self.parse_expr() if self.accept_keyword("else") else None
        self.expect_keyword("end")
        if not branches:
            raise SqlSyntaxError("CASE requires at least one WHEN branch")
        return ECase(branches, default)


def _parse_number(text: str) -> int | float:
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)


def parse_statement(sql: str):
    """Parse one SQL statement into its AST."""
    return Parser(sql).parse_statement()
