"""SQL abstract syntax trees (pre-binding)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# ---------------------------------------------------------------------- #
# Expressions
# ---------------------------------------------------------------------- #
class SqlExpr:
    """Base class of unbound SQL expressions."""


@dataclass
class EIdent(SqlExpr):
    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass
class ELiteral(SqlExpr):
    value: Any  # int | float | str | bool | None

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class EBinary(SqlExpr):
    op: str  # arithmetic or comparison or and/or
    left: SqlExpr
    right: SqlExpr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class EUnary(SqlExpr):
    op: str  # "not" | "-"
    operand: SqlExpr

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass
class EFunc(SqlExpr):
    name: str
    args: list[SqlExpr]
    star: bool = False  # COUNT(*)
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.star else ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass
class ECase(SqlExpr):
    branches: list[tuple[SqlExpr, SqlExpr]]
    default: SqlExpr | None = None

    def __str__(self) -> str:
        return "CASE ..."


@dataclass
class EBetween(SqlExpr):
    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False


@dataclass
class EIn(SqlExpr):
    operand: SqlExpr
    values: list[Any]
    negated: bool = False


@dataclass
class ELike(SqlExpr):
    operand: SqlExpr
    pattern: str
    negated: bool = False


@dataclass
class EIsNull(SqlExpr):
    operand: SqlExpr
    negated: bool = False


@dataclass
class ESubquery(SqlExpr):
    """A scalar subquery: ``(SELECT ...)`` in expression position."""

    select: "SelectStatement"

    def __str__(self) -> str:
        return "(SELECT ...)"


@dataclass
class EExists(SqlExpr):
    """``[NOT] EXISTS (SELECT ...)``."""

    select: "SelectStatement"
    negated: bool = False

    def __str__(self) -> str:
        return f"{'NOT ' if self.negated else ''}EXISTS (SELECT ...)"


@dataclass
class EInSubquery(SqlExpr):
    """``operand [NOT] IN (SELECT ...)``."""

    operand: SqlExpr
    select: "SelectStatement"
    negated: bool = False

    def __str__(self) -> str:
        return f"({self.operand} {'NOT ' if self.negated else ''}IN (SELECT ...))"


@dataclass
class EWindow(SqlExpr):
    """A window function call: ``func(args) OVER (PARTITION BY ... ORDER BY ...)``.

    ``star`` marks ``COUNT(*) OVER (...)``. The only supported frame is the
    SQL default (RANGE UNBOUNDED PRECEDING .. CURRENT ROW when ordered,
    the whole partition otherwise); explicit frames are rejected at parse
    time.
    """

    func: str
    args: list[SqlExpr]
    star: bool = False
    partition_by: list[SqlExpr] = field(default_factory=list)
    order_by: list[tuple[SqlExpr, bool]] = field(default_factory=list)

    def __str__(self) -> str:
        inner = "*" if self.star else ", ".join(str(a) for a in self.args)
        parts = []
        if self.partition_by:
            parts.append("PARTITION BY " + ", ".join(str(p) for p in self.partition_by))
        if self.order_by:
            parts.append(
                "ORDER BY "
                + ", ".join(f"{e}{' DESC' if d else ''}" for e, d in self.order_by)
            )
        return f"{self.func}({inner}) OVER ({' '.join(parts)})"


# ---------------------------------------------------------------------- #
# Statements
# ---------------------------------------------------------------------- #
@dataclass
class SelectItem:
    expr: SqlExpr
    alias: str | None = None


@dataclass
class TableRef:
    table: str
    alias: str


@dataclass
class JoinClause:
    table: TableRef
    join_type: str  # inner | left
    # Equi-join conditions: pairs of identifier expressions.
    conditions: list[tuple[EIdent, EIdent]] = field(default_factory=list)


@dataclass
class SelectStatement:
    items: list[SelectItem]
    star: bool
    from_table: TableRef | None
    joins: list[JoinClause]
    where: SqlExpr | None
    group_by: list[SqlExpr]
    having: SqlExpr | None
    order_by: list[tuple[SqlExpr, bool]]  # (expr, descending)
    limit: int | None
    distinct: bool
    # WITH clause: (name, select) pairs in declaration order. Non-recursive
    # only; each reference re-binds the definition (inlining).
    ctes: list[tuple[str, "SelectStatement"]] = field(default_factory=list)


@dataclass
class InsertStatement:
    table: str
    columns: list[str] | None
    rows: list[list[SqlExpr]]


@dataclass
class CreateTableStatement:
    table: str
    columns: list[tuple[str, str, list[int], bool]]  # (name, type, params, nullable)
    storage: str | None  # columnstore | rowstore | both


@dataclass
class DropTableStatement:
    table: str


@dataclass
class DeleteStatement:
    table: str
    where: SqlExpr | None


@dataclass
class UpdateStatement:
    table: str
    assignments: list[tuple[str, SqlExpr]]
    where: SqlExpr | None


@dataclass
class BeginStatement:
    """``BEGIN [TRANSACTION | WORK]`` / ``START TRANSACTION``."""


@dataclass
class CommitStatement:
    """``COMMIT [TRANSACTION | WORK]``."""


@dataclass
class RollbackStatement:
    """``ROLLBACK [TRANSACTION | WORK]``."""


@dataclass
class SetStatement:
    """``SET <name> = <int>`` / ``SET <name> TO <int>`` session setting.

    ``value`` is None for ``SET <name> = DEFAULT`` (and OFF / NULL),
    which clears the setting back to the database default. Recognized
    names are validated by the runner, not the parser.
    """

    name: str
    value: int | None


@dataclass
class ShowStatement:
    """``SHOW QUERIES`` (running statements) or ``SHOW <setting>``."""

    name: str


@dataclass
class KillStatement:
    """``KILL <query_id>`` — request termination of a running statement."""

    query_id: int


@dataclass
class ExplainStatement:
    """``EXPLAIN [ANALYZE] SELECT ...`` — plan text, optionally executed
    with runtime stats collection."""

    select: SelectStatement
    analyze: bool = False
