"""SQL abstract syntax trees (pre-binding)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


# ---------------------------------------------------------------------- #
# Expressions
# ---------------------------------------------------------------------- #
class SqlExpr:
    """Base class of unbound SQL expressions."""


@dataclass
class EIdent(SqlExpr):
    name: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass
class ELiteral(SqlExpr):
    value: Any  # int | float | str | bool | None

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class EBinary(SqlExpr):
    op: str  # arithmetic or comparison or and/or
    left: SqlExpr
    right: SqlExpr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass
class EUnary(SqlExpr):
    op: str  # "not" | "-"
    operand: SqlExpr

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass
class EFunc(SqlExpr):
    name: str
    args: list[SqlExpr]
    star: bool = False  # COUNT(*)
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.star else ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


@dataclass
class ECase(SqlExpr):
    branches: list[tuple[SqlExpr, SqlExpr]]
    default: SqlExpr | None = None

    def __str__(self) -> str:
        return "CASE ..."


@dataclass
class EBetween(SqlExpr):
    operand: SqlExpr
    low: SqlExpr
    high: SqlExpr
    negated: bool = False


@dataclass
class EIn(SqlExpr):
    operand: SqlExpr
    values: list[Any]
    negated: bool = False


@dataclass
class ELike(SqlExpr):
    operand: SqlExpr
    pattern: str
    negated: bool = False


@dataclass
class EIsNull(SqlExpr):
    operand: SqlExpr
    negated: bool = False


# ---------------------------------------------------------------------- #
# Statements
# ---------------------------------------------------------------------- #
@dataclass
class SelectItem:
    expr: SqlExpr
    alias: str | None = None


@dataclass
class TableRef:
    table: str
    alias: str


@dataclass
class JoinClause:
    table: TableRef
    join_type: str  # inner | left
    # Equi-join conditions: pairs of identifier expressions.
    conditions: list[tuple[EIdent, EIdent]] = field(default_factory=list)


@dataclass
class SelectStatement:
    items: list[SelectItem]
    star: bool
    from_table: TableRef | None
    joins: list[JoinClause]
    where: SqlExpr | None
    group_by: list[SqlExpr]
    having: SqlExpr | None
    order_by: list[tuple[SqlExpr, bool]]  # (expr, descending)
    limit: int | None
    distinct: bool


@dataclass
class InsertStatement:
    table: str
    columns: list[str] | None
    rows: list[list[SqlExpr]]


@dataclass
class CreateTableStatement:
    table: str
    columns: list[tuple[str, str, list[int], bool]]  # (name, type, params, nullable)
    storage: str | None  # columnstore | rowstore | both


@dataclass
class DropTableStatement:
    table: str


@dataclass
class DeleteStatement:
    table: str
    where: SqlExpr | None


@dataclass
class UpdateStatement:
    table: str
    assignments: list[tuple[str, SqlExpr]]
    where: SqlExpr | None


@dataclass
class BeginStatement:
    """``BEGIN [TRANSACTION | WORK]`` / ``START TRANSACTION``."""


@dataclass
class CommitStatement:
    """``COMMIT [TRANSACTION | WORK]``."""


@dataclass
class RollbackStatement:
    """``ROLLBACK [TRANSACTION | WORK]``."""


@dataclass
class ExplainStatement:
    """``EXPLAIN [ANALYZE] SELECT ...`` — plan text, optionally executed
    with runtime stats collection."""

    select: SelectStatement
    analyze: bool = False
