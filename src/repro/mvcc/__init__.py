"""MVCC snapshot isolation: epoch-versioned storage (DESIGN.md
"Multi-versioning").

The subsystem is two small pieces — an :class:`EpochManager` (the
commit-epoch clock plus maintenance/replay advancement) and its
embedded :class:`ReaderRegistry` (active snapshot leases, feeding the
GC horizon). Everything else is stamps on the existing storage
structures: see :mod:`repro.storage.delete_bitmap`,
:mod:`repro.storage.deltastore`, :mod:`repro.storage.directory` and
:meth:`repro.storage.columnstore.ColumnStoreIndex.pin_scan_units`.
"""

from .epoch import (
    GENESIS_EPOCH,
    PENDING_EPOCH,
    EpochManager,
    ReaderLease,
    ReaderRegistry,
)

__all__ = [
    "GENESIS_EPOCH",
    "PENDING_EPOCH",
    "EpochManager",
    "ReaderLease",
    "ReaderRegistry",
]
