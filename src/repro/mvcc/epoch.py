"""Commit epochs: the version clock of the MVCC layer.

Multi-versioning here is *epoch-stamped*, not copy-on-commit: the
storage structures (row-group directory entries, delta rows, delete-
bitmap marks) each carry the commit epoch at which they became visible
(and, for retired/deleted entries, the epoch at which they stopped
being visible). A snapshot read therefore never copies anything — it
captures the current committed epoch ``E`` once and filters every
structure with plain comparisons::

    delta row visible at E      iff  insert_epoch <= E < tombstone_epoch
    row group visible at E      iff  created_epoch <= E < retired_epoch
    delete mark applies at E    iff  mark_epoch <= E

Uncommitted work is stamped :data:`PENDING_EPOCH` — a sentinel larger
than any real epoch, so it is invisible to every snapshot through the
same ``<=`` comparisons with no extra branch. Commit replaces PENDING
with the freshly allocated epoch *before* the epoch is published
(publish-last ordering), so a reader that captures ``current`` can
never observe a half-stamped commit:

* captured before publish: every structure it filters is either stamped
  with an epoch ``> captured`` or still PENDING — invisible either way;
* captured after publish: all stamps were installed first — visible.

Both cases are correct without the reader taking any lock, which is the
whole point (DESIGN.md "Multi-versioning").
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

from ..observability import registry as metrics

# Epoch 0: state that predates (or is independent of) any transaction —
# freshly loaded snapshots, WAL-replayed mutations, direct single-caller
# Table/index calls. Visible to every reader.
GENESIS_EPOCH = 0

# Uncommitted state. Greater than any epoch the manager will ever
# allocate, so `stamp <= reader_epoch` is False for every reader.
PENDING_EPOCH = 1 << 62


class ReaderLease:
    """One registered reader's pinned epoch (release exactly once)."""

    __slots__ = ("epoch", "tag", "_registry", "_key", "released")

    def __init__(self, epoch: int, tag: str, registry: "ReaderRegistry", key: int) -> None:
        self.epoch = epoch
        self.tag = tag
        self._registry = registry
        self._key = key
        self.released = False

    def release(self) -> None:
        """Deregister; idempotent so teardown paths can call it safely."""
        if not self.released:
            self.released = True
            self._registry._release(self._key)

    def __enter__(self) -> "ReaderLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self.released else "active"
        return f"<ReaderLease epoch={self.epoch} tag={self.tag!r} {state}>"


class ReaderRegistry:
    """Active snapshot readers, keyed by lease; feeds the GC horizon."""

    def __init__(self, manager: "EpochManager") -> None:
        self._manager = manager
        self._mutex = threading.Lock()
        self._leases: dict[int, int] = {}  # lease key -> pinned epoch
        self._next_key = 0

    def pin(self, tag: str = "") -> ReaderLease:
        """Register a reader at the latest committed epoch.

        Reading ``current`` and registering happen under one mutex, so
        there is no window in which a vacuum could compute a horizon
        that misses a reader mid-pin. (Strictly the horizon rule already
        tolerates that window — a new reader always pins at an epoch
        >= any horizon — but the atomicity makes the invariant local.)
        """
        with self._mutex:
            epoch = self._manager.current
            key = self._next_key
            self._next_key += 1
            self._leases[key] = epoch
        metrics.increment("mvcc.reader_pins")
        self._publish_gauges()
        return ReaderLease(epoch, tag, self, key)

    def _release(self, key: int) -> None:
        with self._mutex:
            self._leases.pop(key, None)
        self._publish_gauges()

    def oldest_active(self) -> int | None:
        """The oldest pinned epoch, or None when no reader is registered."""
        with self._mutex:
            return min(self._leases.values()) if self._leases else None

    def release_all(self) -> int:
        """Forcibly release every registered lease; returns the count.

        The shutdown path: a lease leaked past :meth:`Database.close`
        would hold the GC horizon back forever. Outstanding
        :class:`ReaderLease` objects stay safe to release again — their
        keys are simply gone from the registry.
        """
        with self._mutex:
            count = len(self._leases)
            self._leases.clear()
        if count:
            self._publish_gauges()
        return count

    def __len__(self) -> int:
        with self._mutex:
            return len(self._leases)

    def _publish_gauges(self) -> None:
        oldest = self.oldest_active()
        metrics.get_registry().set_gauge(
            "mvcc.oldest_active_epoch",
            oldest if oldest is not None else self._manager.current,
        )


class EpochManager:
    """Allocates and publishes commit epochs for one database.

    ``current`` is the latest *published* (committed) epoch. Readers
    load it without a lock — a single int attribute read is atomic
    under the GIL, and publish-last ordering (see module docstring)
    makes the value safe to act on.

    One manager is shared by every table of a Database; each
    :class:`~repro.storage.columnstore.ColumnStoreIndex` starts with a
    private manager so bare single-index use works unchanged, and
    ``Database.create_table`` swaps in the shared one.
    """

    def __init__(self) -> None:
        # RLock: `installing()` holds the mutex across a whole
        # maintenance operation, and maintenance code may run nested
        # epoch work (e.g. rebuild loading rows while installing).
        self._mutex = threading.RLock()
        self.current = GENESIS_EPOCH
        self.readers = ReaderRegistry(self)

    # ------------------------------------------------------------------ #
    # Commit protocol
    # ------------------------------------------------------------------ #
    def commit(self, finalizers: Iterable[Callable[[int], None]]) -> int:
        """Install one transaction's work at a fresh epoch.

        ``finalizers`` are the stamp hooks the transaction accumulated
        (:meth:`TxnContext.on_commit`): each replaces PENDING stamps
        with the allocated epoch. They run *before* ``current`` is
        published, which is what makes lock-free reads sound.
        """
        with self._mutex:
            epoch = self.current + 1
            for finalize in finalizers:
                finalize(epoch)
            self.current = epoch
        metrics.increment("mvcc.versions_installed")
        self.readers._publish_gauges()
        return epoch

    @contextmanager
    def installing(self) -> Iterator[int]:
        """A maintenance epoch: reorganizations install at ``current + 1``.

        The tuple mover, REBUILD and archival retire old structures and
        create replacements; both sides are stamped with the yielded
        epoch, and the epoch publishes when the block exits cleanly.
        The mutex is held for the whole block — maintenance already runs
        under the database's exclusive lock, so no committer can be
        waiting on it, and holding it makes the no-interleaving
        assumption explicit rather than implied.
        """
        with self._mutex:
            epoch = self.current + 1
            yield epoch
            self.current = epoch
        metrics.increment("mvcc.versions_installed")
        self.readers._publish_gauges()

    def advance_to(self, epoch: int) -> None:
        """Fast-forward the clock (WAL replay of logged commit epochs)."""
        with self._mutex:
            if epoch > self.current:
                self.current = epoch
        self.readers._publish_gauges()

    # ------------------------------------------------------------------ #
    # GC horizon
    # ------------------------------------------------------------------ #
    def horizon(self) -> int:
        """The newest epoch no reader can still see past.

        A structure retired at (or a tombstone stamped at) an epoch
        ``<= horizon()`` is invisible to every registered reader and to
        any reader that pins from now on, so vacuum may free it.
        """
        oldest = self.readers.oldest_active()
        return self.current if oldest is None else min(oldest, self.current)
