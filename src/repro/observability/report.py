"""EXPLAIN ANALYZE reporting: the executed plan annotated with stats.

:class:`ExecutionStats` is the programmatic handle one stats-enabled
execution returns (``Result.stats``): the per-operator tree with runtime
counters, plus the delta of the process-wide metrics registry over the
execution (segment eliminations, cache hits, spill bytes, ...).

The tree walk relies on ``child_operators()`` being the single source of
truth for plan shape — the same contract ``explain_lines`` uses — so the
ANALYZE rendering can never drift from the EXPLAIN rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .opstats import OperatorStats, operator_stats


@dataclass
class OperatorNodeStats:
    """One operator of an executed plan, with its runtime counters."""

    label: str
    depth: int
    runtime: OperatorStats
    rows_in: int
    details: dict[str, Any] = field(default_factory=dict)

    def lines(self) -> list[str]:
        pad = "  " * self.depth
        out = [f"{pad}{self.label}"]
        runtime = self.runtime
        if runtime.touched:
            actual = (
                f"rows={runtime.rows}, batches={runtime.batches}, "
                f"time={runtime.wall_seconds * 1000:.2f}ms"
            )
            if self.rows_in:
                actual += f", rows_in={self.rows_in}"
            if runtime.peak_grant_bytes:
                actual += f", peak_grant={runtime.peak_grant_bytes:,}B"
            if runtime.spill_bytes:
                actual += f", spill={runtime.spill_bytes:,}B"
            out.append(f"{pad}  * actual: {actual}")
        if self.details:
            inner = ", ".join(f"{k}={v}" for k, v in self.details.items())
            out.append(f"{pad}  * {inner}")
        return out


@dataclass
class ExecutionStats:
    """Everything one stats-enabled execution observed about itself."""

    elapsed_seconds: float
    row_count: int
    mode: str
    operators: list[OperatorNodeStats]
    counters: dict[str, float]

    @classmethod
    def capture(
        cls,
        root,
        mode: str,
        elapsed_seconds: float,
        row_count: int,
        counters: dict[str, float],
    ) -> "ExecutionStats":
        """Walk an executed operator tree and collect its stats."""
        operators: list[OperatorNodeStats] = []
        _walk(root, 0, operators)
        return cls(
            elapsed_seconds=elapsed_seconds,
            row_count=row_count,
            mode=mode,
            operators=operators,
            counters=dict(counters),
        )

    # ------------------------------------------------------------------ #
    # Programmatic access
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> float:
        """A registry counter's growth during this execution (0 if none)."""
        return self.counters.get(name, 0)

    def find(self, label_substring: str) -> list[OperatorNodeStats]:
        """Operators whose label contains the substring (e.g. 'Scan')."""
        return [o for o in self.operators if label_substring in o.label]

    def total(self, detail: str) -> float:
        """Sum of one per-operator detail across the plan
        (e.g. ``total('units_eliminated')``)."""
        return sum(o.details.get(detail, 0) for o in self.operators)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render(self, include_counters: bool = True) -> str:
        lines = [
            f"-- executed in {self.elapsed_seconds * 1000:.1f} ms, "
            f"{self.row_count} rows ({self.mode} mode) --"
        ]
        for node in self.operators:
            lines.extend(node.lines())
        if include_counters and self.counters:
            lines.append("-- storage counters (delta over this execution) --")
            for name in sorted(self.counters):
                value = self.counters[name]
                shown = int(value) if float(value).is_integer() else round(value, 6)
                lines.append(f"  {name}={shown}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """A plain-data summary (benchmark reports serialize this)."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "rows": self.row_count,
            "mode": self.mode,
            "counters": dict(self.counters),
            "operators": [
                {
                    "label": node.label,
                    "depth": node.depth,
                    "rows": node.runtime.rows,
                    "batches": node.runtime.batches,
                    "wall_seconds": node.runtime.wall_seconds,
                    "peak_grant_bytes": node.runtime.peak_grant_bytes,
                    "spill_bytes": node.runtime.spill_bytes,
                    "rows_in": node.rows_in,
                    **{f"detail.{k}": v for k, v in node.details.items()},
                }
                for node in self.operators
            ],
        }


def _walk(operator, depth: int, out: list[OperatorNodeStats]) -> None:
    children = operator.child_operators()
    runtime = operator_stats(operator)
    rows_in = sum(operator_stats(child).rows for child in children)
    out.append(
        OperatorNodeStats(
            label=operator.describe(),
            depth=depth,
            runtime=runtime,
            rows_in=rows_in,
            details=_operator_details(operator),
        )
    )
    for child in children:
        _walk(child, depth + 1, out)


def _operator_details(operator) -> dict[str, Any]:
    """Nonzero fields of an operator's own stats dataclass (ScanStats,
    JoinStats, ...) — the operator-specific counters."""
    own = getattr(operator, "stats", None)
    if own is None:
        return {}
    details = {}
    for name, value in vars(own).items():
        if value not in (0, 0.0, False, None, []):
            details[name] = value
    return details
