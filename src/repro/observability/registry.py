"""Process-wide metrics registry: counters, gauges, and timers.

Storage components (segment cache, columnstore scans, delta stores, the
tuple mover, spill files) report into a :class:`MetricsRegistry` so the
engine can prove, from the inside, what a query actually did — row groups
eliminated, cache hits paid for, bytes spilled. The paper's claims are
quantitative; this registry is how the repo's benchmarks assert them via
engine counters instead of wall clock alone.

A single process-wide registry (:func:`get_registry`) is the default
sink. Tests that need isolation install their own instance with
:func:`set_registry` (or simply call :meth:`MetricsRegistry.reset`).

Counter names are dotted paths (``storage.scan.units_eliminated``); the
names listed in ``STABLE_COUNTERS`` are a stable API documented in the
README — benchmarks and external tooling may rely on them.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

# Counters whose names and meanings are frozen (documented in README).
STABLE_COUNTERS = (
    "storage.cache.hits",
    "storage.cache.misses",
    "storage.cache.evictions",
    "storage.scan.units_seen",
    "storage.scan.units_eliminated",
    "storage.scan.rows_scanned",
    "storage.scan.rows_emitted",
    "storage.scan.delta_rows_scanned",
    "storage.scan.rows_rejected_by_bitmap",
    "storage.scan.rows_rejected_deleted",
    "storage.scan.encoded_space_conjuncts",
    "storage.scan.conjuncts_pruned_by_range",
    "storage.scan.columns_decoded",
    "storage.scan.agg_runs_processed",
    "storage.scan.agg_code_space_groups",
    "storage.scan.agg_fallbacks",
    "storage.segments.decode_requests",
    "storage.delta.rows_inserted",
    "storage.delta.stores_closed",
    "storage.tuple_mover.runs",
    "storage.tuple_mover.rows_moved",
    "storage.tuple_mover.delta_stores_compressed",
    "storage.tuple_mover.row_groups_created",
    "storage.recovery.files_verified",
    "storage.recovery.checksum_failures",
    "storage.recovery.snapshots_rolled_back",
    "storage.snapshot.saves_skipped",
    "storage.wal.records_appended",
    "storage.wal.bytes_appended",
    "storage.wal.commits",
    "storage.wal.fsyncs",
    "storage.wal.group_commit.batched_commits",
    "storage.wal.segments_created",
    "storage.wal.segments_deleted",
    "storage.wal.checkpoints",
    "storage.wal.replay.records",
    "storage.wal.replay.torn_tails_truncated",
    "storage.wal.replay.uncommitted_skipped",
    "txn.begins",
    "txn.commits",
    "txn.rollbacks",
    "txn.statement_rollbacks",
    "exec.spill.files",
    "exec.spill.batches",
    "exec.spill.rows",
    "exec.spill.bytes_written",
    "concurrency.sessions",
    "concurrency.read_waits",
    "concurrency.write_waits",
    "concurrency.latch_waits",
    "concurrency.snapshot_pins",
    "concurrency.pinned_statements",
    "concurrency.locked_statements",
    "mvcc.versions_installed",
    "mvcc.versions_gced",
    "mvcc.reader_pins",
    "mvcc.oldest_active_epoch",
    "mvcc.lockfree_reads",
    "mvcc.leases_leaked",
    "backup.started",
    "backup.completed",
    "backup.failed",
    "backup.files_copied",
    "backup.bytes_copied",
    "backup.checkpoints_deferred",
    "restore.completed",
    "restore.records_restored",
    "wal.archive.segments_archived",
    "wal.archive.bytes",
    "wal.archive.segments_pruned",
    "wal.archive.failures",
    "governance.statements_timed_out",
    "governance.statements_cancelled",
    "governance.statements_killed",
    "governance.statements_shed",
    "governance.spills_forced",
    "governance.budget_rejections",
    "server.drain_killed",
)


@dataclass
class TimerStat:
    """Accumulated observations of one named timer."""

    count: int = 0
    seconds: float = 0.0


class MetricsRegistry:
    """Counters, gauges, and timers behind one lock.

    All mutation is O(1) dict work; callers on hot paths report at coarse
    granularity (per scan unit, per spill batch — never per row of a
    batch-mode pipeline), so the registry is always on.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, TimerStat] = {}

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    def increment(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------ #
    # Gauges
    # ------------------------------------------------------------------ #
    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def max_gauge(self, name: str, value: float) -> None:
        """Keep the high-water mark of a gauge (e.g. peak memory)."""
        with self._lock:
            if value > self._gauges.get(name, float("-inf")):
                self._gauges[name] = value

    def gauge(self, name: str) -> float | None:
        with self._lock:
            return self._gauges.get(name)

    # ------------------------------------------------------------------ #
    # Timers
    # ------------------------------------------------------------------ #
    def record_time(self, name: str, seconds: float) -> None:
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.count += 1
            stat.seconds += seconds

    @contextmanager
    def timer(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_time(name, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, float]:
        """A flat point-in-time view: counters and gauges verbatim,
        timers flattened to ``<name>.count`` / ``<name>.seconds``."""
        with self._lock:
            out: dict[str, float] = dict(self._counters)
            out.update(self._gauges)
            for name, stat in self._timers.items():
                out[f"{name}.count"] = stat.count
                out[f"{name}.seconds"] = stat.seconds
            return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


def snapshot_delta(
    before: dict[str, float], after: dict[str, float]
) -> dict[str, float]:
    """Nonzero per-key growth between two :meth:`snapshot` calls."""
    delta = {}
    for name, value in after.items():
        grown = value - before.get(name, 0)
        if grown:
            delta[name] = grown
    return delta


_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every storage component reports into."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install a registry (tests); returns the previously installed one."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry
    return previous


def increment(name: str, value: float = 1) -> None:
    """Convenience: bump a counter on the process-wide registry."""
    _global_registry.increment(name, value)
