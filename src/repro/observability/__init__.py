"""Query-lifecycle observability: metrics registry + per-operator stats.

Three layers, built for the paper's quantitative claims to be checkable
from inside the engine:

* :mod:`.registry` — a process-wide :class:`MetricsRegistry` of counters,
  gauges and timers that storage components (segment cache, columnstore
  scans, delta stores, the tuple mover, spill files) always report into;
* :mod:`.opstats` — :class:`OperatorStats` attached to every batch and
  row operator via an instrumented-iterator wrapper, active only while
  :func:`collect` is on so stats-off execution pays nothing;
* :mod:`.report` — :class:`ExecutionStats`, the per-execution handle
  behind ``EXPLAIN ANALYZE``, ``Result.stats`` and the CLI ``--stats``
  flag.
"""

from .opstats import (
    OperatorStats,
    collect,
    collecting,
    disable,
    enable,
    instrument_batches,
    instrument_rows,
    operator_stats,
)
from .registry import (
    STABLE_COUNTERS,
    MetricsRegistry,
    TimerStat,
    get_registry,
    increment,
    set_registry,
    snapshot_delta,
)
from .report import ExecutionStats, OperatorNodeStats

__all__ = [
    "ExecutionStats",
    "MetricsRegistry",
    "OperatorNodeStats",
    "OperatorStats",
    "STABLE_COUNTERS",
    "TimerStat",
    "collect",
    "collecting",
    "disable",
    "enable",
    "get_registry",
    "increment",
    "instrument_batches",
    "instrument_rows",
    "operator_stats",
    "set_registry",
    "snapshot_delta",
]
