"""Per-operator runtime statistics via an instrumented-iterator wrapper.

Every :class:`~repro.exec.operators.base.BatchOperator` subclass has its
``batches()`` generator wrapped at class-creation time (and every
``RowOperator`` its ``rows()``), so *all* operators inherit runtime
counters — batches emitted, rows out, inclusive wall time, peak memory
grant, spill bytes — without per-operator edits. The wrapper is a no-op
(one module-level flag read, zero per-batch work) unless collection is
active, which keeps stats-off execution at full speed.

Collection is turned on per execution with :func:`collect` (used by
``EXPLAIN ANALYZE``, ``Database.execute(stats=True)`` and the CLI's
``--stats`` flag), or process-wide with :func:`enable`.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass

_collecting = False


def collecting() -> bool:
    """Whether per-operator stats collection is currently on."""
    return _collecting


def enable() -> None:
    global _collecting
    _collecting = True


def disable() -> None:
    global _collecting
    _collecting = False


@contextmanager
def collect():
    """Collect per-operator stats for the duration of the block."""
    global _collecting
    previous = _collecting
    _collecting = True
    try:
        yield
    finally:
        _collecting = previous


@dataclass
class OperatorStats:
    """Runtime counters one operator accumulated while collection was on.

    ``wall_seconds`` is *inclusive* time — the time the operator's
    consumer spent blocked in its ``next()``, children included — the
    conventional EXPLAIN ANALYZE reading.
    """

    batches: int = 0
    rows: int = 0
    wall_seconds: float = 0.0
    peak_grant_bytes: int = 0
    spill_bytes: int = 0

    @property
    def touched(self) -> bool:
        return bool(self.batches or self.rows or self.wall_seconds)


def operator_stats(operator) -> OperatorStats:
    """The lazily created :class:`OperatorStats` record of an operator."""
    stats = getattr(operator, "_op_stats", None)
    if stats is None:
        stats = OperatorStats()
        operator._op_stats = stats
    return stats


def _capture_extras(operator, stats: OperatorStats) -> None:
    """Pull grant / spill figures off the operator once a stream ends."""
    grant = getattr(operator, "grant", None)
    if grant is not None:
        peak = getattr(grant, "peak_bytes", 0)
        if peak > stats.peak_grant_bytes:
            stats.peak_grant_bytes = peak
    own = getattr(operator, "stats", None)
    if own is not None:
        spill_bytes = getattr(own, "spill_bytes", 0)
        if spill_bytes > stats.spill_bytes:
            stats.spill_bytes = spill_bytes


def instrument_batches(fn):
    """Wrap a ``batches()`` generator function with stats accounting."""

    @functools.wraps(fn)
    def wrapper(self):
        if not _collecting:
            yield from fn(self)
            return
        stats = operator_stats(self)
        source = fn(self)
        try:
            while True:
                start = time.perf_counter()
                try:
                    batch = next(source)
                except StopIteration:
                    stats.wall_seconds += time.perf_counter() - start
                    break
                stats.wall_seconds += time.perf_counter() - start
                stats.batches += 1
                stats.rows += batch.active_count
                yield batch
        finally:
            _capture_extras(self, stats)

    wrapper._instrumented = True
    return wrapper


def instrument_rows(fn):
    """Wrap a row-engine ``rows()`` generator function the same way."""

    @functools.wraps(fn)
    def wrapper(self):
        if not _collecting:
            yield from fn(self)
            return
        stats = operator_stats(self)
        source = fn(self)
        try:
            while True:
                start = time.perf_counter()
                try:
                    row = next(source)
                except StopIteration:
                    stats.wall_seconds += time.perf_counter() - start
                    break
                stats.wall_seconds += time.perf_counter() - start
                stats.rows += 1
                yield row
        finally:
            _capture_extras(self, stats)

    wrapper._instrumented = True
    return wrapper
