"""Table schemas: ordered, named, typed columns with nullability.

A :class:`TableSchema` is immutable once constructed and is shared by the
row store, the columnstore index, the planner and the SQL binder. Row
validation (`coerce_row`) happens here so every ingestion path — bulk load,
trickle insert, SQL INSERT — enforces identical rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from .errors import ConstraintError, SchemaError
from .types import DataType


@dataclass(frozen=True)
class ColumnDef:
    """One column: name, type and nullability."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")

    def __str__(self) -> str:
        null = "" if self.nullable else " NOT NULL"
        return f"{self.name} {self.dtype}{null}"


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of :class:`ColumnDef` with unique names."""

    columns: tuple[ColumnDef, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, columns: Iterable[ColumnDef]) -> None:
        cols = tuple(columns)
        if not cols:
            raise SchemaError("a table must have at least one column")
        index: dict[str, int] = {}
        for position, col in enumerate(cols):
            key = col.name.lower()
            if key in index:
                raise SchemaError(f"duplicate column name {col.name!r}")
            index[key] = position
        object.__setattr__(self, "columns", cols)
        object.__setattr__(self, "_index", index)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[ColumnDef]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    @property
    def names(self) -> list[str]:
        return [col.name for col in self.columns]

    def position(self, name: str) -> int:
        """Ordinal of a column by (case-insensitive) name."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.position(name)]

    def dtype(self, name: str) -> DataType:
        return self.column(name).dtype

    # ------------------------------------------------------------------ #
    # Row validation
    # ------------------------------------------------------------------ #
    def coerce_row(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Validate one row against the schema, returning physical values.

        Raises :class:`SchemaError` on arity mismatch,
        :class:`ConstraintError` on NULL in a NOT NULL column, and
        :class:`TypeMismatchError` on bad values.
        """
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values but table has {len(self.columns)} columns"
            )
        out = []
        for value, col in zip(row, self.columns):
            if value is None and not col.nullable:
                raise ConstraintError(f"column {col.name!r} is NOT NULL")
            out.append(col.dtype.coerce(value))
        return tuple(out)

    def coerce_rows(self, rows: Iterable[Sequence[Any]]) -> list[tuple[Any, ...]]:
        """Validate many rows; convenience for loaders."""
        return [self.coerce_row(row) for row in rows]

    def project(self, names: Sequence[str]) -> "TableSchema":
        """A new schema containing only the named columns, in the given order."""
        return TableSchema([self.column(name) for name in names])

    def __str__(self) -> str:
        return "(" + ", ".join(str(col) for col in self.columns) + ")"


def schema(*specs: tuple[str, DataType] | tuple[str, DataType, bool] | ColumnDef) -> TableSchema:
    """Build a :class:`TableSchema` from ``(name, dtype[, nullable])`` tuples.

    >>> from repro import types
    >>> schema(("id", types.INT, False), ("name", types.VARCHAR))
    """
    cols = []
    for spec in specs:
        if isinstance(spec, ColumnDef):
            cols.append(spec)
        elif len(spec) == 2:
            cols.append(ColumnDef(spec[0], spec[1]))
        else:
            cols.append(ColumnDef(spec[0], spec[1], spec[2]))
    return TableSchema(cols)
