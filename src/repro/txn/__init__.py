"""Transactions: statement-level atomicity and BEGIN/COMMIT/ROLLBACK.

The paper's updatable columnstore trickles DML through delta stores and
delete bitmaps; this package makes those mutations *transactional*. A
:class:`TxnContext` accumulates physical undo actions as storage
structures change (delta-row removals, delete-bitmap clears, rowstore
un-deletes, catalog restores) and plays them back in reverse to return
the database to an earlier state:

* every DML/DDL statement runs inside a statement scope — an exception
  anywhere mid-statement rolls the statement back to a no-op before the
  error propagates (statement-level atomicity, as in SQL Server);
* ``Database.begin()/commit()/rollback()`` group statements into
  multi-statement transactions whose WAL records are stamped with a
  transaction id and replayed only if a ``TXN_COMMIT`` made it to disk.

Undo actions are plain closures over storage objects, recorded by the
storage layer itself at each mutation point — the code that knows how to
apply a change is the code that records how to reverse it.
"""

from .context import TxnContext, AUTO_COMMIT_TXN

__all__ = ["TxnContext", "AUTO_COMMIT_TXN"]
