"""The transaction context: an undo log of physical compensation actions.

A :class:`TxnContext` is a stack of undo closures. Storage mutators
record one entry per mutation point (a delta-store insert, a delete-
bitmap mark, a rowstore tombstone, a catalog registration); rolling back
runs the entries in reverse, restoring the exact pre-mutation state —
including allocator counters (next row id, next delta id, next row-group
id), open/closed delta transitions, and global-dictionary extensions, so
a rolled-back statement is indistinguishable from one that never ran.
That exactness is what keeps WAL replay deterministic: locators logged
by later statements address the same physical positions whether or not
an earlier statement was rolled back.

Savepoints are just stack depths: a statement records the depth on
entry and rolls back to it on failure, which gives statement-level
atomicity *inside* a multi-statement transaction without a separate
nested-transaction mechanism.
"""

from __future__ import annotations

from typing import Callable

from ..errors import TxnError

# Txn id 0 marks auto-commit statements: their WAL records need no
# commit marker (the record's presence is the commit, as before PR 4).
AUTO_COMMIT_TXN = 0


class TxnContext:
    """One transaction's undo log (also used per-statement in auto-commit).

    ``txn_id`` is 0 for the ephemeral per-statement context of an
    auto-commit statement and a positive id (the LSN of the TXN_BEGIN
    record when a WAL is attached) for explicit transactions.
    """

    __slots__ = ("txn_id", "_undo", "statements", "rolled_back", "owner", "_on_commit")

    def __init__(self, txn_id: int = AUTO_COMMIT_TXN, owner: str | None = None) -> None:
        self.txn_id = txn_id
        self._undo: list[tuple[str, Callable[[], None]]] = []
        self.statements = 0  # completed statements (for status/tests)
        self.rolled_back = False
        # MVCC commit hooks: closures taking the commit epoch, run by the
        # epoch manager while installing it (stamping PENDING marks /
        # rows with the real epoch). Each hook is stamp-if-still-pending,
        # so a hook left behind by a statement-level rollback (its stamps
        # already undone) is a harmless no-op.
        self._on_commit: list[Callable[[int], None]] = []
        # The session that opened this transaction (None for direct,
        # single-caller Database use). The concurrency layer serializes
        # writers, so at most one explicit transaction exists at a time —
        # but it belongs to *one* session, and the owner tag is how
        # Database.commit/rollback reject another session's attempt to
        # end it (see db.database.Database.begin).
        self.owner = owner

    @property
    def explicit(self) -> bool:
        return self.txn_id != AUTO_COMMIT_TXN

    def __len__(self) -> int:
        return len(self._undo)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, description: str, action: Callable[[], None]) -> None:
        """Push one undo action (run if the statement/txn rolls back)."""
        self._undo.append((description, action))

    def on_commit(self, hook: Callable[[int], None]) -> None:
        """Register an epoch-stamping hook to run at commit."""
        self._on_commit.append(hook)

    def take_commit_hooks(self) -> list[Callable[[int], None]]:
        """Detach and return the commit hooks (the commit path owns them)."""
        hooks = self._on_commit
        self._on_commit = []
        return hooks

    # ------------------------------------------------------------------ #
    # Savepoints / rollback
    # ------------------------------------------------------------------ #
    def savepoint(self) -> int:
        """Current undo depth; pass to :meth:`rollback_to` later."""
        return len(self._undo)

    def rollback_to(self, mark: int) -> int:
        """Undo every action recorded after ``mark``, newest first.

        Undo actions are pure in-memory compensations and must not fail;
        if one does, the database is in an undefined state, so the error
        is wrapped in :class:`TxnError` naming the failed action rather
        than silently continuing.
        """
        undone = 0
        while len(self._undo) > mark:
            description, action = self._undo.pop()
            try:
                action()
            except Exception as exc:
                raise TxnError(
                    f"undo action failed ({description}): {exc} — "
                    "in-memory state may be inconsistent"
                ) from exc
            undone += 1
        return undone

    def rollback(self) -> int:
        """Undo everything this transaction did."""
        undone = self.rollback_to(0)
        self.rolled_back = True
        self._on_commit.clear()
        return undone

    def discard(self) -> None:
        """Forget recorded undo actions (the changes are being kept)."""
        self._undo.clear()
        self._on_commit.clear()
