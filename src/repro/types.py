"""SQL-ish data type system shared by storage, execution and the SQL binder.

The engine supports the scalar types a data-warehouse workload needs:
integers, floats, fixed-point decimals, strings, dates and booleans. Each
logical type maps to a NumPy dtype used by batch-mode vectors, and to a
Python-level coercion function used by the row store and the SQL frontend.

Dates are stored as days since 1970-01-01 (int32), and decimals as scaled
int64 with a per-column scale — mirroring how fixed-size values are kept
binary-comparable inside SQL Server column segments.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from typing import Any

import numpy as np

from .errors import TypeMismatchError

_EPOCH = datetime.date(1970, 1, 1)


class TypeKind(enum.Enum):
    """The logical type families understood by the engine."""

    INT = "int"
    BIGINT = "bigint"
    FLOAT = "float"
    DECIMAL = "decimal"
    VARCHAR = "varchar"
    DATE = "date"
    BOOL = "bool"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TypeKind.{self.name}"


@dataclass(frozen=True)
class DataType:
    """A concrete column type: a :class:`TypeKind` plus its parameters.

    ``scale`` is only meaningful for DECIMAL (number of fractional digits);
    ``length`` is only meaningful for VARCHAR (declared maximum length, used
    for validation, not storage).
    """

    kind: TypeKind
    scale: int = 0
    length: int | None = None

    def __post_init__(self) -> None:
        if self.kind is not TypeKind.DECIMAL and self.scale != 0:
            raise TypeMismatchError(f"scale is only valid for DECIMAL, not {self.kind.value}")
        if self.kind is not TypeKind.VARCHAR and self.length is not None:
            raise TypeMismatchError(f"length is only valid for VARCHAR, not {self.kind.value}")
        if self.kind is TypeKind.DECIMAL and not 0 <= self.scale <= 18:
            raise TypeMismatchError(f"DECIMAL scale must be in [0, 18], got {self.scale}")

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #
    @property
    def is_integer(self) -> bool:
        return self.kind in (TypeKind.INT, TypeKind.BIGINT)

    @property
    def is_numeric(self) -> bool:
        return self.kind in (TypeKind.INT, TypeKind.BIGINT, TypeKind.FLOAT, TypeKind.DECIMAL)

    @property
    def is_string(self) -> bool:
        return self.kind is TypeKind.VARCHAR

    @property
    def is_orderable(self) -> bool:
        """All supported types are orderable; kept for future extension."""
        return True

    # ------------------------------------------------------------------ #
    # Physical representation
    # ------------------------------------------------------------------ #
    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used for this type inside batch vectors.

        VARCHAR columns travel as object arrays (Python strings) outside the
        storage layer; inside column segments they are dictionary codes.
        """
        mapping = {
            TypeKind.INT: np.dtype(np.int32),
            TypeKind.BIGINT: np.dtype(np.int64),
            TypeKind.FLOAT: np.dtype(np.float64),
            TypeKind.DECIMAL: np.dtype(np.int64),
            TypeKind.VARCHAR: np.dtype(object),
            TypeKind.DATE: np.dtype(np.int32),
            TypeKind.BOOL: np.dtype(np.bool_),
        }
        return mapping[self.kind]

    @property
    def fixed_width_bytes(self) -> int:
        """Uncompressed width used for raw-size accounting (VARCHAR: average 16)."""
        if self.kind is TypeKind.VARCHAR:
            return 16 if self.length is None else min(self.length, 64)
        return int(self.numpy_dtype.itemsize)

    # ------------------------------------------------------------------ #
    # Coercion between Python values and the physical representation
    # ------------------------------------------------------------------ #
    def coerce(self, value: Any) -> Any:
        """Validate and convert a Python value to this type's physical form.

        Returns ``None`` unchanged (NULL). Raises :class:`TypeMismatchError`
        for values that cannot be represented.
        """
        if value is None:
            return None
        kind = self.kind
        if kind in (TypeKind.INT, TypeKind.BIGINT):
            return self._coerce_int(value)
        if kind is TypeKind.FLOAT:
            return self._coerce_float(value)
        if kind is TypeKind.DECIMAL:
            return self._coerce_decimal(value)
        if kind is TypeKind.VARCHAR:
            return self._coerce_varchar(value)
        if kind is TypeKind.DATE:
            return self._coerce_date(value)
        return self._coerce_bool(value)

    def _coerce_int(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise TypeMismatchError(f"expected {self.kind.value}, got {value!r}")
        value = int(value)
        limit = 2**31 if self.kind is TypeKind.INT else 2**63
        if not -limit <= value < limit:
            raise TypeMismatchError(f"{value} out of range for {self.kind.value}")
        return value

    def _coerce_float(self, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
            raise TypeMismatchError(f"expected float, got {value!r}")
        return float(value)

    def _coerce_decimal(self, value: Any) -> int:
        """Decimals are stored as int64 scaled by 10**scale."""
        if isinstance(value, bool):
            raise TypeMismatchError(f"expected decimal, got {value!r}")
        if isinstance(value, (int, np.integer)):
            return int(value) * 10**self.scale
        if isinstance(value, (float, np.floating)):
            return int(round(float(value) * 10**self.scale))
        raise TypeMismatchError(f"expected decimal, got {value!r}")

    def _coerce_varchar(self, value: Any) -> str:
        if not isinstance(value, str):
            raise TypeMismatchError(f"expected varchar, got {value!r}")
        if self.length is not None and len(value) > self.length:
            raise TypeMismatchError(
                f"string of length {len(value)} exceeds VARCHAR({self.length})"
            )
        return value

    def _coerce_date(self, value: Any) -> int:
        if isinstance(value, datetime.date) and not isinstance(value, datetime.datetime):
            return (value - _EPOCH).days
        if isinstance(value, str):
            try:
                parsed = datetime.date.fromisoformat(value)
            except ValueError as exc:
                raise TypeMismatchError(f"invalid date literal {value!r}") from exc
            return (parsed - _EPOCH).days
        if isinstance(value, bool):
            raise TypeMismatchError(f"expected date, got {value!r}")
        if isinstance(value, (int, np.integer)):
            return int(value)
        raise TypeMismatchError(f"expected date, got {value!r}")

    def _coerce_bool(self, value: Any) -> bool:
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        raise TypeMismatchError(f"expected bool, got {value!r}")

    # ------------------------------------------------------------------ #
    # Presentation: physical form back to user-facing Python values
    # ------------------------------------------------------------------ #
    def present(self, value: Any) -> Any:
        """Convert a stored physical value to its user-facing Python form."""
        if value is None:
            return None
        if self.kind is TypeKind.DATE:
            return _EPOCH + datetime.timedelta(days=int(value))
        if self.kind is TypeKind.DECIMAL:
            # Physical decimals are scaled ints; aggregate averages may
            # arrive as scaled floats — both divide out the scale.
            if self.scale:
                return float(value) / 10**self.scale
            return int(value)
        if self.kind is TypeKind.FLOAT:
            return float(value)
        if self.kind in (TypeKind.INT, TypeKind.BIGINT):
            return int(value)
        if self.kind is TypeKind.BOOL:
            return bool(value)
        return value

    def __str__(self) -> str:
        if self.kind is TypeKind.DECIMAL:
            return f"DECIMAL(18,{self.scale})"
        if self.kind is TypeKind.VARCHAR:
            return f"VARCHAR({self.length})" if self.length else "VARCHAR"
        return self.kind.value.upper()


# Convenience singletons for the common parameterless types.
INT = DataType(TypeKind.INT)
BIGINT = DataType(TypeKind.BIGINT)
FLOAT = DataType(TypeKind.FLOAT)
VARCHAR = DataType(TypeKind.VARCHAR)
DATE = DataType(TypeKind.DATE)
BOOL = DataType(TypeKind.BOOL)


def decimal(scale: int) -> DataType:
    """A DECIMAL type with the given fractional-digit scale."""
    return DataType(TypeKind.DECIMAL, scale=scale)


def varchar(length: int) -> DataType:
    """A VARCHAR type with a declared maximum length."""
    return DataType(TypeKind.VARCHAR, length=length)


def common_numeric_type(left: DataType, right: DataType) -> DataType:
    """The result type of an arithmetic operation over two numeric types.

    Follows the usual widening lattice: INT < BIGINT < DECIMAL < FLOAT.
    Mixed decimal scales widen to the larger scale.
    """
    if not (left.is_numeric and right.is_numeric):
        raise TypeMismatchError(f"cannot combine {left} and {right} numerically")
    if TypeKind.FLOAT in (left.kind, right.kind):
        return FLOAT
    if TypeKind.DECIMAL in (left.kind, right.kind):
        return decimal(max(left.scale, right.scale))
    if TypeKind.BIGINT in (left.kind, right.kind):
        return BIGINT
    return INT
