"""repro — columnstore indexes and batch-mode query processing.

A from-scratch Python reproduction of *"Enhancements to SQL Server Column
Stores"* (Larson et al., SIGMOD 2013): updatable columnstore indexes
(row groups, column segments, dictionary/value/RLE/bit-pack encodings,
delta stores, delete bitmaps, the tuple mover, archival compression) and a
batch-mode vectorized execution engine (columnstore scans with segment
elimination and bitmap pushdown, hash joins and aggregations with
spilling) next to a classic row-store + row-mode baseline.

Quickstart::

    from repro import Database

    db = Database()
    db.sql("CREATE TABLE sales (id INT NOT NULL, region VARCHAR, amount FLOAT)")
    db.sql("INSERT INTO sales VALUES (1, 'east', 10.5), (2, 'west', 20.0)")
    result = db.sql("SELECT region, SUM(amount) AS total FROM sales GROUP BY region")
    print(result.rows)
"""

from . import types
from .concurrency import ConcurrentDatabase, Session
from .db.catalog import StorageKind, Table
from .db.database import Database, Result
from .errors import (
    ConcurrencyError,
    CorruptBlobError,
    RecoveryError,
    ReproError,
    TxnError,
)
from .observability import ExecutionStats, MetricsRegistry, get_registry
from .schema import ColumnDef, TableSchema, schema
from .storage.columnstore import ColumnStoreIndex
from .storage.config import StoreConfig

__version__ = "1.0.0"

__all__ = [
    "ColumnDef",
    "ColumnStoreIndex",
    "ConcurrencyError",
    "ConcurrentDatabase",
    "CorruptBlobError",
    "Database",
    "ExecutionStats",
    "MetricsRegistry",
    "RecoveryError",
    "ReproError",
    "Result",
    "Session",
    "StorageKind",
    "StoreConfig",
    "Table",
    "TableSchema",
    "TxnError",
    "get_registry",
    "schema",
    "types",
]
