"""Query planning: logical algebra, rewrite rules, costing, physical plans.

The optimizer implements the paper's planning enhancements: predicate
pushdown into columnstore scans, star-join detection with bitmap-filter
placement, build/probe side selection by estimated cardinality, and
batch-vs-row execution mode selection per plan fragment.
"""

from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from .optimizer import Optimizer, PhysicalPlan

__all__ = [
    "LogicalAggregate",
    "LogicalFilter",
    "LogicalJoin",
    "LogicalLimit",
    "LogicalNode",
    "LogicalProject",
    "LogicalScan",
    "LogicalSort",
    "Optimizer",
    "PhysicalPlan",
]
