"""Logical query plan nodes.

A small relational algebra: scan, filter, project, equi-join, aggregate,
sort, limit. Column names in a plan are unique end to end — the binder (or
query builder) qualifies ambiguous names before planning, so joins never
produce duplicate columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import PlanningError
from ..exec.expressions import Expr
from ..exec.operators.hash_aggregate import AggregateSpec
from ..exec.operators.window import WindowSpec


class LogicalNode:
    """Base class of logical plan nodes."""

    def children(self) -> Sequence["LogicalNode"]:
        return ()

    def output_names(self) -> list[str]:
        raise NotImplementedError

    def explain_lines(self, depth: int = 0) -> list[str]:
        pad = "  " * depth
        lines = [f"{pad}{self}"]
        for child in self.children():
            lines.extend(child.explain_lines(depth + 1))
        return lines


@dataclass
class LogicalScan(LogicalNode):
    """Scan of a named table.

    ``projections`` maps plan-level output names to storage column names
    (identity unless the binder qualified names). ``predicate`` holds
    pushed-down conjuncts over *plan-level* names.
    """

    table: str
    projections: dict[str, str]
    predicate: Expr | None = None

    def output_names(self) -> list[str]:
        return list(self.projections)

    def __str__(self) -> str:
        pred = f", predicate={self.predicate}" if self.predicate is not None else ""
        return f"Scan({self.table}{pred})"


@dataclass
class LogicalFilter(LogicalNode):
    child: LogicalNode
    predicate: Expr

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def __str__(self) -> str:
        return f"Filter({self.predicate})"


@dataclass
class LogicalProject(LogicalNode):
    child: LogicalNode
    projections: list[tuple[str, Expr]]

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def output_names(self) -> list[str]:
        return [name for name, _ in self.projections]

    def __str__(self) -> str:
        inner = ", ".join(f"{n}={e}" for n, e in self.projections)
        return f"Project({inner})"


@dataclass
class LogicalJoin(LogicalNode):
    """Equi-join on column-name pairs; left child is the probe side by
    convention (the optimizer may swap sides)."""

    left: LogicalNode
    right: LogicalNode
    left_keys: list[str]
    right_keys: list[str]
    join_type: str = "inner"  # inner | left | right | full | semi | anti
    use_bitmap: bool | None = None  # None = let the optimizer decide

    def __post_init__(self) -> None:
        if len(self.left_keys) != len(self.right_keys) or not self.left_keys:
            raise PlanningError("join requires equal-length, non-empty key lists")

    def children(self) -> Sequence[LogicalNode]:
        return (self.left, self.right)

    def output_names(self) -> list[str]:
        if self.join_type in ("semi", "anti"):
            return self.left.output_names()
        return self.left.output_names() + self.right.output_names()

    def __str__(self) -> str:
        keys = ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))
        return f"Join({self.join_type}, {keys}, bitmap={self.use_bitmap})"


@dataclass
class LogicalAggregate(LogicalNode):
    """GROUP BY over plan columns plus aggregate specs.

    ``group_keys`` name existing child columns (the binder projects
    computed grouping expressions first).
    """

    child: LogicalNode
    group_keys: list[str]
    aggregates: list[AggregateSpec] = field(default_factory=list)

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def output_names(self) -> list[str]:
        return [*self.group_keys, *(s.name for s in self.aggregates)]

    def __str__(self) -> str:
        aggs = ", ".join(f"{s.func} AS {s.name}" for s in self.aggregates)
        return f"Aggregate(keys={self.group_keys}, aggs=[{aggs}])"


@dataclass
class LogicalWindow(LogicalNode):
    """Window functions over the child: every spec appends one column.

    The operator preserves the child's row order; a Sort above it (bound
    from ORDER BY) establishes the presentation order.
    """

    child: LogicalNode
    specs: list[WindowSpec]

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def output_names(self) -> list[str]:
        return [*self.child.output_names(), *(s.name for s in self.specs)]

    def __str__(self) -> str:
        inner = ", ".join(f"{s.func} AS {s.name}" for s in self.specs)
        return f"Window({inner})"


@dataclass
class LogicalSort(LogicalNode):
    child: LogicalNode
    keys: list[tuple[str, bool]]  # (column, descending)

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def __str__(self) -> str:
        inner = ", ".join(f"{n}{' DESC' if d else ''}" for n, d in self.keys)
        return f"Sort({inner})"


@dataclass
class LogicalLimit(LogicalNode):
    child: LogicalNode
    limit: int

    def children(self) -> Sequence[LogicalNode]:
        return (self.child,)

    def output_names(self) -> list[str]:
        return self.child.output_names()

    def __str__(self) -> str:
        return f"Limit({self.limit})"
