"""Statistics and cardinality estimation.

Table statistics come straight from the storage layer: segment metadata
(row counts, min/max) for columnstores, page accounting for row stores,
plus cheap NDV estimates from global dictionaries. Selectivity heuristics
follow the classical System-R defaults the paper's optimizer also leans on
when histograms run out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..exec.expressions import (
    Between,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Not,
    Or,
)
from ..exec.predicates import split_conjuncts

EQ_DEFAULT_SELECTIVITY = 0.05
RANGE_DEFAULT_SELECTIVITY = 1 / 3
LIKE_DEFAULT_SELECTIVITY = 0.1
NULL_DEFAULT_SELECTIVITY = 0.02


@dataclass
class HistogramBucket:
    """One bucket: value range plus the rows it holds."""

    low: Any
    high: Any
    rows: int


@dataclass
class Histogram:
    """A range histogram assembled from segment [min, max] metadata.

    Every compressed segment contributes one bucket (its value range and
    row count) — the directory already stores this, so the histogram is
    free to build and mirrors how SQL Server leans on segment metadata
    when estimating range predicates over columnstores. Buckets overlap;
    within a bucket values are assumed uniform.
    """

    buckets: list[HistogramBucket] = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        return sum(bucket.rows for bucket in self.buckets)

    def range_fraction(self, low: Any, high: Any) -> float:
        """Estimated fraction of rows with ``low <= value <= high``."""
        total = self.total_rows
        if total == 0:
            return RANGE_DEFAULT_SELECTIVITY
        covered = 0.0
        for bucket in self.buckets:
            covered += bucket.rows * _bucket_overlap(bucket, low, high)
        return max(0.0, min(1.0, covered / total))


def _bucket_overlap(bucket: HistogramBucket, low: Any, high: Any) -> float:
    """Fraction of a bucket's rows inside [low, high] (uniform assumption)."""
    b_low, b_high = bucket.low, bucket.high
    if b_low is None or b_high is None:
        return 0.0
    try:
        b_low_f, b_high_f = float(b_low), float(b_high)
        low_f = float(low) if low is not None else b_low_f
        high_f = float(high) if high is not None else b_high_f
    except (TypeError, ValueError):
        # Non-numeric (string) buckets: all-or-nothing containment check.
        if (low is None or b_high >= low) and (high is None or b_low <= high):
            return 1.0
        return 0.0
    if high_f < b_low_f or low_f > b_high_f:
        return 0.0
    if b_high_f == b_low_f:
        return 1.0
    span = b_high_f - b_low_f
    overlap = min(high_f, b_high_f) - max(low_f, b_low_f)
    return max(0.0, min(1.0, overlap / span))


@dataclass
class ColumnStats:
    """Per-column statistics used for selectivity estimation."""

    min_value: Any = None
    max_value: Any = None
    ndv: int | None = None
    null_fraction: float = 0.0
    histogram: Histogram | None = None


@dataclass
class TableStats:
    """Statistics of one stored table."""

    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        return self.columns.get(name, ColumnStats())


def selectivity(predicate: Expr | None, stats: TableStats) -> float:
    """Estimated fraction of rows satisfying ``predicate``."""
    if predicate is None:
        return 1.0
    result = 1.0
    for conjunct in split_conjuncts(predicate):
        result *= _conjunct_selectivity(conjunct, stats)
    return max(min(result, 1.0), 1e-9)


def _conjunct_selectivity(expr: Expr, stats: TableStats) -> float:
    if isinstance(expr, Comparison):
        return _comparison_selectivity(expr, stats)
    if isinstance(expr, Between):
        return _range_fraction_between(expr, stats)
    if isinstance(expr, InList):
        refs = expr.referenced_columns()
        if len(refs) == 1:
            col_stats = stats.column(next(iter(refs)))
            if col_stats.ndv:
                return min(1.0, len(expr.values) / col_stats.ndv)
        return min(1.0, len(expr.values) * EQ_DEFAULT_SELECTIVITY)
    if isinstance(expr, Like):
        return LIKE_DEFAULT_SELECTIVITY
    if isinstance(expr, IsNull):
        refs = expr.referenced_columns()
        base = NULL_DEFAULT_SELECTIVITY
        if len(refs) == 1:
            base = stats.column(next(iter(refs))).null_fraction or NULL_DEFAULT_SELECTIVITY
        return 1.0 - base if expr.negated else base
    if isinstance(expr, Not):
        return max(0.0, 1.0 - _conjunct_selectivity(expr.operand, stats))
    if isinstance(expr, Or):
        miss = 1.0
        for disjunct in expr.disjuncts:
            miss *= 1.0 - _conjunct_selectivity(disjunct, stats)
        return 1.0 - miss
    return 0.5  # unknown shapes: coin flip


def _comparison_selectivity(cmp: Comparison, stats: TableStats) -> float:
    from ..exec.predicates import _normalize_comparison

    column, literal, op = _normalize_comparison(cmp)
    if column is None:
        return 0.5 if cmp.op != "=" else 0.1
    col_stats = stats.column(column)
    if op == "=":
        if col_stats.ndv:
            return 1.0 / col_stats.ndv
        return EQ_DEFAULT_SELECTIVITY
    if op == "!=":
        if col_stats.ndv:
            return 1.0 - 1.0 / col_stats.ndv
        return 1.0 - EQ_DEFAULT_SELECTIVITY
    return _range_fraction(col_stats, literal, op)


def _range_fraction(col_stats: ColumnStats, literal: Any, op: str) -> float:
    if col_stats.histogram is not None and col_stats.histogram.buckets:
        if op in ("<", "<="):
            return col_stats.histogram.range_fraction(None, literal)
        return col_stats.histogram.range_fraction(literal, None)
    low, high = col_stats.min_value, col_stats.max_value
    if (
        low is None
        or high is None
        or isinstance(low, str)
        or isinstance(high, str)
        or high == low
    ):
        return RANGE_DEFAULT_SELECTIVITY
    try:
        span = float(high) - float(low)
        if op in ("<", "<="):
            fraction = (float(literal) - float(low)) / span
        else:
            fraction = (float(high) - float(literal)) / span
    except (TypeError, ValueError):
        return RANGE_DEFAULT_SELECTIVITY
    return max(0.0, min(1.0, fraction))


def _range_fraction_between(expr: Between, stats: TableStats) -> float:
    from ..exec.expressions import Column, Literal

    if not (
        isinstance(expr.operand, Column)
        and isinstance(expr.low, Literal)
        and isinstance(expr.high, Literal)
    ):
        return RANGE_DEFAULT_SELECTIVITY
    col_stats = stats.column(expr.operand.name)
    if col_stats.histogram is not None and col_stats.histogram.buckets:
        return col_stats.histogram.range_fraction(expr.low.value, expr.high.value)
    low, high = col_stats.min_value, col_stats.max_value
    if (
        low is None
        or high is None
        or isinstance(low, str)
        or isinstance(high, str)
        or high == low
    ):
        return RANGE_DEFAULT_SELECTIVITY
    try:
        span = float(high) - float(low)
        # Clamp the BETWEEN range to its overlap with [min, max]: literals
        # outside the column's domain must not inflate the fraction.
        overlap = min(float(expr.high.value), float(high)) - max(
            float(expr.low.value), float(low)
        )
    except (TypeError, ValueError):
        return RANGE_DEFAULT_SELECTIVITY
    return max(0.0, min(1.0, overlap / span))


def join_cardinality(
    left_rows: float, right_rows: float, left_ndv: int | None, right_ndv: int | None
) -> float:
    """Classic equi-join estimate: |L|*|R| / max(ndv(L), ndv(R))."""
    ndv = max(left_ndv or 0, right_ndv or 0)
    if ndv <= 0:
        ndv = max(1, int(min(left_rows, right_rows)))
    return left_rows * right_rows / ndv
