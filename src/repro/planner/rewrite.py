"""Expression rewriting utilities used by the optimizer and binder."""

from __future__ import annotations

from typing import Callable

from ..errors import PlanningError
from ..exec.expressions import (
    And,
    Arithmetic,
    Between,
    Case,
    Column,
    Comparison,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)


def rename_columns(expr: Expr, mapping: dict[str, str]) -> Expr:
    """A copy of ``expr`` with column names substituted via ``mapping``.

    Names absent from the mapping are kept. The input tree is not
    modified.
    """

    def rebuild(node: Expr) -> Expr:
        if isinstance(node, Column):
            return Column(mapping.get(node.name, node.name))
        if isinstance(node, Literal):
            return Literal(node.value, node.dtype)
        if isinstance(node, Arithmetic):
            return Arithmetic(node.op, rebuild(node.left), rebuild(node.right))
        if isinstance(node, Comparison):
            return Comparison(node.op, rebuild(node.left), rebuild(node.right))
        if isinstance(node, And):
            return And(*[rebuild(c) for c in node.conjuncts])
        if isinstance(node, Or):
            return Or(*[rebuild(d) for d in node.disjuncts])
        if isinstance(node, Not):
            return Not(rebuild(node.operand))
        if isinstance(node, IsNull):
            return IsNull(rebuild(node.operand), node.negated)
        if isinstance(node, Between):
            return Between(rebuild(node.operand), rebuild(node.low), rebuild(node.high))
        if isinstance(node, InList):
            return InList(rebuild(node.operand), node.values, node.has_null)
        if isinstance(node, Like):
            return Like(rebuild(node.operand), node.pattern, node.negated)
        if isinstance(node, Case):
            branches = [(rebuild(c), rebuild(v)) for c, v in node.branches]
            default = rebuild(node.default) if node.default is not None else None
            return Case(branches, default)
        if isinstance(node, FunctionCall):
            return FunctionCall(node.name, *[rebuild(o) for o in node.operands])
        raise PlanningError(f"cannot rewrite expression node {type(node).__name__}")

    return rebuild(expr)


def map_expression(expr: Expr, leaf_fn: Callable[[Expr], Expr | None]) -> Expr:
    """Generic bottom-up rewrite: ``leaf_fn`` may replace any node.

    ``leaf_fn`` returns a replacement node or ``None`` to keep the
    (rebuilt) original.
    """

    def rebuild(node: Expr) -> Expr:
        replaced = leaf_fn(node)
        if replaced is not None:
            return replaced
        if isinstance(node, (Column, Literal)):
            return node
        if isinstance(node, Arithmetic):
            return Arithmetic(node.op, rebuild(node.left), rebuild(node.right))
        if isinstance(node, Comparison):
            return Comparison(node.op, rebuild(node.left), rebuild(node.right))
        if isinstance(node, And):
            return And(*[rebuild(c) for c in node.conjuncts])
        if isinstance(node, Or):
            return Or(*[rebuild(d) for d in node.disjuncts])
        if isinstance(node, Not):
            return Not(rebuild(node.operand))
        if isinstance(node, IsNull):
            return IsNull(rebuild(node.operand), node.negated)
        if isinstance(node, Between):
            return Between(rebuild(node.operand), rebuild(node.low), rebuild(node.high))
        if isinstance(node, InList):
            return InList(rebuild(node.operand), node.values, node.has_null)
        if isinstance(node, Like):
            return Like(rebuild(node.operand), node.pattern, node.negated)
        if isinstance(node, Case):
            branches = [(rebuild(c), rebuild(v)) for c, v in node.branches]
            default = rebuild(node.default) if node.default is not None else None
            return Case(branches, default)
        if isinstance(node, FunctionCall):
            return FunctionCall(node.name, *[rebuild(o) for o in node.operands])
        raise PlanningError(f"cannot rewrite expression node {type(node).__name__}")

    return rebuild(expr)
