"""Output-type inference over logical plans.

Walks a logical plan bottom-up to determine the :class:`DataType` of every
output column — used by the database facade to present physical values
(scaled decimals, day-number dates) as Python values.
"""

from __future__ import annotations

from ..errors import PlanningError
from ..exec.operators.hash_aggregate import COUNT_STAR
from ..exec.operators.window import RANKING_FUNCS
from ..types import BIGINT, FLOAT, DataType, TypeKind
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalWindow,
)
from .physical import CatalogView


def infer_output_dtypes(node: LogicalNode, catalog: CatalogView) -> dict[str, DataType]:
    """Map each output column of ``node`` to its DataType."""
    if isinstance(node, LogicalScan):
        schema = catalog.table(node.table).schema
        return {
            plan: schema.dtype(storage) for plan, storage in node.projections.items()
        }
    if isinstance(node, (LogicalFilter, LogicalSort, LogicalLimit)):
        return infer_output_dtypes(node.children()[0], catalog)
    if isinstance(node, LogicalProject):
        child = infer_output_dtypes(node.child, catalog)
        resolver = _make_resolver(child)
        return {name: expr.infer_dtype(resolver) for name, expr in node.projections}
    if isinstance(node, LogicalJoin):
        out = infer_output_dtypes(node.left, catalog)
        if node.join_type not in ("semi", "anti"):
            out.update(infer_output_dtypes(node.right, catalog))
        return out
    if isinstance(node, LogicalAggregate):
        child = infer_output_dtypes(node.child, catalog)
        resolver = _make_resolver(child)
        out = {key: child[key] for key in node.group_keys}
        for spec in node.aggregates:
            out[spec.name] = _aggregate_dtype(spec, resolver)
        return out
    if isinstance(node, LogicalWindow):
        out = infer_output_dtypes(node.child, catalog)
        for spec in node.specs:
            out[spec.name] = _window_dtype(spec, out)
        return out
    raise PlanningError(f"unknown logical node {type(node).__name__}")


def _make_resolver(dtypes: dict[str, DataType]):
    def resolver(name: str) -> DataType:
        try:
            return dtypes[name]
        except KeyError:
            raise PlanningError(f"unknown column {name!r} during type inference") from None

    return resolver


def _aggregate_dtype(spec, resolver) -> DataType:
    if spec.func in (COUNT_STAR, "count"):
        return BIGINT
    arg = spec.expr.infer_dtype(resolver)
    if spec.func in ("min", "max"):
        return arg
    if spec.func == "sum":
        if arg.kind is TypeKind.INT:
            return BIGINT
        return arg
    # AVG: decimals stay scaled (presentation divides), everything else float.
    if arg.kind is TypeKind.DECIMAL:
        return arg
    return FLOAT


def _window_dtype(spec, child: dict[str, DataType]) -> DataType:
    """Output type of a window spec; same rules as the aggregates."""
    if spec.func in RANKING_FUNCS or spec.func in (COUNT_STAR, "count"):
        return BIGINT
    try:
        arg = child[spec.arg]
    except KeyError:
        raise PlanningError(
            f"unknown column {spec.arg!r} during type inference"
        ) from None
    if spec.func in ("min", "max"):
        return arg
    if spec.func == "sum":
        return BIGINT if arg.kind is TypeKind.INT else arg
    if arg.kind is TypeKind.DECIMAL:
        return arg
    return FLOAT
