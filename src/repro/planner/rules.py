"""Logical rewrite rules.

The optimizer applies, in order: filter pushdown (conjuncts sink to the
deepest node that has their columns — into the scan itself when
single-table), column pruning (scans read only what the plan needs),
build-side selection for joins and bitmap-filter placement for star joins.
"""

from __future__ import annotations

from typing import Callable

from ..errors import PlanningError
from ..exec.expressions import Expr
from ..exec.predicates import combine_conjuncts, split_conjuncts
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalWindow,
)
from .stats import TableStats

# Joins whose estimated build side is below this many rows, or below this
# fraction of the probe side, get a pushed-down bitmap filter.
BITMAP_MAX_BUILD_ROWS = 1_000_000
BITMAP_BUILD_PROBE_RATIO = 0.5


# ---------------------------------------------------------------------- #
# Filter pushdown
# ---------------------------------------------------------------------- #
def push_filters(node: LogicalNode) -> LogicalNode:
    """Sink filter conjuncts as deep as their column references allow."""
    return _push(node, [])


def _push(node: LogicalNode, pending: list[Expr]) -> LogicalNode:
    if isinstance(node, LogicalFilter):
        return _push(node.child, pending + split_conjuncts(node.predicate))

    if isinstance(node, LogicalScan):
        conjuncts = split_conjuncts(node.predicate) + pending
        node.predicate = combine_conjuncts(conjuncts)
        return node

    if isinstance(node, LogicalJoin):
        left_names = set(node.left.output_names())
        right_names = set(node.right.output_names())
        # A conjunct may sink below a join only on sides the join does not
        # null-extend: LEFT joins null-extend the right side, RIGHT joins
        # the left side, FULL joins both.
        left_pushable = node.join_type in ("inner", "left", "semi", "anti")
        right_pushable = node.join_type in ("inner", "right")
        to_left: list[Expr] = []
        to_right: list[Expr] = []
        stay: list[Expr] = []
        for conjunct in pending:
            refs = conjunct.referenced_columns()
            if refs <= left_names and left_pushable:
                to_left.append(conjunct)
            elif refs <= right_names and right_pushable:
                to_right.append(conjunct)
            else:
                stay.append(conjunct)
        node.left = _push(node.left, to_left)
        node.right = _push(node.right, to_right)
        return _wrap_filter(node, stay)

    if isinstance(node, LogicalProject):
        # Push conjuncts that only reference pass-through columns.
        passthrough = {
            name: expr
            for name, expr in node.projections
            if _is_column(expr)
        }
        pushable: list[Expr] = []
        stay = []
        from .rewrite import rename_columns

        for conjunct in pending:
            refs = conjunct.referenced_columns()
            if refs <= set(passthrough):
                mapping = {name: passthrough[name].name for name in refs}
                pushable.append(rename_columns(conjunct, mapping))
            else:
                stay.append(conjunct)
        node.child = _push(node.child, pushable)
        return _wrap_filter(node, stay)

    if isinstance(node, LogicalWindow):
        # A window's value depends on every row of its partition, so no
        # conjunct may sink below it; deeper filters still push.
        node.child = _push(node.child, [])
        return _wrap_filter(node, pending)

    if isinstance(node, (LogicalSort, LogicalLimit, LogicalAggregate)):
        if isinstance(node, LogicalAggregate):
            # Only group-key conjuncts may cross an aggregate.
            keys = set(node.group_keys)
            pushable = [c for c in pending if c.referenced_columns() <= keys]
            stay = [c for c in pending if c not in pushable]
            node.child = _push(node.child, pushable)
            return _wrap_filter(node, stay)
        node.child = _push(node.child, pending)
        return node

    return _wrap_filter(node, pending)


def _is_column(expr: Expr) -> bool:
    from ..exec.expressions import Column

    return isinstance(expr, Column)


def _wrap_filter(node: LogicalNode, conjuncts: list[Expr]) -> LogicalNode:
    predicate = combine_conjuncts(conjuncts)
    if predicate is None:
        return node
    return LogicalFilter(node, predicate)


# ---------------------------------------------------------------------- #
# Column pruning
# ---------------------------------------------------------------------- #
def prune_columns(node: LogicalNode, required: set[str] | None = None) -> LogicalNode:
    """Restrict every scan to the columns the plan actually uses."""
    if required is None:
        required = set(node.output_names())

    if isinstance(node, LogicalScan):
        needed = set(required)
        if node.predicate is not None:
            needed |= node.predicate.referenced_columns()
        pruned = {
            name: storage
            for name, storage in node.projections.items()
            if name in needed
        }
        if not pruned:
            # A plan that needs no columns from this scan (SELECT 1 FROM t,
            # EXISTS probes) still needs the scan to drive cardinality:
            # keep one column rather than producing an empty batch schema.
            first = next(iter(node.projections), None)
            if first is None:
                raise PlanningError(f"scan of {node.table} would produce no columns")
            pruned = {first: node.projections[first]}
        node.projections = pruned
        return node

    if isinstance(node, LogicalFilter):
        node.child = prune_columns(
            node.child, required | node.predicate.referenced_columns()
        )
        return node

    if isinstance(node, LogicalProject):
        node.projections = [(n, e) for n, e in node.projections if n in required]
        child_needed: set[str] = set()
        for _, expr in node.projections:
            child_needed |= expr.referenced_columns()
        node.child = prune_columns(node.child, child_needed)
        return node

    if isinstance(node, LogicalJoin):
        left_names = set(node.left.output_names())
        right_names = set(node.right.output_names())
        left_req = (required & left_names) | set(node.left_keys)
        right_req = (required & right_names) | set(node.right_keys)
        node.left = prune_columns(node.left, left_req)
        node.right = prune_columns(node.right, right_req)
        return node

    if isinstance(node, LogicalAggregate):
        child_needed = set(node.group_keys)
        for spec in node.aggregates:
            if spec.expr is not None:
                child_needed |= spec.expr.referenced_columns()
        if not child_needed:
            # COUNT(*) over no keys still needs one column to count rows.
            child_names = node.child.output_names()
            child_needed = {child_names[0]}
        node.child = prune_columns(node.child, child_needed)
        return node

    if isinstance(node, LogicalWindow):
        produced = {spec.name for spec in node.specs}
        child_needed = required - produced
        for spec in node.specs:
            if spec.arg is not None:
                child_needed.add(spec.arg)
            child_needed.update(spec.partition_by)
            child_needed.update(column for column, _ in spec.order_by)
        if not child_needed:
            # A bare ROW_NUMBER() over no partition still needs row counts.
            child_needed = {node.child.output_names()[0]}
        node.child = prune_columns(node.child, child_needed)
        return node

    if isinstance(node, LogicalSort):
        node.child = prune_columns(node.child, required | {k for k, _ in node.keys})
        return node

    if isinstance(node, LogicalLimit):
        node.child = prune_columns(node.child, required)
        return node

    raise PlanningError(f"unknown logical node {type(node).__name__}")


# ---------------------------------------------------------------------- #
# Join side selection and bitmap placement
# ---------------------------------------------------------------------- #
def choose_join_sides(
    node: LogicalNode, estimate: Callable[[LogicalNode], float]
) -> LogicalNode:
    """Make the smaller input the build (right) side of each inner join."""
    for attr in ("child", "left", "right"):
        child = getattr(node, attr, None)
        if isinstance(child, LogicalNode):
            setattr(node, attr, choose_join_sides(child, estimate))
    if isinstance(node, LogicalJoin) and node.join_type == "inner":
        if estimate(node.right) > estimate(node.left):
            node.left, node.right = node.right, node.left
            node.left_keys, node.right_keys = node.right_keys, node.left_keys
    return node


def place_bitmaps(
    node: LogicalNode, estimate: Callable[[LogicalNode], float]
) -> LogicalNode:
    """Enable bitmap pushdown on joins with small/selective build sides."""
    for attr in ("child", "left", "right"):
        child = getattr(node, attr, None)
        if isinstance(child, LogicalNode):
            setattr(node, attr, place_bitmaps(child, estimate))
    if isinstance(node, LogicalJoin) and node.use_bitmap is None:
        if node.join_type in ("inner", "semi"):
            build_rows = estimate(node.right)
            probe_rows = max(1.0, estimate(node.left))
            node.use_bitmap = (
                build_rows <= BITMAP_MAX_BUILD_ROWS
                and build_rows / probe_rows <= BITMAP_BUILD_PROBE_RATIO
            )
        else:
            node.use_bitmap = False
    return node
