"""Physical plan construction: logical nodes → executable operators.

Implements the paper's mode selection: fragments rooted in columnstore
scans run in batch mode, row-store fragments run in row mode, and adapters
bridge the two (mixed-mode plans). ``mode`` can force everything to batch
or row for the E3/E4 comparisons.

Bitmap-filter wiring happens here: when a join was marked ``use_bitmap``
and its probe side bottoms out in a columnstore scan that still exposes
the probe key, the join registers itself to push its build-side bitmap
into that scan before probing starts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Protocol

from ..errors import PlanningError
from ..exec.batch import DEFAULT_BATCH_SIZE
from ..exec.expressions import Column
from ..exec.memory import MemoryGrant
from ..exec.operators.exchange import BatchExchange
from ..exec.operators.filter import BatchFilter
from ..exec.operators.hash_aggregate import BatchHashAggregate
from ..exec.operators.hash_join import BatchHashJoin
from ..exec.operators.project import BatchProject
from ..exec.operators.scan import ColumnStoreScan, build_encoded_agg_request
from ..exec.operators.sort import BatchSort, BatchTop
from ..exec.operators.window import BatchWindow
from ..exec.row_engine import (
    BatchesToRows,
    RowColumnStoreScan,
    RowFilter,
    RowHashAggregate,
    RowHashJoin,
    RowProject,
    RowSort,
    RowsToBatches,
    RowTableScan,
    RowTop,
    RowWindow,
)
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalWindow,
)
from .rewrite import rename_columns
from .stats import TableStats

BATCH = "batch"
ROW = "row"
AUTO = "auto"
_MODES = {BATCH, ROW, AUTO}


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


def resolve_encoded_eval(explicit: bool | None) -> bool:
    """Encoded predicate evaluation: explicit option wins, then the
    ``REPRO_ENCODED_EVAL`` master switch (default on)."""
    if explicit is not None:
        return explicit
    return _env_flag("REPRO_ENCODED_EVAL", True)


def resolve_encoded_agg(explicit: bool | None) -> bool:
    """Encoded aggregation: explicit option wins, then ``REPRO_ENCODED_AGG``,
    then the ``REPRO_ENCODED_EVAL`` master switch — so one variable turns
    the whole encoded-execution surface on or off for differential runs."""
    if explicit is not None:
        return explicit
    return _env_flag("REPRO_ENCODED_AGG", _env_flag("REPRO_ENCODED_EVAL", True))


class TableSource(Protocol):
    """What the physical builder needs to know about a stored table."""

    name: str

    @property
    def columnstore(self):  # ColumnStoreIndex | None
        ...

    @property
    def rowstore(self):  # RowStoreTable | None
        ...

    def stats(self) -> TableStats:
        ...


class CatalogView(Protocol):
    def table(self, name: str) -> TableSource:
        ...


@dataclass
class PhysResult:
    """A built fragment: its mode, operator, and bitmap-wiring map.

    ``bitmap_map`` maps plan-level column names to (scans, storage column)
    pairs for columns that flow unchanged from a columnstore scan — the
    positions where a join bitmap can be pushed. ``scans`` is a list
    because a parallel scan has one shard per exchange worker.
    """

    mode: str
    op: object  # BatchOperator | RowOperator
    bitmap_map: dict[str, tuple[list[ColumnStoreScan], str]] = field(default_factory=dict)


class PhysicalBuilder:
    """Builds executable operator trees from optimized logical plans."""

    def __init__(
        self,
        catalog: CatalogView,
        mode: str = AUTO,
        grant_bytes: int | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        enable_bitmaps: bool = True,
        enable_segment_elimination: bool = True,
        enable_encoded_eval: bool | None = None,
        enable_encoded_agg: bool | None = None,
        dop: int = 1,
    ) -> None:
        if mode not in _MODES:
            raise PlanningError(f"unknown execution mode {mode!r}")
        if dop < 1:
            raise PlanningError(f"dop must be >= 1, got {dop}")
        self.catalog = catalog
        self.mode = mode
        self.grant_bytes = grant_bytes
        self.batch_size = batch_size
        self.enable_bitmaps = enable_bitmaps
        self.enable_segment_elimination = enable_segment_elimination
        self.enable_encoded_eval = resolve_encoded_eval(enable_encoded_eval)
        self.enable_encoded_agg = resolve_encoded_agg(enable_encoded_agg)
        self.dop = dop

    def _new_grant(self) -> MemoryGrant:
        # The grant binds itself to the active QueryContext (if any), so
        # per-query soft budgets force spilling and hard caps raise even
        # when the explicit grant_bytes default would have fit.
        if self.grant_bytes is None:
            return MemoryGrant()
        return MemoryGrant(self.grant_bytes)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def build(self, node: LogicalNode) -> PhysResult:
        if isinstance(node, LogicalScan):
            return self._build_scan(node)
        if isinstance(node, LogicalFilter):
            return self._build_filter(node)
        if isinstance(node, LogicalProject):
            return self._build_project(node)
        if isinstance(node, LogicalJoin):
            return self._build_join(node)
        if isinstance(node, LogicalAggregate):
            return self._build_aggregate(node)
        if isinstance(node, LogicalWindow):
            return self._build_window(node)
        if isinstance(node, LogicalSort):
            return self._build_sort(node)
        if isinstance(node, LogicalLimit):
            return self._build_limit(node)
        raise PlanningError(f"unknown logical node {type(node).__name__}")

    # ------------------------------------------------------------------ #
    # Scans
    # ------------------------------------------------------------------ #
    def _build_scan(self, node: LogicalScan) -> PhysResult:
        source = self.catalog.table(node.table)
        storage_names = list(dict.fromkeys(node.projections.values()))
        plan_to_storage = dict(node.projections)
        predicate = node.predicate
        storage_predicate = (
            rename_columns(predicate, plan_to_storage) if predicate is not None else None
        )
        use_columnstore = source.columnstore is not None and self.mode != ROW

        if use_columnstore:
            shards = [
                ColumnStoreScan(
                    source.columnstore,
                    storage_names,
                    predicate=storage_predicate,
                    batch_size=self.batch_size,
                    encoded_eval=self.enable_encoded_eval,
                    segment_elimination=self.enable_segment_elimination,
                    shard=(worker, self.dop) if self.dop > 1 else None,
                )
                for worker in range(self.dop)
            ]
            scan_op = shards[0] if self.dop == 1 else BatchExchange(shards)
            op, bitmap_map = self._rename_batch(scan_op, node.projections, shards)
            return PhysResult(BATCH, op, bitmap_map)

        if source.rowstore is not None:
            row_scan = self._rowstore_access_path(
                source, storage_names, storage_predicate
            )
        elif source.columnstore is not None:
            row_scan = RowColumnStoreScan(
                source.columnstore, storage_names, predicate=storage_predicate
            )
        else:
            raise PlanningError(f"table {node.table!r} has no storage")
        op = self._rename_row(row_scan, node.projections)
        if self.mode == BATCH:
            return PhysResult(BATCH, RowsToBatches(op, self.batch_size))
        return PhysResult(ROW, op)

    def _rowstore_access_path(self, source, storage_names, storage_predicate):
        """Heap scan, or a B+tree index seek when a sargable conjunct
        matches an index's leading column (the OLTP access path)."""
        from ..exec.predicates import extract_column_ranges, split_conjuncts
        from ..exec.row_engine import RowIndexSeek

        indexes = getattr(source, "indexes", None) or {}
        if storage_predicate is not None and indexes:
            conjuncts = split_conjuncts(storage_predicate)
            ranges = extract_column_ranges(conjuncts)
            for index in indexes.values():
                leading = index.columns[0]
                rng = ranges.get(leading)
                if rng is None or (rng.low is None and rng.high is None):
                    continue
                return RowIndexSeek(
                    source.rowstore,
                    index,
                    storage_names,
                    low=rng.low,
                    high=rng.high,
                    predicate=storage_predicate,
                )
        return RowTableScan(
            source.rowstore, storage_names, predicate=storage_predicate
        )

    def _rename_batch(self, scan, projections: dict[str, str], bitmap_scans):
        """Rename storage columns to plan names; build the bitmap map."""
        bitmap_map = {
            plan: (bitmap_scans, storage) for plan, storage in projections.items()
        }
        if all(plan == storage for plan, storage in projections.items()):
            return scan, bitmap_map
        projected = BatchProject(
            scan, [(plan, Column(storage)) for plan, storage in projections.items()]
        )
        return projected, bitmap_map

    def _rename_row(self, scan, projections: dict[str, str]):
        if all(plan == storage for plan, storage in projections.items()):
            return scan
        return RowProject(
            scan, [(plan, Column(storage)) for plan, storage in projections.items()]
        )

    # ------------------------------------------------------------------ #
    # Unary operators
    # ------------------------------------------------------------------ #
    def _build_filter(self, node: LogicalFilter) -> PhysResult:
        child = self.build(node.child)
        if child.mode == BATCH:
            return PhysResult(
                BATCH, BatchFilter(child.op, node.predicate), child.bitmap_map
            )
        return PhysResult(ROW, RowFilter(child.op, node.predicate), child.bitmap_map)

    def _build_project(self, node: LogicalProject) -> PhysResult:
        child = self.build(node.child)
        # Pass-through columns keep their bitmap wiring.
        bitmap_map = {}
        for name, expr in node.projections:
            if isinstance(expr, Column) and expr.name in child.bitmap_map:
                bitmap_map[name] = child.bitmap_map[expr.name]
        if child.mode == BATCH:
            return PhysResult(BATCH, BatchProject(child.op, node.projections), bitmap_map)
        return PhysResult(ROW, RowProject(child.op, node.projections), bitmap_map)

    def _build_aggregate(self, node: LogicalAggregate) -> PhysResult:
        child = self.build(node.child)
        if child.mode == BATCH:
            op = BatchHashAggregate(
                child.op,
                node.group_keys,
                node.aggregates,
                grant=self._new_grant(),
                batch_size=self.batch_size,
            )
            # Aggregates sitting directly on an unsharded columnstore scan
            # can pull encoded units (code-space keys, weighted runs)
            # instead of decoded batches; the scan still falls back per
            # unit for deltas and ineligible segments at runtime.
            if (
                self.enable_encoded_agg
                and isinstance(child.op, ColumnStoreScan)
                and child.op.shard is None
                and not child.op.include_locators
            ):
                op.encoded_request = build_encoded_agg_request(
                    node.group_keys, node.aggregates, child.op.columns
                )
            return PhysResult(BATCH, op)
        return PhysResult(ROW, RowHashAggregate(child.op, node.group_keys, node.aggregates))

    def _build_window(self, node: LogicalWindow) -> PhysResult:
        child = self.build(node.child)
        if child.mode == BATCH:
            op = BatchWindow(
                child.op, node.specs, self.batch_size, grant=self._new_grant()
            )
            return PhysResult(BATCH, op)
        return PhysResult(ROW, RowWindow(child.op, node.specs))

    def _build_sort(self, node: LogicalSort) -> PhysResult:
        child = self.build(node.child)
        if child.mode == BATCH:
            op = BatchSort(
                child.op, node.keys, self.batch_size, grant=self._new_grant()
            )
            return PhysResult(BATCH, op)
        return PhysResult(ROW, RowSort(child.op, node.keys))

    def _build_limit(self, node: LogicalLimit) -> PhysResult:
        keys = None
        child_node = node.child
        if isinstance(child_node, LogicalSort):
            # Fuse Sort + Limit into TOP-N.
            keys = child_node.keys
            child = self.build(child_node.child)
        else:
            child = self.build(child_node)
        if child.mode == BATCH:
            return PhysResult(BATCH, BatchTop(child.op, node.limit, keys=keys))
        return PhysResult(ROW, RowTop(child.op, node.limit, keys=keys))

    # ------------------------------------------------------------------ #
    # Joins
    # ------------------------------------------------------------------ #
    def _build_join(self, node: LogicalJoin) -> PhysResult:
        probe = self.build(node.left)
        build = self.build(node.right)
        join_type = node.join_type

        if probe.mode == ROW and build.mode == ROW and self.mode != BATCH:
            op = RowHashJoin(
                build.op, probe.op, node.right_keys, node.left_keys, join_type
            )
            return PhysResult(ROW, op, dict(probe.bitmap_map))

        probe_op = (
            probe.op if probe.mode == BATCH else RowsToBatches(probe.op, self.batch_size)
        )
        build_op = (
            build.op if build.mode == BATCH else RowsToBatches(build.op, self.batch_size)
        )
        bitmap_target = None
        bitmap_column = None
        if (
            self.enable_bitmaps
            and node.use_bitmap
            and node.left_keys[0] in probe.bitmap_map
        ):
            bitmap_target, bitmap_column = probe.bitmap_map[node.left_keys[0]]
        op = BatchHashJoin(
            build=build_op,
            probe=probe_op,
            build_keys=node.right_keys,
            probe_keys=node.left_keys,
            join_type=join_type,
            grant=self._new_grant(),
            create_bitmap=self.enable_bitmaps and bool(node.use_bitmap),
            bitmap_target=bitmap_target,
            bitmap_column=bitmap_column,
            batch_size=self.batch_size,
        )
        # Probe-side bitmap wiring survives the join (fact columns pass through).
        return PhysResult(BATCH, op, dict(probe.bitmap_map))
