"""The optimizer: rewrites a logical plan and emits a physical plan."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..exec.operators.base import BatchOperator
from ..exec.row_engine import RowOperator
from ..observability import ExecutionStats, get_registry, opstats, snapshot_delta
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalWindow,
)
from .physical import AUTO, CatalogView, PhysicalBuilder
from .rules import choose_join_sides, place_bitmaps, prune_columns, push_filters
from .stats import join_cardinality, selectivity


@dataclass
class PhysicalPlan:
    """An executable plan: root operator plus result column names."""

    root: Any  # BatchOperator | RowOperator
    mode: str
    columns: list[str]
    logical: LogicalNode

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Execute and yield result rows as tuples (physical values)."""
        if isinstance(self.root, BatchOperator):
            for batch in self.root.batches():
                yield from batch.to_rows()
        else:
            assert isinstance(self.root, RowOperator)
            names = self.columns
            for row in self.root.rows():
                yield tuple(row[name] for name in names)

    def explain(self) -> str:
        physical = "\n".join(self.root.explain_lines())
        logical = "\n".join(self.logical.explain_lines())
        return f"-- logical --\n{logical}\n-- physical ({self.mode} mode) --\n{physical}"

    def run_with_stats(self) -> tuple[list[tuple[Any, ...]], ExecutionStats]:
        """Execute with per-operator stats collection on.

        Returns the materialized physical rows plus the
        :class:`ExecutionStats` handle: the operator tree annotated with
        runtime counters (via the instrumented iterators every operator
        inherits) and the metrics-registry delta over the execution
        (segment eliminations, cache hits, spill bytes, ...).
        """
        import time

        registry = get_registry()
        before = registry.snapshot()
        with opstats.collect():
            start = time.perf_counter()
            rows = list(self.rows())
            elapsed = time.perf_counter() - start
        counters = snapshot_delta(before, registry.snapshot())
        stats = ExecutionStats.capture(
            self.root,
            mode=self.mode,
            elapsed_seconds=elapsed,
            row_count=len(rows),
            counters=counters,
        )
        return rows, stats

    def explain_analyze(self) -> str:
        """Execute the plan, then render it annotated with runtime stats.

        EXPLAIN ANALYZE for this engine: every operator reports actual
        rows/batches/inclusive time (plus grant peaks and spill bytes),
        operator-specific counters — row groups eliminated, bitmap
        rejections, spill activity — and the storage-counter delta.
        """
        _, stats = self.run_with_stats()
        return stats.render()


class Optimizer:
    """Rule pipeline + cardinality estimation + physical building."""

    def __init__(self, catalog: CatalogView) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------ #
    # Cardinality estimation
    # ------------------------------------------------------------------ #
    def estimate_rows(self, node: LogicalNode) -> float:
        if isinstance(node, LogicalScan):
            stats = self.catalog.table(node.table).stats()
            predicate = node.predicate
            if predicate is not None:
                from .rewrite import rename_columns

                predicate = rename_columns(predicate, dict(node.projections))
            return stats.row_count * selectivity(predicate, stats)
        if isinstance(node, LogicalFilter):
            # Post-pushdown residual filters: use default selectivities
            # against empty column stats.
            from .stats import TableStats

            return self.estimate_rows(node.child) * selectivity(
                node.predicate, TableStats()
            )
        if isinstance(node, LogicalJoin):
            left = self.estimate_rows(node.left)
            right = self.estimate_rows(node.right)
            if node.join_type == "semi":
                return left * 0.5
            if node.join_type == "anti":
                return left * 0.5
            ndv_left = self._key_ndv(node.left, node.left_keys[0])
            ndv_right = self._key_ndv(node.right, node.right_keys[0])
            cardinality = join_cardinality(left, right, ndv_left, ndv_right)
            if node.join_type == "left":
                cardinality = max(cardinality, left)
            return cardinality
        if isinstance(node, LogicalAggregate):
            child = self.estimate_rows(node.child)
            if not node.group_keys:
                return 1.0
            ndv = 1.0
            for key in node.group_keys:
                ndv *= self._key_ndv(node.child, key) or 100
            return min(child, ndv)
        if isinstance(node, LogicalLimit):
            return min(self.estimate_rows(node.child), float(node.limit))
        if isinstance(node, (LogicalProject, LogicalSort, LogicalWindow)):
            return self.estimate_rows(node.children()[0])
        return 1000.0

    def _key_ndv(self, node: LogicalNode, column: str) -> int | None:
        """NDV of a column if it traces back to a base-table scan."""
        if isinstance(node, LogicalScan):
            storage = node.projections.get(column)
            if storage is None:
                return None
            return self.catalog.table(node.table).stats().column(storage).ndv
        if isinstance(node, (LogicalFilter, LogicalSort, LogicalLimit)):
            return self._key_ndv(node.children()[0], column)
        if isinstance(node, LogicalProject):
            from ..exec.expressions import Column

            for name, expr in node.projections:
                if name == column and isinstance(expr, Column):
                    return self._key_ndv(node.child, expr.name)
            return None
        if isinstance(node, LogicalJoin):
            return self._key_ndv(node.left, column) or self._key_ndv(node.right, column)
        return None

    # ------------------------------------------------------------------ #
    # Pipeline
    # ------------------------------------------------------------------ #
    def optimize(self, plan: LogicalNode) -> LogicalNode:
        plan = push_filters(plan)
        plan = prune_columns(plan)
        plan = choose_join_sides(plan, self.estimate_rows)
        plan = place_bitmaps(plan, self.estimate_rows)
        return plan

    def compile(
        self,
        plan: LogicalNode,
        mode: str = AUTO,
        grant_bytes: int | None = None,
        batch_size: int | None = None,
        enable_bitmaps: bool = True,
        enable_segment_elimination: bool = True,
        enable_encoded_eval: bool | None = None,
        enable_encoded_agg: bool | None = None,
        dop: int = 1,
        optimize: bool = True,
    ) -> PhysicalPlan:
        """Optimize (optionally) and build an executable physical plan.

        ``enable_encoded_eval`` / ``enable_encoded_agg`` default to the
        ``REPRO_ENCODED_EVAL`` / ``REPRO_ENCODED_AGG`` environment switches
        (on unless set to ``0``/``false``/``no``/``off``).
        """
        if optimize:
            plan = self.optimize(plan)
        builder_args = dict(
            mode=mode,
            grant_bytes=grant_bytes,
            enable_bitmaps=enable_bitmaps,
            enable_segment_elimination=enable_segment_elimination,
            enable_encoded_eval=enable_encoded_eval,
            enable_encoded_agg=enable_encoded_agg,
            dop=dop,
        )
        if batch_size is not None:
            builder_args["batch_size"] = batch_size
        builder = PhysicalBuilder(self.catalog, **builder_args)
        result = builder.build(plan)
        return PhysicalPlan(
            root=result.op,
            mode=result.mode,
            columns=plan.output_names(),
            logical=plan,
        )
