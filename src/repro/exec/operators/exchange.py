"""Exchange: parallel batch execution.

The paper's batch operators run under exchange-based parallelism: a scan
is split across workers, each worker runs its own copy of the pipeline
fragment, and the exchange merges their batch streams. We reproduce that
structure with real threads — each child operator (one per worker) runs
in its own thread, pushing batches into a bounded queue the consumer
drains. NumPy kernels release the GIL for large arrays, so scans overlap;
pure-Python sections serialize (documented scaling ceiling, see E13).

Row order across workers is nondeterministic, as with any exchange; a
Sort above restores determinism when the query requires it.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

from ...errors import ExecutionError
from ...governance import context as governance
from ..batch import Batch
from .base import BatchOperator

_QUEUE_SIZE = 8
_DONE = object()
# How often a blocked worker re-checks the cancellation event. Workers
# never block indefinitely on the output queue: a consumer that abandons
# the generator (LIMIT above an exchange) cancels, and every worker must
# notice within one tick so its thread can be joined.
_CANCEL_POLL_SECONDS = 0.05
_JOIN_TIMEOUT_SECONDS = 10.0


class BatchExchange(BatchOperator):
    """Merges the batch streams of N children, one thread per child."""

    def __init__(self, children: list[BatchOperator]) -> None:
        if not children:
            raise ExecutionError("exchange requires at least one child")
        names = children[0].output_names
        for child in children[1:]:
            if child.output_names != names:
                raise ExecutionError(
                    "exchange children disagree on output columns: "
                    f"{names} vs {child.output_names}"
                )
        self.children = list(children)

    @property
    def output_names(self) -> list[str]:
        return self.children[0].output_names

    @property
    def dop(self) -> int:
        return len(self.children)

    def describe(self) -> str:
        return f"BatchExchange(dop={self.dop})"

    def child_operators(self) -> list[BatchOperator]:
        return list(self.children)

    def batches(self) -> Iterator[Batch]:
        if len(self.children) == 1:
            yield from self.children[0].batches()
            return
        out: queue.Queue = queue.Queue(maxsize=_QUEUE_SIZE * len(self.children))
        cancel = threading.Event()
        # The governing QueryContext is thread-local; capture it on the
        # consumer thread (this generator body runs at first next(), with
        # the context active) and re-activate it inside each worker so
        # the workers' own operator wrappers keep hitting checkpoints.
        ctx = governance.current()
        # Appends are GIL-atomic; errors[0] is the first error that landed
        # anywhere, and it is raised with its original traceback.
        errors: list[BaseException] = []
        done = [0]
        done_lock = threading.Lock()

        def cancellable_put(batch: Batch) -> bool:
            """Put into the bounded queue unless cancellation arrives.

            The old code used a plain blocking ``put``: when the consumer
            abandoned the generator with the queue full, every worker
            blocked forever and its thread leaked. A timed-put loop keeps
            each worker responsive to the cancel event.
            """
            while not cancel.is_set():
                if ctx is not None:
                    # A worker parked on a full queue must still honor
                    # kill/timeout; the raise lands in the worker's
                    # except, which records it and cancels the siblings.
                    ctx.check()
                try:
                    out.put(batch, timeout=_CANCEL_POLL_SECONDS)
                    return True
                except queue.Full:
                    continue
            return False

        def worker(child: BatchOperator) -> None:
            try:
                with governance.activate(ctx):
                    for batch in child.batches():
                        if not cancellable_put(batch):
                            return
            except BaseException as exc:
                errors.append(exc)
                # Fail fast: siblings stop at their next queue poll
                # instead of draining to completion, so the consumer sees
                # the *first* error promptly, not the last one late.
                cancel.set()
            finally:
                with done_lock:
                    done[0] += 1
                try:
                    # Wake a consumer blocked on an empty queue. Dropping
                    # the wakeup when the queue is full is safe: a full
                    # queue means get() has plenty to return, and the
                    # consumer re-checks ``done`` whenever it runs dry.
                    out.put_nowait(_DONE)
                except queue.Full:
                    pass

        threads = [
            threading.Thread(
                target=worker, args=(child,), daemon=True, name="repro-exchange"
            )
            for child in self.children
        ]
        for thread in threads:
            thread.start()
        try:
            while True:
                if errors:
                    break
                if ctx is not None:
                    # Consumer-side checkpoint: raises out of the
                    # generator, and the finally below cancels + reaps
                    # every worker before the error propagates.
                    ctx.check()
                try:
                    item = out.get(timeout=_CANCEL_POLL_SECONDS)
                except queue.Empty:
                    # ``done`` is read before emptiness: once every worker
                    # has exited no further put can happen, so seeing
                    # done == n and then an empty queue is a sound finish.
                    if done[0] == len(threads) and out.empty():
                        break
                    continue
                if item is _DONE:
                    # FIFO makes the last worker's _DONE the last item in
                    # the queue, so normal completion exits here without
                    # paying the Empty-timeout tick.
                    if done[0] == len(threads) and out.empty():
                        break
                    continue
                yield item
        finally:
            # Runs on normal completion, on error, and on generator close
            # (the consumer stopping early): cancel, unblock any worker
            # parked on the full queue, and reap every thread.
            cancel.set()
            self._reap(out, threads)
        if errors:
            raise errors[0]

    @staticmethod
    def _reap(out: queue.Queue, threads: list[threading.Thread]) -> None:
        """Drain the queue and join every worker thread.

        Draining is interleaved with joining: a worker can be mid-``put``
        when cancellation lands, so space must keep appearing until every
        thread has observed the event and exited. A worker that cannot be
        joined within the timeout is a bug, not a condition to ignore —
        raise rather than quietly leak the thread.
        """
        deadline = _JOIN_TIMEOUT_SECONDS
        for thread in threads:
            while thread.is_alive():
                try:
                    while True:
                        out.get_nowait()
                except queue.Empty:
                    pass
                thread.join(timeout=_CANCEL_POLL_SECONDS)
                deadline -= _CANCEL_POLL_SECONDS
                if deadline <= 0 and thread.is_alive():
                    raise ExecutionError(
                        "exchange worker thread failed to stop after "
                        f"cancellation ({thread.name})"
                    )
