"""Exchange: parallel batch execution.

The paper's batch operators run under exchange-based parallelism: a scan
is split across workers, each worker runs its own copy of the pipeline
fragment, and the exchange merges their batch streams. We reproduce that
structure with real threads — each child operator (one per worker) runs
in its own thread, pushing batches into a bounded queue the consumer
drains. NumPy kernels release the GIL for large arrays, so scans overlap;
pure-Python sections serialize (documented scaling ceiling, see E13).

Row order across workers is nondeterministic, as with any exchange; a
Sort above restores determinism when the query requires it.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

from ...errors import ExecutionError
from ..batch import Batch
from .base import BatchOperator

_QUEUE_SIZE = 8
_DONE = object()


class BatchExchange(BatchOperator):
    """Merges the batch streams of N children, one thread per child."""

    def __init__(self, children: list[BatchOperator]) -> None:
        if not children:
            raise ExecutionError("exchange requires at least one child")
        names = children[0].output_names
        for child in children[1:]:
            if child.output_names != names:
                raise ExecutionError(
                    "exchange children disagree on output columns: "
                    f"{names} vs {child.output_names}"
                )
        self.children = list(children)

    @property
    def output_names(self) -> list[str]:
        return self.children[0].output_names

    @property
    def dop(self) -> int:
        return len(self.children)

    def describe(self) -> str:
        return f"BatchExchange(dop={self.dop})"

    def child_operators(self) -> list[BatchOperator]:
        return list(self.children)

    def batches(self) -> Iterator[Batch]:
        if len(self.children) == 1:
            yield from self.children[0].batches()
            return
        out: queue.Queue = queue.Queue(maxsize=_QUEUE_SIZE * len(self.children))
        errors: list[BaseException] = []

        def worker(child: BatchOperator) -> None:
            try:
                for batch in child.batches():
                    out.put(batch)
            except BaseException as exc:  # propagate to the consumer
                errors.append(exc)
            finally:
                out.put(_DONE)

        threads = [
            threading.Thread(target=worker, args=(child,), daemon=True)
            for child in self.children
        ]
        for thread in threads:
            thread.start()
        finished = 0
        try:
            while finished < len(threads):
                item = out.get()
                if item is _DONE:
                    finished += 1
                    continue
                yield item
        finally:
            for thread in threads:
                thread.join(timeout=5.0)
        if errors:
            raise errors[0]
