"""Base class for batch-mode physical operators."""

from __future__ import annotations

import abc
from typing import Iterator

from ...governance.context import governed_batches
from ...observability.opstats import OperatorStats, instrument_batches, operator_stats
from ..batch import Batch


class BatchOperator(abc.ABC):
    """A pull-based operator producing a stream of batches.

    Subclasses implement :meth:`batches`; consumers iterate it exactly
    once. ``output_names`` lists the columns every produced batch carries.

    Every concrete ``batches`` implementation is wrapped at class-creation
    time with the observability instrumented iterator, so all operators
    carry runtime counters (:attr:`op_stats`) without per-operator edits,
    and with the governance checkpoint wrapper, so every operator is a
    cancellation point for the statement's QueryContext. Each wrapper
    costs one flag/thread-local read when its feature is off.
    """

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        batches = cls.__dict__.get("batches")
        if batches is not None and not getattr(batches, "_instrumented", False):
            cls.batches = instrument_batches(governed_batches(batches))

    @property
    @abc.abstractmethod
    def output_names(self) -> list[str]:
        """Names of the columns in produced batches."""

    @abc.abstractmethod
    def batches(self) -> Iterator[Batch]:
        """Produce the operator's output, one batch at a time."""

    @property
    def op_stats(self) -> OperatorStats:
        """Runtime counters (filled while stats collection is on)."""
        return operator_stats(self)

    def explain_lines(self, depth: int = 0) -> list[str]:
        """Human-readable plan rendering (one line per operator).

        Recursion goes through :meth:`child_operators` — the single
        source of truth for plan shape, shared with EXPLAIN ANALYZE —
        so subclasses must override ``child_operators``, never hand-roll
        their own tree walk here.
        """
        pad = "  " * depth
        lines = [f"{pad}{self.describe()}"]
        for child in self.child_operators():
            lines.extend(child.explain_lines(depth + 1))
        return lines

    def describe(self) -> str:
        return type(self).__name__

    def child_operators(self) -> list["BatchOperator"]:
        """Direct children in execution order (cross-engine adapters may
        return row operators; tree walks only need the shared surface of
        ``describe`` / ``explain_lines`` / ``child_operators``)."""
        return []
