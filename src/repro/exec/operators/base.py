"""Base class for batch-mode physical operators."""

from __future__ import annotations

import abc
from typing import Iterator

from ..batch import Batch


class BatchOperator(abc.ABC):
    """A pull-based operator producing a stream of batches.

    Subclasses implement :meth:`batches`; consumers iterate it exactly
    once. ``output_names`` lists the columns every produced batch carries.
    """

    @property
    @abc.abstractmethod
    def output_names(self) -> list[str]:
        """Names of the columns in produced batches."""

    @abc.abstractmethod
    def batches(self) -> Iterator[Batch]:
        """Produce the operator's output, one batch at a time."""

    def explain_lines(self, depth: int = 0) -> list[str]:
        """Human-readable plan rendering (one line per operator)."""
        pad = "  " * depth
        lines = [f"{pad}{self.describe()}"]
        for child in self.child_operators():
            lines.extend(child.explain_lines(depth + 1))
        return lines

    def describe(self) -> str:
        return type(self).__name__

    def child_operators(self) -> list["BatchOperator"]:
        return []
