"""Batch-mode sort and TOP-N operators.

Sort is grant-aware: given a :class:`~repro.exec.memory.MemoryGrant`, it
buffers input only while reservations succeed and otherwise degrades to
an external merge sort — sorted runs written to spill files, then a
stable k-way merge. Without a grant it buffers everything, the original
behavior.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ...errors import ExecutionError
from ..batch import DEFAULT_BATCH_SIZE, Batch, concat_batches, slice_into_batches
from ..memory import MemoryGrant, batch_bytes
from ..spill import SpillFile
from .base import BatchOperator


class _NullsLast:
    """Sort key wrapper placing NULLs last in ascending order."""

    __slots__ = ("is_null", "value")

    def __init__(self, value: Any) -> None:
        self.is_null = value is None
        self.value = value

    def __lt__(self, other: "_NullsLast") -> bool:
        if self.is_null:
            return False
        if other.is_null:
            return True
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _NullsLast):
            return NotImplemented
        return self.is_null == other.is_null and self.value == other.value


def _sort_indices(batch: Batch, keys: list[tuple[str, bool]]) -> np.ndarray:
    """Stable multi-key sort of a dense batch; descending per key supported."""
    n = batch.row_count
    indices = np.arange(n, dtype=np.int64)
    # Stable sort applied from the least-significant key backwards.
    for name, descending in reversed(keys):
        values = batch.column(name)
        mask = batch.null_mask(name)
        if values.dtype == object or mask is not None:
            lst = values.tolist()
            if mask is not None:
                key_list = [
                    _NullsLast(None if mask[i] else lst[i]) for i in indices.tolist()
                ]
            else:
                key_list = [_NullsLast(lst[i]) for i in indices.tolist()]
            order = sorted(range(n), key=lambda i: key_list[i], reverse=descending)
            indices = indices[np.array(order, dtype=np.int64)]
        else:
            arr = values[indices]
            order = np.argsort(arr, kind="stable")
            if descending:
                order = order[::-1]
                # argsort is ascending-stable; reversing breaks stability on
                # equal keys, so re-stabilize by reversing equal runs.
                order = _stabilize_descending(arr, order)
            indices = indices[order]
    return indices


def _stabilize_descending(values: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Make a reversed ascending argsort stable for descending order."""
    sorted_vals = values[order]
    result = order.copy()
    start = 0
    n = order.size
    for end in range(1, n + 1):
        if end == n or sorted_vals[end] != sorted_vals[start]:
            result[start:end] = result[start:end][::-1]
            start = end
    return result


@dataclass
class SortStats:
    """Spill accounting (picked up by EXPLAIN ANALYZE via ``stats``)."""

    runs_spilled: int = 0
    spill_bytes: int = 0


class BatchSort(BatchOperator):
    """Full sort: consumes the child, sorts, re-emits in batches.

    ``keys`` is a list of (column, descending) pairs. NULLs sort last in
    ascending order (SQL Server sorts them first; documented divergence
    kept consistent across both engines).

    With a memory grant, input that exceeds the budget is sorted in
    chunks written to spill files and k-way merged; the merge is stable
    (runs are fed to ``heapq.merge`` in input-chunk order, and equal keys
    prefer earlier iterables), matching the in-memory stable sort.
    """

    def __init__(
        self,
        child: BatchOperator,
        keys: list[tuple[str, bool]],
        batch_size: int = DEFAULT_BATCH_SIZE,
        grant: MemoryGrant | None = None,
    ) -> None:
        if not keys:
            raise ExecutionError("sort requires at least one key")
        self.child = child
        self.keys = list(keys)
        self.batch_size = batch_size
        self.grant = grant
        self.stats = SortStats()

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def describe(self) -> str:
        inner = ", ".join(f"{n}{' DESC' if d else ''}" for n, d in self.keys)
        return f"BatchSort({inner})"

    def child_operators(self) -> list[BatchOperator]:
        return [self.child]

    def batches(self) -> Iterator[Batch]:
        grant = self.grant
        buffered: list[Batch] = []
        reserved = 0
        runs: list[SpillFile] = []
        try:
            for batch in self.child.batches():
                dense = batch.compact()
                if dense.row_count == 0:
                    continue
                need = batch_bytes(dense.columns)
                if grant is not None and not grant.try_reserve(need):
                    # Budget exhausted: flush what we hold as one sorted
                    # run, free its reservation, and retry this batch.
                    if buffered:
                        self._spill_run(buffered, runs)
                        buffered = []
                        grant.release(reserved)
                        reserved = 0
                    if not grant.try_reserve(need):
                        # A single batch larger than the whole budget:
                        # it forms a (sorted) run of its own, unreserved.
                        self._spill_run([dense], runs)
                        continue
                    reserved += need
                elif grant is not None:
                    reserved += need
                buffered.append(dense)
            if runs:
                if buffered:
                    self._spill_run(buffered, runs)
                    buffered = []
                    if grant is not None:
                        grant.release(reserved)
                        reserved = 0
                yield from self._merge_runs(runs)
                return
            merged = concat_batches(buffered)
            if merged is None:
                return
            yield from slice_into_batches(self._sorted(merged), self.batch_size)
        finally:
            if grant is not None and reserved:
                grant.release(reserved)
            for run in runs:
                run.close()

    def _sorted(self, merged: Batch) -> Batch:
        indices = _sort_indices(merged, self.keys)
        return Batch(
            columns={n: a[indices] for n, a in merged.columns.items()},
            null_masks={
                n: (m[indices] if m is not None else None)
                for n, m in merged.null_masks.items()
            },
        )

    def _spill_run(self, buffered: list[Batch], runs: list[SpillFile]) -> None:
        merged = concat_batches(buffered)
        if merged is None:
            return
        run = SpillFile()
        runs.append(run)
        run.append(self._sorted(merged))
        self.stats.runs_spilled += 1
        self.stats.spill_bytes += run.bytes_written

    def _merge_runs(self, runs: list[SpillFile]) -> Iterator[Batch]:
        names = self.output_names
        key_pos = [names.index(n) for n, _ in self.keys]
        flags = [d for _, d in self.keys]
        dtypes: dict[str, np.dtype] = {}

        def run_rows(run: SpillFile):
            for batch in run.read_back():
                for name, arr in batch.columns.items():
                    dtypes.setdefault(name, arr.dtype)
                yield from batch.to_rows()

        def sort_key(row: tuple) -> tuple:
            return tuple(
                _heap_component(row[i], d) for i, d in zip(key_pos, flags)
            )

        pending: list[tuple] = []
        # heapq.merge prefers earlier iterables on equal keys; runs are
        # passed in input-chunk order, so the merged order matches what
        # the stable in-memory sort would have produced.
        for row in heapq.merge(*(run_rows(r) for r in runs), key=sort_key):
            pending.append(row)
            if len(pending) >= self.batch_size:
                yield self._rows_batch(names, pending, dtypes)
                pending = []
        if pending:
            yield self._rows_batch(names, pending, dtypes)

    @staticmethod
    def _rows_batch(
        names: list[str], rows: list[tuple], dtypes: dict[str, np.dtype]
    ) -> Batch:
        data = {name: [row[i] for row in rows] for i, name in enumerate(names)}
        return Batch.from_pydict(data, dtypes=dtypes)


class BatchTop(BatchOperator):
    """TOP-N with optional ordering, implemented with a bounded heap.

    Without keys it is a plain LIMIT (first N rows in stream order).
    """

    def __init__(
        self,
        child: BatchOperator,
        limit: int,
        keys: list[tuple[str, bool]] | None = None,
    ) -> None:
        if limit < 0:
            raise ExecutionError(f"LIMIT must be non-negative, got {limit}")
        self.child = child
        self.limit = limit
        self.keys = list(keys) if keys else []

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def describe(self) -> str:
        return f"BatchTop(limit={self.limit}, keys={self.keys})"

    def child_operators(self) -> list[BatchOperator]:
        return [self.child]

    def batches(self) -> Iterator[Batch]:
        if self.limit == 0:
            return
        if not self.keys:
            yield from self._plain_limit()
            return
        yield from self._heap_top()

    def _plain_limit(self) -> Iterator[Batch]:
        remaining = self.limit
        for batch in self.child.batches():
            dense = batch.compact()
            if dense.row_count <= remaining:
                remaining -= dense.row_count
                yield dense
            else:
                yield Batch(
                    columns={n: a[:remaining] for n, a in dense.columns.items()},
                    null_masks={
                        n: (m[:remaining] if m is not None else None)
                        for n, m in dense.null_masks.items()
                    },
                )
                remaining = 0
            if remaining == 0:
                return

    def _heap_top(self) -> Iterator[Batch]:
        # A max-heap (via inverted keys) keeps the best N rows seen so far;
        # -sequence breaks ties so that on equal keys the earliest row wins.
        names = self.output_names
        heap: list[tuple["_Inverted", int, tuple[Any, ...]]] = []
        sequence = 0
        for batch in self.child.batches():
            for row in batch.to_rows():
                row_map = dict(zip(names, row))
                key = tuple(
                    _heap_component(row_map[name], descending)
                    for name, descending in self.keys
                )
                entry = (_Inverted(key), -sequence, row)
                sequence += 1
                if len(heap) < self.limit:
                    heapq.heappush(heap, entry)
                else:
                    heapq.heappushpop(heap, entry)
        ordered = sorted(heap, key=lambda e: (_Inverted(e[0].key), e[1]), reverse=True)
        rows = [row for _, _, row in ordered]
        if not rows:
            return
        data = {name: [row[i] for row in rows] for i, name in enumerate(names)}
        yield Batch.from_pydict(data)


def _heap_component(value: Any, descending: bool) -> Any:
    wrapped = _NullsLast(value)
    return _Descending(wrapped) if descending else wrapped


class _Descending:
    """Inverts comparison for descending sort keys."""

    __slots__ = ("inner",)

    def __init__(self, inner: Any) -> None:
        self.inner = inner

    def __lt__(self, other: "_Descending") -> bool:
        return other.inner < self.inner

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Descending):
            return NotImplemented
        return self.inner == other.inner


class _Inverted:
    """Heap adapter: reverses the tuple comparison (max-heap via heapq)."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_Inverted") -> bool:
        return _tuple_less(other.key, self.key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Inverted):
            return NotImplemented
        return not _tuple_less(self.key, other.key) and not _tuple_less(other.key, self.key)


def _tuple_less(a: tuple, b: tuple) -> bool:
    for x, y in zip(a, b):
        if x < y:
            return True
        if y < x:
            return False
    return len(a) < len(b)
