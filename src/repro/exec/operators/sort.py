"""Batch-mode sort and TOP-N operators."""

from __future__ import annotations

import heapq
from typing import Any, Iterator

import numpy as np

from ...errors import ExecutionError
from ..batch import DEFAULT_BATCH_SIZE, Batch, concat_batches, slice_into_batches
from .base import BatchOperator


class _NullsLast:
    """Sort key wrapper placing NULLs last in ascending order."""

    __slots__ = ("is_null", "value")

    def __init__(self, value: Any) -> None:
        self.is_null = value is None
        self.value = value

    def __lt__(self, other: "_NullsLast") -> bool:
        if self.is_null:
            return False
        if other.is_null:
            return True
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _NullsLast):
            return NotImplemented
        return self.is_null == other.is_null and self.value == other.value


def _sort_indices(batch: Batch, keys: list[tuple[str, bool]]) -> np.ndarray:
    """Stable multi-key sort of a dense batch; descending per key supported."""
    n = batch.row_count
    indices = np.arange(n, dtype=np.int64)
    # Stable sort applied from the least-significant key backwards.
    for name, descending in reversed(keys):
        values = batch.column(name)
        mask = batch.null_mask(name)
        if values.dtype == object or mask is not None:
            lst = values.tolist()
            if mask is not None:
                key_list = [
                    _NullsLast(None if mask[i] else lst[i]) for i in indices.tolist()
                ]
            else:
                key_list = [_NullsLast(lst[i]) for i in indices.tolist()]
            order = sorted(range(n), key=lambda i: key_list[i], reverse=descending)
            indices = indices[np.array(order, dtype=np.int64)]
        else:
            arr = values[indices]
            order = np.argsort(arr, kind="stable")
            if descending:
                order = order[::-1]
                # argsort is ascending-stable; reversing breaks stability on
                # equal keys, so re-stabilize by reversing equal runs.
                order = _stabilize_descending(arr, order)
            indices = indices[order]
    return indices


def _stabilize_descending(values: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Make a reversed ascending argsort stable for descending order."""
    sorted_vals = values[order]
    result = order.copy()
    start = 0
    n = order.size
    for end in range(1, n + 1):
        if end == n or sorted_vals[end] != sorted_vals[start]:
            result[start:end] = result[start:end][::-1]
            start = end
    return result


class BatchSort(BatchOperator):
    """Full sort: consumes the child, sorts, re-emits in batches.

    ``keys`` is a list of (column, descending) pairs. NULLs sort last in
    ascending order (SQL Server sorts them first; documented divergence
    kept consistent across both engines).
    """

    def __init__(
        self,
        child: BatchOperator,
        keys: list[tuple[str, bool]],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if not keys:
            raise ExecutionError("sort requires at least one key")
        self.child = child
        self.keys = list(keys)
        self.batch_size = batch_size

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def describe(self) -> str:
        inner = ", ".join(f"{n}{' DESC' if d else ''}" for n, d in self.keys)
        return f"BatchSort({inner})"

    def child_operators(self) -> list[BatchOperator]:
        return [self.child]

    def batches(self) -> Iterator[Batch]:
        merged = concat_batches(list(self.child.batches()))
        if merged is None:
            return
        indices = _sort_indices(merged, self.keys)
        sorted_batch = Batch(
            columns={n: a[indices] for n, a in merged.columns.items()},
            null_masks={
                n: (m[indices] if m is not None else None)
                for n, m in merged.null_masks.items()
            },
        )
        yield from slice_into_batches(sorted_batch, self.batch_size)


class BatchTop(BatchOperator):
    """TOP-N with optional ordering, implemented with a bounded heap.

    Without keys it is a plain LIMIT (first N rows in stream order).
    """

    def __init__(
        self,
        child: BatchOperator,
        limit: int,
        keys: list[tuple[str, bool]] | None = None,
    ) -> None:
        if limit < 0:
            raise ExecutionError(f"LIMIT must be non-negative, got {limit}")
        self.child = child
        self.limit = limit
        self.keys = list(keys) if keys else []

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def describe(self) -> str:
        return f"BatchTop(limit={self.limit}, keys={self.keys})"

    def child_operators(self) -> list[BatchOperator]:
        return [self.child]

    def batches(self) -> Iterator[Batch]:
        if self.limit == 0:
            return
        if not self.keys:
            yield from self._plain_limit()
            return
        yield from self._heap_top()

    def _plain_limit(self) -> Iterator[Batch]:
        remaining = self.limit
        for batch in self.child.batches():
            dense = batch.compact()
            if dense.row_count <= remaining:
                remaining -= dense.row_count
                yield dense
            else:
                yield Batch(
                    columns={n: a[:remaining] for n, a in dense.columns.items()},
                    null_masks={
                        n: (m[:remaining] if m is not None else None)
                        for n, m in dense.null_masks.items()
                    },
                )
                remaining = 0
            if remaining == 0:
                return

    def _heap_top(self) -> Iterator[Batch]:
        # A max-heap (via inverted keys) keeps the best N rows seen so far;
        # -sequence breaks ties so that on equal keys the earliest row wins.
        names = self.output_names
        heap: list[tuple["_Inverted", int, tuple[Any, ...]]] = []
        sequence = 0
        for batch in self.child.batches():
            for row in batch.to_rows():
                row_map = dict(zip(names, row))
                key = tuple(
                    _heap_component(row_map[name], descending)
                    for name, descending in self.keys
                )
                entry = (_Inverted(key), -sequence, row)
                sequence += 1
                if len(heap) < self.limit:
                    heapq.heappush(heap, entry)
                else:
                    heapq.heappushpop(heap, entry)
        ordered = sorted(heap, key=lambda e: (_Inverted(e[0].key), e[1]), reverse=True)
        rows = [row for _, _, row in ordered]
        if not rows:
            return
        data = {name: [row[i] for row in rows] for i, name in enumerate(names)}
        yield Batch.from_pydict(data)


def _heap_component(value: Any, descending: bool) -> Any:
    wrapped = _NullsLast(value)
    return _Descending(wrapped) if descending else wrapped


class _Descending:
    """Inverts comparison for descending sort keys."""

    __slots__ = ("inner",)

    def __init__(self, inner: Any) -> None:
        self.inner = inner

    def __lt__(self, other: "_Descending") -> bool:
        return other.inner < self.inner

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Descending):
            return NotImplemented
        return self.inner == other.inner


class _Inverted:
    """Heap adapter: reverses the tuple comparison (max-heap via heapq)."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_Inverted") -> bool:
        return _tuple_less(other.key, self.key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Inverted):
            return NotImplemented
        return not _tuple_less(self.key, other.key) and not _tuple_less(other.key, self.key)


def _tuple_less(a: tuple, b: tuple) -> bool:
    for x, y in zip(a, b):
        if x < y:
            return True
        if y < x:
            return False
    return len(a) < len(b)
