"""Window-function operator (batch mode) and the shared computation.

Implements the SQL default frame only: with an ORDER BY the aggregate is a
running, *peers-inclusive* accumulation (RANGE UNBOUNDED PRECEDING ..
CURRENT ROW); without one the whole partition shares a single value.
Ranking functions (ROW_NUMBER / RANK / DENSE_RANK) follow the same peer
structure. NULL partition keys form one partition; order keys sort NULLs
last, matching the engines' sort operators.

Both engines materialize the input, compute per-partition, and emit rows
in their *input* order with the window columns appended — a final Sort (if
any) reorders afterwards, so batch and row mode agree row for row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ...errors import ExecutionError
from ..batch import DEFAULT_BATCH_SIZE, Batch, concat_batches, slice_into_batches
from .base import BatchOperator
from .hash_aggregate import COUNT_STAR
from .sort import _NullsLast

RANKING_FUNCS = {"row_number", "rank", "dense_rank"}
WINDOW_FUNCS = RANKING_FUNCS | {COUNT_STAR, "count", "sum", "min", "max", "avg"}


@dataclass(frozen=True)
class WindowSpec:
    """One window computation: function, argument column, partitioning.

    ``arg`` names a child column (the binder projects computed argument
    expressions first, like aggregate arguments). ``partition_by`` and
    ``order_by`` likewise name child columns.
    """

    func: str
    arg: str | None
    partition_by: tuple[str, ...]
    order_by: tuple[tuple[str, bool], ...]  # (column, descending)
    name: str

    def __post_init__(self) -> None:
        if self.func not in WINDOW_FUNCS:
            raise ExecutionError(f"unknown window function {self.func!r}")
        needs_arg = self.func not in RANKING_FUNCS and self.func != COUNT_STAR
        if needs_arg and self.arg is None:
            raise ExecutionError(f"window {self.func} requires an argument")
        if not needs_arg and self.arg is not None:
            raise ExecutionError(f"window {self.func} takes no argument")


def compute_window_columns(
    rows: list[dict[str, Any]], specs: list[WindowSpec]
) -> dict[str, list[Any]]:
    """Window column values for ``rows``, aligned with the input order."""
    return {spec.name: _compute_one(rows, spec) for spec in specs}


def _compute_one(rows: list[dict[str, Any]], spec: WindowSpec) -> list[Any]:
    out: list[Any] = [None] * len(rows)
    partitions: dict[tuple, list[int]] = {}
    for i, row in enumerate(rows):
        key = tuple(row[column] for column in spec.partition_by)
        partitions.setdefault(key, []).append(i)
    for indices in partitions.values():
        ordered = list(indices)
        # Stable multi-pass sort from the least-significant key backwards,
        # same scheme as the engines' sort operators (NULLs last ascending).
        for column, descending in reversed(spec.order_by):
            ordered.sort(key=lambda i: _NullsLast(rows[i][column]), reverse=descending)
        if spec.func in RANKING_FUNCS:
            _rank_partition(rows, spec, ordered, out)
        else:
            _aggregate_partition(rows, spec, ordered, out)
    return out


def _peer_groups(
    rows: list[dict[str, Any]], spec: WindowSpec, ordered: list[int]
) -> Iterator[list[int]]:
    """Runs of order-key peers; the whole partition when unordered."""
    if not spec.order_by:
        yield ordered
        return
    group = [ordered[0]]
    previous = tuple(rows[ordered[0]][c] for c, _ in spec.order_by)
    for i in ordered[1:]:
        key = tuple(rows[i][c] for c, _ in spec.order_by)
        if key == previous:
            group.append(i)
        else:
            yield group
            group = [i]
            previous = key
    yield group


def _rank_partition(
    rows: list[dict[str, Any]], spec: WindowSpec, ordered: list[int], out: list[Any]
) -> None:
    if spec.func == "row_number":
        for position, i in enumerate(ordered):
            out[i] = position + 1
        return
    position = 0
    dense = 0
    for group in _peer_groups(rows, spec, ordered):
        dense += 1
        rank = position + 1
        for i in group:
            out[i] = rank if spec.func == "rank" else dense
        position += len(group)


def _aggregate_partition(
    rows: list[dict[str, Any]], spec: WindowSpec, ordered: list[int], out: list[Any]
) -> None:
    func = spec.func
    count = 0
    total: Any = None  # running sum for SUM / AVG
    best: Any = None  # running MIN / MAX
    for group in _peer_groups(rows, spec, ordered):
        for i in group:
            if func == COUNT_STAR:
                count += 1
                continue
            value = rows[i][spec.arg]
            if value is None:
                continue
            count += 1
            if func == "count":
                continue
            if func in ("sum", "avg"):
                total = value if total is None else total + value
            elif func == "min":
                best = value if best is None or value < best else best
            else:  # max
                best = value if best is None or value > best else best
        if func in (COUNT_STAR, "count"):
            current = count
        elif func == "sum":
            current = total
        elif func == "avg":
            current = total / count if count else None
        else:
            current = best
        for i in group:
            out[i] = current


class BatchWindow(BatchOperator):
    """Materializing window operator: consumes the child, computes every
    spec per partition, re-emits input-ordered batches with the window
    columns appended."""

    def __init__(
        self,
        child: BatchOperator,
        specs: list[WindowSpec],
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if not specs:
            raise ExecutionError("window requires at least one spec")
        self.child = child
        self.specs = list(specs)
        self.batch_size = batch_size

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names + [spec.name for spec in self.specs]

    def describe(self) -> str:
        inner = ", ".join(f"{s.func} AS {s.name}" for s in self.specs)
        return f"BatchWindow({inner})"

    def child_operators(self) -> list[BatchOperator]:
        return [self.child]

    def batches(self) -> Iterator[Batch]:
        merged = concat_batches(list(self.child.batches()))
        if merged is None:
            return
        names = merged.names
        rows = [dict(zip(names, values)) for values in merged.to_rows()]
        computed = compute_window_columns(rows, self.specs)
        batch = merged
        for spec in self.specs:
            column = Batch.from_pydict({spec.name: computed[spec.name]})
            batch = batch.with_column(
                spec.name, column.columns[spec.name], column.null_masks[spec.name]
            )
        yield from slice_into_batches(batch, self.batch_size)
