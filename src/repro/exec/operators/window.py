"""Window-function operator (batch mode) and the shared computation.

Implements the SQL default frame only: with an ORDER BY the aggregate is a
running, *peers-inclusive* accumulation (RANGE UNBOUNDED PRECEDING ..
CURRENT ROW); without one the whole partition shares a single value.
Ranking functions (ROW_NUMBER / RANK / DENSE_RANK) follow the same peer
structure. NULL partition keys form one partition; order keys sort NULLs
last, matching the engines' sort operators.

Both engines materialize the input, compute per-partition, and emit rows
in their *input* order with the window columns appended — a final Sort (if
any) reorders afterwards, so batch and row mode agree row for row.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ...errors import ExecutionError
from ..batch import DEFAULT_BATCH_SIZE, Batch, concat_batches, slice_into_batches
from ..memory import MemoryGrant, batch_bytes
from ..spill import SpillFile, partition_of
from .base import BatchOperator
from .hash_aggregate import COUNT_STAR
from .sort import _NullsLast

RANKING_FUNCS = {"row_number", "rank", "dense_rank"}
WINDOW_FUNCS = RANKING_FUNCS | {COUNT_STAR, "count", "sum", "min", "max", "avg"}


@dataclass(frozen=True)
class WindowSpec:
    """One window computation: function, argument column, partitioning.

    ``arg`` names a child column (the binder projects computed argument
    expressions first, like aggregate arguments). ``partition_by`` and
    ``order_by`` likewise name child columns.
    """

    func: str
    arg: str | None
    partition_by: tuple[str, ...]
    order_by: tuple[tuple[str, bool], ...]  # (column, descending)
    name: str

    def __post_init__(self) -> None:
        if self.func not in WINDOW_FUNCS:
            raise ExecutionError(f"unknown window function {self.func!r}")
        needs_arg = self.func not in RANKING_FUNCS and self.func != COUNT_STAR
        if needs_arg and self.arg is None:
            raise ExecutionError(f"window {self.func} requires an argument")
        if not needs_arg and self.arg is not None:
            raise ExecutionError(f"window {self.func} takes no argument")


def compute_window_columns(
    rows: list[dict[str, Any]], specs: list[WindowSpec]
) -> dict[str, list[Any]]:
    """Window column values for ``rows``, aligned with the input order."""
    return {spec.name: _compute_one(rows, spec) for spec in specs}


def _compute_one(rows: list[dict[str, Any]], spec: WindowSpec) -> list[Any]:
    out: list[Any] = [None] * len(rows)
    partitions: dict[tuple, list[int]] = {}
    for i, row in enumerate(rows):
        key = tuple(row[column] for column in spec.partition_by)
        partitions.setdefault(key, []).append(i)
    for indices in partitions.values():
        ordered = list(indices)
        # Stable multi-pass sort from the least-significant key backwards,
        # same scheme as the engines' sort operators (NULLs last ascending).
        for column, descending in reversed(spec.order_by):
            ordered.sort(key=lambda i: _NullsLast(rows[i][column]), reverse=descending)
        if spec.func in RANKING_FUNCS:
            _rank_partition(rows, spec, ordered, out)
        else:
            _aggregate_partition(rows, spec, ordered, out)
    return out


def _peer_groups(
    rows: list[dict[str, Any]], spec: WindowSpec, ordered: list[int]
) -> Iterator[list[int]]:
    """Runs of order-key peers; the whole partition when unordered."""
    if not spec.order_by:
        yield ordered
        return
    group = [ordered[0]]
    previous = tuple(rows[ordered[0]][c] for c, _ in spec.order_by)
    for i in ordered[1:]:
        key = tuple(rows[i][c] for c, _ in spec.order_by)
        if key == previous:
            group.append(i)
        else:
            yield group
            group = [i]
            previous = key
    yield group


def _rank_partition(
    rows: list[dict[str, Any]], spec: WindowSpec, ordered: list[int], out: list[Any]
) -> None:
    if spec.func == "row_number":
        for position, i in enumerate(ordered):
            out[i] = position + 1
        return
    position = 0
    dense = 0
    for group in _peer_groups(rows, spec, ordered):
        dense += 1
        rank = position + 1
        for i in group:
            out[i] = rank if spec.func == "rank" else dense
        position += len(group)


def _aggregate_partition(
    rows: list[dict[str, Any]], spec: WindowSpec, ordered: list[int], out: list[Any]
) -> None:
    func = spec.func
    count = 0
    total: Any = None  # running sum for SUM / AVG
    best: Any = None  # running MIN / MAX
    for group in _peer_groups(rows, spec, ordered):
        for i in group:
            if func == COUNT_STAR:
                count += 1
                continue
            value = rows[i][spec.arg]
            if value is None:
                continue
            count += 1
            if func == "count":
                continue
            if func in ("sum", "avg"):
                total = value if total is None else total + value
            elif func == "min":
                best = value if best is None or value < best else best
            else:  # max
                best = value if best is None or value > best else best
        if func in (COUNT_STAR, "count"):
            current = count
        elif func == "sum":
            current = total
        elif func == "avg":
            current = total / count if count else None
        else:
            current = best
        for i in group:
            out[i] = current


@dataclass
class WindowStats:
    """Spill accounting (picked up by EXPLAIN ANALYZE via ``stats``)."""

    partitions_spilled: int = 0
    spill_bytes: int = 0


# Ordinal column threaded through window spill files so the k-way merge
# can restore the operator's input-order output contract.
_SEQ = "__window_seq__"
_SPILL_PARTITIONS = 8


class BatchWindow(BatchOperator):
    """Materializing window operator: consumes the child, computes every
    spec per partition, re-emits input-ordered batches with the window
    columns appended.

    With a memory grant, an input that exceeds the budget degrades to
    hash-partitioned spilling when every spec shares at least one
    partition-by column: rows are routed to spill files by that column
    (equal full partition keys always co-locate), each file is processed
    independently, and outputs are merged back into input order by a
    threaded sequence number. Specs with no common partition column
    (e.g. an unpartitioned running total needs the whole input) keep
    buffering in memory — documented best-effort.
    """

    def __init__(
        self,
        child: BatchOperator,
        specs: list[WindowSpec],
        batch_size: int = DEFAULT_BATCH_SIZE,
        grant: MemoryGrant | None = None,
    ) -> None:
        if not specs:
            raise ExecutionError("window requires at least one spec")
        self.child = child
        self.specs = list(specs)
        self.batch_size = batch_size
        self.grant = grant
        self.stats = WindowStats()

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names + [spec.name for spec in self.specs]

    def describe(self) -> str:
        inner = ", ".join(f"{s.func} AS {s.name}" for s in self.specs)
        return f"BatchWindow({inner})"

    def child_operators(self) -> list[BatchOperator]:
        return [self.child]

    def _common_partition_column(self) -> str | None:
        """A partition-by column shared by *every* spec, or None."""
        common = set(self.specs[0].partition_by)
        for spec in self.specs[1:]:
            common &= set(spec.partition_by)
        return min(common) if common else None

    def batches(self) -> Iterator[Batch]:
        grant = self.grant
        route_on = self._common_partition_column()
        buffered: list[Batch] = []
        reserved = 0
        overflow: Batch | None = None
        source = self.child.batches()
        try:
            for batch in source:
                dense = batch.compact()
                if dense.row_count == 0:
                    continue
                need = batch_bytes(dense.columns)
                if (
                    grant is not None
                    and route_on is not None
                    and not grant.try_reserve(need)
                ):
                    overflow = dense
                    break
                if grant is not None and route_on is not None:
                    reserved += need
                buffered.append(dense)
            if overflow is not None:
                # Everything moves to disk; the in-memory reservation is
                # returned before per-partition processing begins.
                try:
                    yield from self._spill_path(
                        route_on, buffered, overflow, source
                    )
                finally:
                    if grant is not None and reserved:
                        grant.release(reserved)
                return
            yield from self._in_memory(buffered)
        finally:
            if grant is not None and reserved and overflow is None:
                grant.release(reserved)

    # ------------------------------------------------------------------ #
    # In-memory path (original behavior)
    # ------------------------------------------------------------------ #
    def _in_memory(self, buffered: list[Batch]) -> Iterator[Batch]:
        merged = concat_batches(buffered)
        if merged is None:
            return
        names = merged.names
        rows = [dict(zip(names, values)) for values in merged.to_rows()]
        computed = compute_window_columns(rows, self.specs)
        batch = merged
        for spec in self.specs:
            column = Batch.from_pydict({spec.name: computed[spec.name]})
            batch = batch.with_column(
                spec.name, column.columns[spec.name], column.null_masks[spec.name]
            )
        yield from slice_into_batches(batch, self.batch_size)

    # ------------------------------------------------------------------ #
    # Spill path
    # ------------------------------------------------------------------ #
    def _spill_path(
        self,
        route_on: str,
        buffered: list[Batch],
        overflow: Batch,
        source: Iterator[Batch],
    ) -> Iterator[Batch]:
        child_names = self.child.output_names
        in_files = [SpillFile() for _ in range(_SPILL_PARTITIONS)]
        out_files = [SpillFile() for _ in range(_SPILL_PARTITIONS)]
        dtypes: dict[str, np.dtype] = {}
        try:
            seq = 0
            for dense in (*buffered, overflow):
                seq = self._route_batch(dense, route_on, in_files, seq, dtypes)
            for batch in source:
                dense = batch.compact()
                if dense.row_count:
                    seq = self._route_batch(dense, route_on, in_files, seq, dtypes)
            out_names = [*child_names, *(s.name for s in self.specs), _SEQ]
            for in_file, out_file in zip(in_files, out_files):
                if in_file.rows == 0:
                    continue
                self.stats.partitions_spilled += 1
                rows: list[dict[str, Any]] = []
                for batch in in_file.read_back():
                    for values in batch.to_rows():
                        rows.append(dict(zip(batch.names, values)))
                in_file.close()
                computed = compute_window_columns(rows, self.specs)
                for spec in self.specs:
                    values = computed[spec.name]
                    for i, row in enumerate(rows):
                        row[spec.name] = values[i]
                for start in range(0, len(rows), self.batch_size):
                    chunk = rows[start : start + self.batch_size]
                    out_file.append(
                        Batch.from_pydict(
                            {n: [r[n] for r in chunk] for n in out_names},
                            dtypes=dtypes,
                        )
                    )
                self.stats.spill_bytes += in_file.bytes_written
                self.stats.spill_bytes += out_file.bytes_written

            def partition_rows(out_file: SpillFile):
                for batch in out_file.read_back():
                    names = batch.names
                    seq_pos = names.index(_SEQ)
                    for values in batch.to_rows():
                        yield values[seq_pos], names, values

            out_names_no_seq = out_names[:-1]
            pending: list[dict[str, Any]] = []
            streams = [partition_rows(f) for f in out_files if f.rows]
            for _, names, values in heapq.merge(*streams, key=lambda e: e[0]):
                row = dict(zip(names, values))
                pending.append(row)
                if len(pending) >= self.batch_size:
                    yield self._emit_rows(pending, out_names_no_seq, dtypes)
                    pending = []
            if pending:
                yield self._emit_rows(pending, out_names_no_seq, dtypes)
        finally:
            for f in (*in_files, *out_files):
                f.close()

    def _route_batch(
        self,
        dense: Batch,
        route_on: str,
        in_files: list[SpillFile],
        seq: int,
        dtypes: dict[str, np.dtype],
    ) -> int:
        for name, arr in dense.columns.items():
            dtypes.setdefault(name, arr.dtype)
        n = dense.row_count
        ids = partition_of(dense.column(route_on), _SPILL_PARTITIONS)
        mask = dense.null_mask(route_on)
        if mask is not None:
            # NULL routing keys must co-locate regardless of the filler
            # value under the mask (fillers are not canonical).
            ids = ids.copy()
            ids[mask] = 0
        tagged = dense.with_column(
            _SEQ, np.arange(seq, seq + n, dtype=np.int64)
        )
        for p in range(_SPILL_PARTITIONS):
            sel = np.flatnonzero(ids == p)
            if sel.size:
                in_files[p].append(
                    Batch(
                        columns=tagged.columns,
                        null_masks=tagged.null_masks,
                        selection=sel,
                    )
                )
        return seq + n

    @staticmethod
    def _emit_rows(
        rows: list[dict[str, Any]], names: list[str], dtypes: dict[str, np.dtype]
    ) -> Batch:
        return Batch.from_pydict(
            {n: [r[n] for r in rows] for n in names}, dtypes=dtypes
        )
