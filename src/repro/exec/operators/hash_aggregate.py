"""Batch-mode hash aggregation with spilling.

Group keys are factorized to dense group ids per batch (vectorized for the
single integer-key case), and aggregate accumulators are updated with
``np.bincount`` / ``np.minimum.at`` style scatter operations.

When the accumulated state exceeds the memory grant, the operator degrades
to the paper's local/global pattern: each subsequent batch is aggregated
*locally*, the partial results are hash-partitioned to spill files, and a
final pass merges partials per partition (benchmark E10). Partials are
mergeable by construction: every aggregate is carried as (count, value).

Supported: COUNT(*), COUNT(expr), SUM, MIN, MAX, AVG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ...errors import ExecutionError
from ...observability import registry as metrics
from ..batch import DEFAULT_BATCH_SIZE, Batch, EncodedAggUnit
from ..expressions import Column, Expr
from ..memory import MemoryGrant
from ..spill import SpillFile, partition_of
from .base import BatchOperator

COUNT_STAR = "count_star"
_FUNCS = {COUNT_STAR, "count", "sum", "min", "max", "avg"}
_SPILL_PARTITIONS = 8
# Estimated retained bytes per group (keys + accumulators), for the grant.
_BYTES_PER_GROUP = 96


@dataclass
class AggregateSpec:
    """One aggregate: function, argument expression, output column name."""

    func: str
    expr: Expr | None
    name: str

    def __post_init__(self) -> None:
        if self.func not in _FUNCS:
            raise ExecutionError(f"unknown aggregate function {self.func!r}")
        if self.func == COUNT_STAR and self.expr is not None:
            raise ExecutionError("COUNT(*) takes no argument")
        if self.func != COUNT_STAR and self.expr is None:
            raise ExecutionError(f"{self.func} requires an argument")


@dataclass
class AggregateStats:
    input_rows: int = 0
    groups: int = 0
    spilled: bool = False
    partials_spilled: int = 0
    spill_bytes: int = 0



class _GroupState:
    """Group-key directory + vectorized per-aggregate accumulators.

    Counts are NumPy arrays updated with ``np.add.at``; sum/min/max over
    numeric arguments use scatter ufuncs (``np.add.at`` /
    ``np.minimum.at`` / ``np.maximum.at``) against identity-initialized
    arrays. Only string (object) aggregates fall back to a per-row loop.
    Untouched slots are detected through the per-spec non-null counts, so
    identity values never leak into results.
    """

    _INITIAL_CAPACITY = 64

    def __init__(self, key_names: list[str], specs: list[AggregateSpec]) -> None:
        self.key_names = key_names
        self.specs = specs
        self.key_to_gid: dict[tuple, int] = {}
        self.key_rows: list[tuple] = []
        self._capacity = self._INITIAL_CAPACITY
        self.counts: list[np.ndarray] = [
            np.zeros(self._capacity, dtype=np.int64) for _ in specs
        ]
        # Per spec: None until first value, then (kind, store) where kind is
        # "int" / "float" (NumPy array) or "obj" (Python list).
        self._values: list[tuple[str, Any] | None] = [None for _ in specs]

    @property
    def n_groups(self) -> int:
        return len(self.key_rows)

    def gid_of(self, key: tuple) -> int:
        gid = self.key_to_gid.get(key)
        if gid is None:
            gid = len(self.key_rows)
            self.key_to_gid[key] = gid
            self.key_rows.append(key)
            if gid >= self._capacity:
                self._grow()
        return gid

    def _grow(self) -> None:
        self._capacity *= 2
        for i, arr in enumerate(self.counts):
            grown = np.zeros(self._capacity, dtype=np.int64)
            grown[: arr.size] = arr
            self.counts[i] = grown
        for i, store in enumerate(self._values):
            if store is None:
                continue
            kind, data = store
            if kind == "obj":
                data.extend([None] * (self._capacity - len(data)))
            else:
                spec = self.specs[i]
                grown = self._identity_array(spec.func, kind, self._capacity)
                grown[: data.size] = data
                self._values[i] = (kind, grown)

    @staticmethod
    def _identity_array(func: str, kind: str, size: int) -> np.ndarray:
        if kind == "int":
            if func == "min":
                return np.full(size, np.iinfo(np.int64).max, dtype=np.int64)
            if func == "max":
                return np.full(size, np.iinfo(np.int64).min, dtype=np.int64)
            return np.zeros(size, dtype=np.int64)
        if func == "min":
            return np.full(size, np.inf, dtype=np.float64)
        if func == "max":
            return np.full(size, -np.inf, dtype=np.float64)
        return np.zeros(size, dtype=np.float64)

    def _value_store(self, spec_index: int, values: np.ndarray):
        """The (kind, store) pair for a spec, created on first use."""
        store = self._values[spec_index]
        if store is not None:
            return store
        spec = self.specs[spec_index]
        if values.dtype == object:
            store = ("obj", [None] * self._capacity)
        elif np.issubdtype(values.dtype, np.integer) or values.dtype == np.bool_:
            store = ("int", self._identity_array(spec.func, "int", self._capacity))
        else:
            store = ("float", self._identity_array(spec.func, "float", self._capacity))
        self._values[spec_index] = store
        return store

    # ------------------------------------------------------------------ #
    # Update from raw input rows
    # ------------------------------------------------------------------ #
    def update(self, batch: Batch, gids: np.ndarray, active: np.ndarray) -> None:
        for spec_index, spec in enumerate(self.specs):
            if spec.func == COUNT_STAR:
                np.add.at(self.counts[spec_index], gids, 1)
                continue
            values, nulls = spec.expr.eval_batch(batch)
            values = values[active]
            if nulls is not None:
                present = ~nulls[active]
                present_idx = np.flatnonzero(present)
                present_gids = gids[present_idx]
                present_values = values[present_idx]
            else:
                present_gids = gids
                present_values = values
            np.add.at(self.counts[spec_index], present_gids, 1)
            if spec.func == "count" or present_values.size == 0:
                continue
            self._combine_values(spec_index, spec.func, present_gids, present_values)

    def _combine_values(
        self, spec_index: int, func: str, gids: np.ndarray, values: np.ndarray
    ) -> None:
        kind, store = self._value_store(spec_index, values)
        if kind == "obj" or (values.dtype == object):
            self._combine_object(spec_index, func, gids, values)
            return
        if kind == "int":
            contributions = values.astype(np.int64)
        else:
            contributions = values.astype(np.float64)
        if func in ("sum", "avg"):
            np.add.at(store, gids, contributions)
        elif func == "min":
            np.minimum.at(store, gids, contributions)
        else:
            np.maximum.at(store, gids, contributions)

    def _combine_object(
        self, spec_index: int, func: str, gids: np.ndarray, values: np.ndarray
    ) -> None:
        store = self._values[spec_index]
        if store is None or store[0] != "obj":
            # Mixed dtypes across batches: demote the numeric store.
            self._demote_to_object(spec_index)
            store = self._values[spec_index]
        data = store[1]
        op = min if func == "min" else max if func == "max" else None
        vals = values.tolist()
        for gid, value in zip(gids.tolist(), vals):
            current = data[gid]
            if current is None:
                data[gid] = value
            elif op is not None:
                data[gid] = op(current, value)
            else:
                data[gid] = current + value

    def _demote_to_object(self, spec_index: int) -> None:
        old = self._values[spec_index]
        data: list = [None] * self._capacity
        if old is not None and old[0] != "obj":
            counts = self.counts[spec_index]
            for gid in range(self.n_groups):
                if counts[gid]:
                    data[gid] = old[1][gid].item()
        self._values[spec_index] = ("obj", data)

    # ------------------------------------------------------------------ #
    # Merge from partial rows (spill path)
    # ------------------------------------------------------------------ #
    def merge_partials(self, keys: list[tuple], partial_columns: dict[str, list]) -> None:
        for row_index, key in enumerate(keys):
            gid = self.gid_of(key)
            for spec_index, spec in enumerate(self.specs):
                count = partial_columns[f"__{spec.name}_count"][row_index]
                self.counts[spec_index][gid] += int(count)
                if spec.func in (COUNT_STAR, "count") or not count:
                    continue
                value = partial_columns[f"__{spec.name}_value"][row_index]
                if value is None:
                    continue
                self._merge_one(spec_index, spec.func, gid, value)

    def _merge_one(self, spec_index: int, func: str, gid: int, value: Any) -> None:
        sample = np.array([value])
        kind, store = self._value_store(spec_index, sample)
        if kind == "obj":
            data = store
            current = data[gid]
            if current is None:
                data[gid] = value
            elif func == "min":
                data[gid] = min(current, value)
            elif func == "max":
                data[gid] = max(current, value)
            else:
                data[gid] = current + value
            return
        if func in ("sum", "avg"):
            store[gid] += value
        elif func == "min":
            store[gid] = min(store[gid], value)
        else:
            store[gid] = max(store[gid], value)

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #
    def _value_at(self, spec_index: int, gid: int) -> Any:
        if not self.counts[spec_index][gid]:
            return None
        store = self._values[spec_index]
        if store is None:
            return None
        kind, data = store
        if kind == "obj":
            return data[gid]
        return data[gid].item()

    def finalize(self) -> Batch:
        n = self.n_groups
        data: dict[str, list] = {}
        for position, name in enumerate(self.key_names):
            data[name] = [key[position] for key in self.key_rows]
        for spec_index, spec in enumerate(self.specs):
            counts = self.counts[spec_index]
            if spec.func in (COUNT_STAR, "count"):
                data[spec.name] = counts[:n].tolist()
            elif spec.func == "avg":
                data[spec.name] = [
                    (value / counts[g]) if (value := self._value_at(spec_index, g)) is not None else None
                    for g in range(n)
                ]
            else:
                data[spec.name] = [self._value_at(spec_index, g) for g in range(n)]
        return Batch.from_pydict(data)

    def to_partial_batch(self) -> Batch:
        """Serialize state as mergeable partial rows."""
        n = self.n_groups
        data: dict[str, list] = {}
        for position, name in enumerate(self.key_names):
            data[name] = [key[position] for key in self.key_rows]
        for spec_index, spec in enumerate(self.specs):
            data[f"__{spec.name}_count"] = self.counts[spec_index][:n].tolist()
            if spec.func not in (COUNT_STAR, "count"):
                data[f"__{spec.name}_value"] = [
                    self._value_at(spec_index, g) for g in range(n)
                ]
        return Batch.from_pydict(data)




class BatchHashAggregate(BatchOperator):
    """GROUP BY + aggregates over a batch stream."""

    def __init__(
        self,
        child: BatchOperator,
        group_keys: list[str],
        aggregates: list[AggregateSpec],
        grant: MemoryGrant | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        names = [*group_keys, *(spec.name for spec in aggregates)]
        if len(set(names)) != len(names):
            raise ExecutionError(f"duplicate output names in aggregate: {names}")
        self.child = child
        self.group_keys = list(group_keys)
        self.aggregates = list(aggregates)
        self.grant = grant or MemoryGrant()
        self.batch_size = batch_size
        self.stats = AggregateStats()
        # Set by the planner when the child is a columnstore scan whose
        # units can be aggregated in encoded space (an EncodedAggRequest).
        self.encoded_request: Any | None = None

    @property
    def output_names(self) -> list[str]:
        return [*self.group_keys, *(spec.name for spec in self.aggregates)]

    def describe(self) -> str:
        aggs = ", ".join(f"{s.func}({s.expr or '*'}) AS {s.name}" for s in self.aggregates)
        encoded = ", encoded=on" if self.encoded_request is not None else ""
        return f"BatchHashAggregate(keys={self.group_keys}, aggs=[{aggs}]{encoded})"

    def child_operators(self) -> list[BatchOperator]:
        return [self.child]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def batches(self) -> Iterator[Batch]:
        state = _GroupState(self.group_keys, self.aggregates)
        spills: list[SpillFile] | None = None
        reserved = 0
        if self.encoded_request is not None:
            child_batches = self.child.encoded_agg_batches(self.encoded_request)
        else:
            child_batches = self.child.batches()
        for batch in child_batches:
            encoded = isinstance(batch, EncodedAggUnit)
            self.stats.input_rows += batch.row_count if encoded else batch.active_count
            if spills is None:
                if encoded:
                    self._accumulate_encoded(state, batch)
                else:
                    self._accumulate(state, batch)
                needed = state.n_groups * _BYTES_PER_GROUP
                if needed > reserved:
                    if self.grant.try_reserve(needed - reserved):
                        reserved = needed
                    else:
                        # Grant exhausted: switch to local-aggregate + spill.
                        self.stats.spilled = True
                        spills = [SpillFile() for _ in range(_SPILL_PARTITIONS)]
                        self._spill_partials(state.to_partial_batch(), spills)
                        self.grant.release(reserved)
                        reserved = 0
                        state = _GroupState(self.group_keys, self.aggregates)
            else:
                local = _GroupState(self.group_keys, self.aggregates)
                if encoded:
                    self._accumulate_encoded(local, batch)
                else:
                    self._accumulate(local, batch)
                self._spill_partials(local.to_partial_batch(), spills)

        if spills is None:
            self.grant.release(reserved)
            if state.n_groups == 0 and not self.group_keys:
                state.gid_of(())  # scalar aggregate over empty input: one row
            self.stats.groups = state.n_groups
            yield from _slice(state.finalize(), self.batch_size)
            return

        # Final phase: any residual in-memory state joins the partitions.
        if state.n_groups:
            self._spill_partials(state.to_partial_batch(), spills)
        self.stats.partials_spilled = sum(s.rows for s in spills)
        self.stats.spill_bytes = sum(s.bytes_written for s in spills)
        try:
            total_groups = 0
            for spill in spills:
                merged = _GroupState(self.group_keys, self.aggregates)
                for partial in spill.read_back():
                    keys, partial_columns = self._partial_rows(partial)
                    merged.merge_partials(keys, partial_columns)
                if merged.n_groups:
                    total_groups += merged.n_groups
                    yield from _slice(merged.finalize(), self.batch_size)
            if total_groups == 0 and not self.group_keys:
                empty = _GroupState(self.group_keys, self.aggregates)
                empty.gid_of(())
                total_groups = 1
                yield from _slice(empty.finalize(), self.batch_size)
            self.stats.groups = total_groups
        finally:
            for spill in spills:
                spill.close()

    # ------------------------------------------------------------------ #
    # Accumulation helpers
    # ------------------------------------------------------------------ #
    def _accumulate(self, state: _GroupState, batch: Batch) -> None:
        active = batch.active_indices()
        if active.size == 0:
            return
        gids = self._factorize(state, batch, active)
        state.update(batch, gids, active)

    # ------------------------------------------------------------------ #
    # Encoded-space accumulation
    # ------------------------------------------------------------------ #
    def _accumulate_encoded(self, state: _GroupState, unit: EncodedAggUnit) -> None:
        if self.group_keys:
            self._accumulate_code_space_groups(state, unit)
        else:
            self._accumulate_weighted_scalar(state, unit)

    def _accumulate_code_space_groups(
        self, state: _GroupState, unit: EncodedAggUnit
    ) -> None:
        """GROUP BY on dictionary codes.

        Key columns arrive as code streams: surviving rows are combined
        into one mixed-radix key per row (each key contributes its code,
        with ``n_codes`` reserved as the NULL slot), factorized with
        ``np.unique``, and only the surviving combinations are decoded to
        real group keys at the end.
        """
        active = np.flatnonzero(unit.keep)
        if active.size == 0:
            return
        combined = np.zeros(active.size, dtype=np.int64)
        dims: list[int] = []
        for key in unit.keys:
            dim = key.n_codes + 1
            codes = key.codes[active]
            if key.null_mask is not None:
                codes = np.where(key.null_mask[active], key.n_codes, codes)
            combined = combined * dim + codes
            dims.append(dim)
        uniques, inverse = np.unique(combined, return_inverse=True)
        weights = np.bincount(inverse, minlength=uniques.size).astype(np.int64)
        metrics.increment("storage.scan.agg_code_space_groups", int(uniques.size))

        # Late decode: only the surviving key combinations become values.
        work = uniques.copy()
        per_key: list[list] = []
        for key, dim in zip(reversed(unit.keys), reversed(dims)):
            code_arr = work % dim
            work //= dim
            null_slot = code_arr == key.n_codes
            if key.n_codes == 0:
                values = [None] * code_arr.size
            else:
                safe = np.where(null_slot, 0, code_arr)
                values = [
                    None if is_null else value
                    for value, is_null in zip(
                        key.decode_codes(safe).tolist(), null_slot.tolist()
                    )
                ]
            per_key.append(values)
        per_key.reverse()
        gid_map = np.fromiter(
            (state.gid_of(key) for key in zip(*per_key)),
            dtype=np.int64,
            count=uniques.size,
        )
        gids = gid_map[inverse]

        for spec_index, spec in enumerate(self.aggregates):
            if spec.func == COUNT_STAR:
                np.add.at(state.counts[spec_index], gid_map, weights)
                continue
            values, nulls = unit.columns[spec.expr.name]
            values = values[active]
            if nulls is not None:
                present_idx = np.flatnonzero(~nulls[active])
                present_gids = gids[present_idx]
                present_values = values[present_idx]
            else:
                present_gids = gids
                present_values = values
            np.add.at(state.counts[spec_index], present_gids, 1)
            if spec.func == "count" or present_values.size == 0:
                continue
            state._combine_values(spec_index, spec.func, present_gids, present_values)

    def _accumulate_weighted_scalar(
        self, state: _GroupState, unit: EncodedAggUnit
    ) -> None:
        """Scalar aggregates over per-run / per-code weighted values."""
        gid = state.gid_of(())
        active: np.ndarray | None = None
        for spec_index, spec in enumerate(self.aggregates):
            if spec.func == COUNT_STAR:
                state.counts[spec_index][gid] += unit.row_count
                continue
            name = spec.expr.name
            folded = unit.weighted.get(name)
            if folded is not None:
                self._merge_weighted(state, spec_index, spec.func, gid, folded)
                continue
            # Ineligible argument: decoded full-length by the scan.
            values, nulls = unit.columns[name]
            if active is None:
                active = np.flatnonzero(unit.keep)
            values = values[active]
            gids = np.full(active.size, gid, dtype=np.int64)
            if nulls is not None:
                present_idx = np.flatnonzero(~nulls[active])
                present_gids = gids[present_idx]
                present_values = values[present_idx]
            else:
                present_gids = gids
                present_values = values
            np.add.at(state.counts[spec_index], present_gids, 1)
            if spec.func == "count" or present_values.size == 0:
                continue
            state._combine_values(spec_index, spec.func, present_gids, present_values)

    @staticmethod
    def _merge_weighted(
        state: _GroupState, spec_index: int, func: str, gid: int, folded
    ) -> None:
        present = int(folded.weights.sum())
        state.counts[spec_index][gid] += present
        if func == "count" or present == 0:
            return
        surviving = folded.weights > 0
        values = folded.values[surviving]
        if func in ("sum", "avg"):
            # Integer-physical only (the scan gates floats out): int64
            # wraparound addition is associative, so value·weight matches
            # the decoded path's element-at-a-time accumulation exactly.
            contribution = np.dot(
                values.astype(np.int64), folded.weights[surviving]
            )
            state._combine_values(
                spec_index,
                func,
                np.array([gid], dtype=np.int64),
                np.array([contribution], dtype=np.int64),
            )
            return
        gids = np.full(values.size, gid, dtype=np.int64)
        state._combine_values(spec_index, func, gids, values)

    def _factorize(self, state: _GroupState, batch: Batch, active: np.ndarray) -> np.ndarray:
        """Map each active row to its dense group id."""
        if not self.group_keys:
            gid = state.gid_of(())
            return np.full(active.size, gid, dtype=np.int64)
        key_arrays = [batch.column(k) for k in self.group_keys]
        key_masks = [batch.null_mask(k) for k in self.group_keys]
        single = (
            len(key_arrays) == 1
            and key_arrays[0].dtype != object
            and key_masks[0] is None
        )
        if single:
            values = key_arrays[0][active]
            uniques, inverse = np.unique(values, return_inverse=True)
            gid_map = np.array(
                [state.gid_of((u.item(),)) for u in uniques], dtype=np.int64
            )
            return gid_map[inverse]
        columns = []
        for arr, mask in zip(key_arrays, key_masks):
            lst = arr[active].tolist()
            if mask is not None:
                flags = mask[active].tolist()
                lst = [None if flag else v for v, flag in zip(lst, flags)]
            columns.append(lst)
        return np.fromiter(
            (state.gid_of(key) for key in zip(*columns)),
            dtype=np.int64,
            count=active.size,
        )

    # ------------------------------------------------------------------ #
    # Spill helpers
    # ------------------------------------------------------------------ #
    def _spill_partials(self, partial: Batch, spills: list[SpillFile]) -> None:
        if partial.row_count == 0:
            return
        key = _partition_key(partial, self.group_keys)
        parts = partition_of(key, _SPILL_PARTITIONS)
        for p in range(_SPILL_PARTITIONS):
            idx = np.flatnonzero(parts == p)
            if idx.size == 0:
                continue
            spills[p].append(
                Batch(
                    columns={n: a[idx] for n, a in partial.columns.items()},
                    null_masks={
                        n: (m[idx] if m is not None else None)
                        for n, m in partial.null_masks.items()
                    },
                )
            )

    def _partial_rows(self, partial: Batch) -> tuple[list[tuple], dict[str, list]]:
        dense = partial.compact()
        keys_columns = []
        for name in self.group_keys:
            arr = dense.column(name).tolist()
            mask = dense.null_mask(name)
            if mask is not None:
                flags = mask.tolist()
                arr = [None if flag else v for v, flag in zip(arr, flags)]
            keys_columns.append(arr)
        keys = list(zip(*keys_columns)) if self.group_keys else [()] * dense.row_count
        partial_columns: dict[str, list] = {}
        for spec in self.aggregates:
            for suffix in ("count", "value"):
                column = f"__{spec.name}_{suffix}"
                if column in dense.columns:
                    arr = dense.column(column).tolist()
                    mask = dense.null_mask(column)
                    if mask is not None:
                        flags = mask.tolist()
                        arr = [None if flag else v for v, flag in zip(arr, flags)]
                    partial_columns[column] = arr
        return keys, partial_columns


def _partition_key(batch: Batch, group_keys: list[str]) -> np.ndarray:
    if not group_keys:
        return np.zeros(batch.row_count, dtype=np.int64)
    if len(group_keys) == 1:
        return batch.column(group_keys[0])
    columns = [batch.column(k).tolist() for k in group_keys]
    out = np.empty(batch.row_count, dtype=object)
    out[:] = list(zip(*columns))
    return out


def _slice(batch: Batch, batch_size: int) -> Iterator[Batch]:
    from ..batch import slice_into_batches

    yield from slice_into_batches(batch, batch_size)


def count_star(name: str = "count") -> AggregateSpec:
    """Convenience constructor for COUNT(*)."""
    return AggregateSpec(COUNT_STAR, None, name)


def agg(func: str, column_or_expr, name: str) -> AggregateSpec:
    """Convenience constructor: ``agg("sum", "amount", "total")``."""
    expr = Column(column_or_expr) if isinstance(column_or_expr, str) else column_or_expr
    return AggregateSpec(func, expr, name)
