"""Batch-mode physical operators.

The expanded operator repertoire of the paper: columnstore scan (with
segment elimination, predicate pushdown — including evaluation on encoded
data — and bitmap-filter pushdown), filter, project, hash join with
spilling, hash aggregation with spilling, sort, top-n, concat/union and
row/batch adapters.
"""

from .base import BatchOperator
from .scan import ColumnStoreScan
from .filter import BatchFilter
from .project import BatchProject
from .hash_join import BatchHashJoin
from .hash_aggregate import BatchHashAggregate
from .sort import BatchSort, BatchTop
from .union import BatchConcat

__all__ = [
    "BatchConcat",
    "BatchFilter",
    "BatchHashAggregate",
    "BatchHashJoin",
    "BatchOperator",
    "BatchProject",
    "BatchSort",
    "BatchTop",
    "ColumnStoreScan",
]
