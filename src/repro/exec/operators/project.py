"""Batch-mode projection: computes named output expressions per batch."""

from __future__ import annotations

from typing import Iterator

from ..batch import Batch
from ..expressions import Column, Expr
from .base import BatchOperator


class BatchProject(BatchOperator):
    """Evaluates ``(name, expression)`` pairs over each input batch.

    Plain column references are passed through without copying; computed
    expressions are evaluated vectorized over the full batch (the batch
    selection vector is preserved, so non-qualifying rows carry garbage
    that downstream operators never look at — as in the paper's engine).
    """

    def __init__(self, child: BatchOperator, projections: list[tuple[str, Expr]]) -> None:
        self.child = child
        self.projections = list(projections)

    @property
    def output_names(self) -> list[str]:
        return [name for name, _ in self.projections]

    def describe(self) -> str:
        inner = ", ".join(f"{name}={expr}" for name, expr in self.projections)
        return f"BatchProject({inner})"

    def child_operators(self) -> list[BatchOperator]:
        return [self.child]

    def batches(self) -> Iterator[Batch]:
        for batch in self.child.batches():
            columns = {}
            null_masks = {}
            for name, expr in self.projections:
                if isinstance(expr, Column):
                    columns[name] = batch.column(expr.name)
                    null_masks[name] = batch.null_mask(expr.name)
                else:
                    values, nulls = expr.eval_batch(batch)
                    columns[name] = values
                    null_masks[name] = nulls
            yield Batch(
                columns=columns,
                null_masks=null_masks,
                selection=batch.selection,
                locators=batch.locators,
            )
