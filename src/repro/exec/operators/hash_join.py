"""Batch-mode hash join.

Implements the paper's reworked hash join:

* build side fully consumed first, into a vectorized hash table;
* a :class:`JoinBitmapFilter` over the build keys is created during build
  and can be *pushed down* into the probe-side columnstore scan (star-join
  optimization, benchmark E6);
* when the build side exceeds its memory grant the join degrades to a
  Grace-style **spilling** join: both sides are hash-partitioned to spill
  files and partitions are joined one at a time (benchmark E10);
* inner, left-outer (probe-preserving), semi and anti joins.

Single integer-keyed joins (the star-schema common case) probe with a
sort + binary-search strategy that is fully vectorized; composite or
string keys fall back to a dictionary of key tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ...errors import ExecutionError
from ..batch import DEFAULT_BATCH_SIZE, Batch, concat_batches
from ..bloom import JoinBitmapFilter
from ..memory import MemoryGrant, batch_bytes
from ..spill import SpillFile, partition_of
from .base import BatchOperator

INNER = "inner"
LEFT_OUTER = "left"   # preserves the probe side
RIGHT_OUTER = "right"  # preserves the build side
FULL_OUTER = "full"
SEMI = "semi"
ANTI = "anti"
_JOIN_TYPES = {INNER, LEFT_OUTER, RIGHT_OUTER, FULL_OUTER, SEMI, ANTI}
_SPILL_PARTITIONS = 8


@dataclass
class JoinStats:
    build_rows: int = 0
    probe_rows: int = 0
    output_rows: int = 0
    spilled: bool = False
    spill_partitions: int = 0
    build_rows_spilled: int = 0
    probe_rows_spilled: int = 0
    spill_bytes: int = 0


class _HashTable:
    """Build-side hash table over one or more key columns."""

    def __init__(self, build: Batch, keys: list[str]) -> None:
        self.build = build
        self.keys = keys
        self.n_rows = build.row_count
        self._valid = self._non_null_rows()
        first = build.column(keys[0]) if keys else np.zeros(0)
        self._vectorized = (
            len(keys) == 1
            and first.dtype != object
            and np.issubdtype(first.dtype, np.integer)
        )
        if self._vectorized:
            key_values = build.column(keys[0]).astype(np.int64)
            valid_idx = np.flatnonzero(self._valid)
            order = valid_idx[np.argsort(key_values[valid_idx], kind="stable")]
            self._sorted_keys = key_values[order]
            self._order = order
        else:
            self._map: dict[tuple, list[int]] = {}
            key_columns = [build.column(k) for k in keys]
            for i in np.flatnonzero(self._valid).tolist():
                key = tuple(col[i] for col in key_columns)
                self._map.setdefault(key, []).append(i)

    def _non_null_rows(self) -> np.ndarray:
        valid = np.ones(self.n_rows, dtype=bool)
        for key in self.keys:
            mask = self.build.null_mask(key)
            if mask is not None:
                valid &= ~mask
        return valid

    def probe(
        self, probe: Batch, probe_keys: list[str]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Match probe rows: returns (probe_indices, build_indices), one
        entry per matching pair; probe indices are non-decreasing."""
        valid = np.ones(probe.row_count, dtype=bool)
        for key in probe_keys:
            mask = probe.null_mask(key)
            if mask is not None:
                valid &= ~mask
        if self._vectorized:
            return self._probe_vectorized(probe, probe_keys[0], valid)
        return self._probe_generic(probe, probe_keys, valid)

    def _probe_vectorized(
        self, probe: Batch, key: str, valid: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        values = probe.column(key).astype(np.int64)
        candidates = np.flatnonzero(valid)
        probe_vals = values[candidates]
        left = np.searchsorted(self._sorted_keys, probe_vals, side="left")
        right = np.searchsorted(self._sorted_keys, probe_vals, side="right")
        counts = right - left
        hit = counts > 0
        starts = left[hit]
        cnts = counts[hit]
        total = int(cnts.sum())
        if total == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        # Flatten [start, start+cnt) ranges without a Python loop.
        run_offsets = np.repeat(np.cumsum(cnts) - cnts, cnts)
        flat = np.repeat(starts, cnts) + (np.arange(total) - run_offsets)
        build_indices = self._order[flat]
        probe_indices = np.repeat(candidates[hit], cnts)
        return probe_indices.astype(np.int64), build_indices.astype(np.int64)

    def _probe_generic(
        self, probe: Batch, probe_keys: list[str], valid: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        key_columns = [probe.column(k) for k in probe_keys]
        probe_out: list[int] = []
        build_out: list[int] = []
        for i in np.flatnonzero(valid).tolist():
            key = tuple(col[i] for col in key_columns)
            matches = self._map.get(key)
            if matches:
                probe_out.extend([i] * len(matches))
                build_out.extend(matches)
        return (
            np.array(probe_out, dtype=np.int64),
            np.array(build_out, dtype=np.int64),
        )


class BatchHashJoin(BatchOperator):
    """Hash join of a probe child against a build child."""

    def __init__(
        self,
        build: BatchOperator,
        probe: BatchOperator,
        build_keys: list[str],
        probe_keys: list[str],
        join_type: str = INNER,
        grant: MemoryGrant | None = None,
        create_bitmap: bool = True,
        bitmap_target=None,  # ColumnStoreScan (or list of shards) for pushdown
        bitmap_column: str | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if join_type not in _JOIN_TYPES:
            raise ExecutionError(f"unknown join type {join_type!r}")
        if len(build_keys) != len(probe_keys) or not build_keys:
            raise ExecutionError("join key lists must be non-empty and equal length")
        overlap = set(build.output_names) & set(probe.output_names)
        if overlap and join_type not in (SEMI, ANTI):
            raise ExecutionError(f"join children share column names {sorted(overlap)}")
        self.build_child = build
        self.probe_child = probe
        self.build_keys = list(build_keys)
        self.probe_keys = list(probe_keys)
        self.join_type = join_type
        self.grant = grant or MemoryGrant()
        self.create_bitmap = create_bitmap
        self.bitmap_target = bitmap_target
        self.bitmap_column = bitmap_column
        self.batch_size = batch_size
        self.stats = JoinStats()
        self.bitmap: JoinBitmapFilter | None = None

    @property
    def output_names(self) -> list[str]:
        if self.join_type in (SEMI, ANTI):
            return self.probe_child.output_names
        return self.probe_child.output_names + self.build_child.output_names

    def describe(self) -> str:
        return (
            f"BatchHashJoin({self.join_type}, build={self.build_keys}, "
            f"probe={self.probe_keys}, bitmap={self.create_bitmap})"
        )

    def child_operators(self) -> list[BatchOperator]:
        return [self.probe_child, self.build_child]

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def batches(self) -> Iterator[Batch]:
        build_batches, build_spills = self._consume_build()
        if build_spills is None:
            build = concat_batches(build_batches)
            if build is None:
                build = _empty_like(self.build_child)
            self.stats.build_rows = build.row_count
            self._make_bitmap(build)
            table = _HashTable(build, self.build_keys)
            build_matched = np.zeros(build.row_count, dtype=bool)
            probe_dtypes: dict[str, np.dtype] = {}
            for probe_batch in self.probe_child.batches():
                dense = probe_batch.compact()
                probe_dtypes = {n: a.dtype for n, a in dense.columns.items()}
                self.stats.probe_rows += dense.row_count
                yield from self._join_one(table, build, dense, build_matched)
            if self.join_type in (RIGHT_OUTER, FULL_OUTER):
                yield from self._emit_unmatched_build(build, build_matched, probe_dtypes)
        else:
            yield from self._spilled_join(build_spills)

    # ------------------------------------------------------------------ #
    # Build phase
    # ------------------------------------------------------------------ #
    def _consume_build(self) -> tuple[list[Batch], list[SpillFile] | None]:
        """Accumulate build batches in memory, switching to spill
        partitioning when the grant runs out."""
        accumulated: list[Batch] = []
        reserved = 0
        source = self.build_child.batches()
        for batch in source:
            dense = batch.compact()
            size = batch_bytes(dense.columns)
            if self.grant.try_reserve(size):
                reserved += size
                accumulated.append(dense)
                continue
            # Grant exhausted: spill everything accumulated plus the rest
            # of the SAME iterator (restarting it would duplicate rows).
            self.stats.spilled = True
            self.stats.spill_partitions = _SPILL_PARTITIONS
            spills = [SpillFile() for _ in range(_SPILL_PARTITIONS)]
            for pending in accumulated:
                self._spill_batch(pending, self.build_keys, spills)
            self.grant.release(reserved)
            self._spill_batch(dense, self.build_keys, spills)
            for rest in source:
                self._spill_batch(rest.compact(), self.build_keys, spills)
            self.stats.build_rows_spilled = sum(s.rows for s in spills)
            self.stats.spill_bytes += sum(s.bytes_written for s in spills)
            return [], spills
        self.grant.release(reserved)
        return accumulated, None

    def _spill_batch(self, dense: Batch, keys: list[str], spills: list[SpillFile]) -> None:
        parts = partition_of(_composite_key(dense, keys), _SPILL_PARTITIONS)
        for p in range(_SPILL_PARTITIONS):
            idx = np.flatnonzero(parts == p)
            if idx.size == 0:
                continue
            spills[p].append(
                Batch(
                    columns={n: a[idx] for n, a in dense.columns.items()},
                    null_masks={
                        n: (m[idx] if m is not None else None)
                        for n, m in dense.null_masks.items()
                    },
                )
            )

    def _make_bitmap(self, build: Batch) -> None:
        if not self.create_bitmap:
            return
        keys = build.column(self.build_keys[0])
        mask = build.null_mask(self.build_keys[0])
        if mask is not None:
            keys = keys[~mask]
        self.bitmap = JoinBitmapFilter.build(keys)
        if self.bitmap_target is not None and self.bitmap_column is not None:
            from .scan import BitmapProbe

            targets = (
                self.bitmap_target
                if isinstance(self.bitmap_target, list)
                else [self.bitmap_target]
            )
            for target in targets:
                target.bitmap_probes.append(
                    BitmapProbe(column=self.bitmap_column, bitmap=self.bitmap)
                )

    # ------------------------------------------------------------------ #
    # In-memory probe
    # ------------------------------------------------------------------ #
    def _join_one(
        self,
        table: _HashTable,
        build: Batch,
        dense: Batch,
        build_matched: np.ndarray | None = None,
    ) -> Iterator[Batch]:
        probe_idx, build_idx = table.probe(dense, self.probe_keys)
        if build_matched is not None and build_idx.size:
            build_matched[build_idx] = True
        if self.join_type in (INNER, RIGHT_OUTER):
            yield from self._emit_inner(build, dense, probe_idx, build_idx)
        elif self.join_type in (LEFT_OUTER, FULL_OUTER):
            yield from self._emit_left(build, dense, probe_idx, build_idx)
        else:
            matched = np.zeros(dense.row_count, dtype=bool)
            matched[probe_idx] = True
            wanted = matched if self.join_type == SEMI else ~matched
            idx = np.flatnonzero(wanted)
            if idx.size:
                out = Batch(
                    columns={n: a[idx] for n, a in dense.columns.items()},
                    null_masks={
                        n: (m[idx] if m is not None else None)
                        for n, m in dense.null_masks.items()
                    },
                )
                self.stats.output_rows += out.row_count
                yield out

    def _emit_inner(self, build, dense, probe_idx, build_idx) -> Iterator[Batch]:
        if probe_idx.size == 0:
            return
        columns = {n: a[probe_idx] for n, a in dense.columns.items()}
        null_masks = {
            n: (m[probe_idx] if m is not None else None)
            for n, m in dense.null_masks.items()
        }
        for name in build.names:
            columns[name] = build.columns[name][build_idx]
            mask = build.null_masks.get(name)
            null_masks[name] = mask[build_idx] if mask is not None else None
        out = Batch(columns=columns, null_masks=null_masks)
        self.stats.output_rows += out.row_count
        yield out

    def _emit_left(self, build, dense, probe_idx, build_idx) -> Iterator[Batch]:
        n = dense.row_count
        matched = np.zeros(n, dtype=bool)
        matched[probe_idx] = True
        unmatched = np.flatnonzero(~matched)
        # Matched pairs + null-extended unmatched rows, in one output.
        all_probe = np.concatenate([probe_idx, unmatched])
        columns = {n2: a[all_probe] for n2, a in dense.columns.items()}
        null_masks = {
            n2: (m[all_probe] if m is not None else None)
            for n2, m in dense.null_masks.items()
        }
        pad = unmatched.size
        for name in build.names:
            arr = build.columns[name]
            mask = build.null_masks.get(name)
            matched_vals = arr[build_idx]
            pad_vals = _null_fill(arr.dtype, pad)
            columns[name] = np.concatenate([matched_vals, pad_vals])
            matched_mask = (
                mask[build_idx] if mask is not None else np.zeros(probe_idx.size, dtype=bool)
            )
            null_masks[name] = np.concatenate([matched_mask, np.ones(pad, dtype=bool)])
        if all_probe.size == 0:
            return
        out = Batch(columns=columns, null_masks=null_masks)
        self.stats.output_rows += out.row_count
        yield out

    def _emit_unmatched_build(
        self,
        build: Batch,
        build_matched: np.ndarray,
        probe_dtypes: dict[str, np.dtype] | None = None,
    ) -> Iterator[Batch]:
        """RIGHT/FULL OUTER tail: build rows no probe row matched,
        null-extended on the probe side."""
        unmatched = np.flatnonzero(~build_matched)
        if unmatched.size == 0:
            return
        probe_dtypes = probe_dtypes or {}
        columns: dict[str, np.ndarray] = {}
        null_masks: dict[str, np.ndarray | None] = {}
        for name in self.probe_child.output_names:
            dtype = probe_dtypes.get(name, np.dtype(np.int64))
            columns[name] = _null_fill(dtype, unmatched.size)
            null_masks[name] = np.ones(unmatched.size, dtype=bool)
        for name in build.names:
            columns[name] = build.columns[name][unmatched]
            mask = build.null_masks.get(name)
            null_masks[name] = mask[unmatched] if mask is not None else None
        out = Batch(columns=columns, null_masks=null_masks)
        self.stats.output_rows += out.row_count
        yield out

    # ------------------------------------------------------------------ #
    # Spilled (Grace) path
    # ------------------------------------------------------------------ #
    def _spilled_join(self, build_spills: list[SpillFile]) -> Iterator[Batch]:
        probe_spills = [SpillFile() for _ in range(_SPILL_PARTITIONS)]
        for batch in self.probe_child.batches():
            dense = batch.compact()
            self.stats.probe_rows += dense.row_count
            self._spill_batch(dense, self.probe_keys, probe_spills)
        self.stats.probe_rows_spilled = sum(s.rows for s in probe_spills)
        self.stats.spill_bytes += sum(s.bytes_written for s in probe_spills)
        try:
            for p in range(_SPILL_PARTITIONS):
                build = concat_batches(list(build_spills[p].read_back()))
                if build is None:
                    build = _empty_like(self.build_child)
                self.stats.build_rows += build.row_count
                # Note: bitmap pushdown is not available on the spill path —
                # the probe side was already consumed to partition it.
                table = _HashTable(build, self.build_keys)
                build_matched = np.zeros(build.row_count, dtype=bool)
                partition_dtypes: dict[str, np.dtype] = {}
                for probe_batch in probe_spills[p].read_back():
                    partition_dtypes = {
                        n: a.dtype for n, a in probe_batch.columns.items()
                    }
                    yield from self._join_one(table, build, probe_batch, build_matched)
                if self.join_type in (RIGHT_OUTER, FULL_OUTER):
                    yield from self._emit_unmatched_build(
                        build, build_matched, partition_dtypes
                    )
        finally:
            for spill in build_spills + probe_spills:
                spill.close()


def _composite_key(batch: Batch, keys: list[str]) -> np.ndarray:
    """A single hashable array combining the key columns."""
    if len(keys) == 1:
        return batch.column(keys[0])
    columns = [batch.column(k) for k in keys]
    out = np.empty(batch.row_count, dtype=object)
    out[:] = list(zip(*(c.tolist() for c in columns)))
    return out


def _null_fill(dtype: np.dtype, count: int) -> np.ndarray:
    if dtype == object:
        out = np.empty(count, dtype=object)
        out[:] = [""] * count
        return out
    if dtype == np.bool_:
        return np.zeros(count, dtype=np.bool_)
    return np.zeros(count, dtype=dtype)


def _empty_like(operator: BatchOperator) -> Batch:
    columns = {name: np.zeros(0, dtype=object) for name in operator.output_names}
    return Batch(columns=columns)
