"""Batch-mode concatenation (UNION ALL)."""

from __future__ import annotations

from typing import Iterator

from ...errors import ExecutionError
from ..batch import Batch
from .base import BatchOperator


class BatchConcat(BatchOperator):
    """UNION ALL: streams every child's batches in order.

    Children must agree on output column names (position-wise rename is
    applied to match the first child).
    """

    def __init__(self, children: list[BatchOperator]) -> None:
        if not children:
            raise ExecutionError("BatchConcat requires at least one child")
        arities = {len(child.output_names) for child in children}
        if len(arities) != 1:
            raise ExecutionError(f"UNION ALL children disagree on arity: {arities}")
        self.children = list(children)

    @property
    def output_names(self) -> list[str]:
        return self.children[0].output_names

    def child_operators(self) -> list[BatchOperator]:
        return list(self.children)

    def batches(self) -> Iterator[Batch]:
        names = self.output_names
        for child in self.children:
            child_names = child.output_names
            rename = dict(zip(child_names, names))
            for batch in child.batches():
                if child_names == names:
                    yield batch
                else:
                    yield Batch(
                        columns={rename[n]: arr for n, arr in batch.columns.items()},
                        null_masks={
                            rename[n]: mask for n, mask in batch.null_masks.items()
                        },
                        selection=batch.selection,
                    )
