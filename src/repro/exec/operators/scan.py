"""The batch-mode columnstore scan.

Implements the paper's scan enhancements:

* **Segment elimination** — row groups whose per-segment [min, max]
  metadata cannot satisfy the pushed predicate are skipped without
  touching their payloads.
* **Predicate pushdown onto encoded data** — single-column conjuncts over
  dictionary-encoded segments are evaluated once per *distinct value*
  (against the local dictionary) and then mapped over the code stream,
  never materializing the decoded column for filtering.
* **Bitmap-filter pushdown** — join bitmap filters built by downstream
  hash joins discard non-matching rows at the scan.
* **Delta-store scans** — delta rows are materialized column-wise and
  filtered with the same predicate, so queries see trickle-inserted rows.
* **Delete-bitmap application** — deleted rows never leave the scan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ...governance.context import checkpoint as governance_checkpoint
from ...observability import opstats
from ...observability import registry as metrics
from ...storage.columnstore import DELTA, GROUP, ColumnStoreIndex, RowLocator, ScanUnit
from ...storage.encodings import Scheme, code_keep_weights, run_keep_weights
from ...storage.rle import RleBlock
from ...types import TypeKind
from ..batch import (
    DEFAULT_BATCH_SIZE,
    Batch,
    CodeSpaceColumn,
    EncodedAggUnit,
    WeightedValues,
)
from ..bloom import JoinBitmapFilter
from ..expressions import Between, Column, Comparison, Expr, Literal, predicate_mask
from ..predicates import (
    _normalize_comparison,
    extract_column_ranges,
    single_column_of,
    split_conjuncts,
)
from .base import BatchOperator

# Mixed-radix group-key combination must stay inside int64; beyond this
# many key-combination cells the aggregate falls back to the decoded path.
_MAX_KEY_CELLS = 2**62


@dataclass
class ScanStats:
    """Observability counters (asserted on by tests and benchmarks)."""

    units_seen: int = 0
    units_eliminated: int = 0
    rows_scanned: int = 0
    rows_emitted: int = 0
    rows_rejected_by_bitmap: int = 0
    rows_rejected_deleted: int = 0
    encoded_space_conjuncts: int = 0
    conjuncts_pruned_by_range: int = 0
    delta_rows_scanned: int = 0
    columns_decoded: int = 0
    agg_runs_processed: int = 0
    agg_fallbacks: int = 0


@dataclass(frozen=True)
class EncodedAggRequest:
    """What an aggregation fast path needs from the scan (storage names).

    Built by the planner for eligible scan→aggregate subtrees: ``keys``
    are the GROUP BY columns, ``args`` the distinct bare-column aggregate
    arguments, and ``exact_sum_args`` the subset feeding SUM/AVG (whose
    accumulation order must match the decoded path bit for bit, so only
    integer-physical columns may travel as weighted values).
    """

    keys: tuple[str, ...]
    args: tuple[str, ...]
    exact_sum_args: frozenset[str]


def build_encoded_agg_request(
    group_keys: list[str], aggregates, scan_columns: list[str]
) -> EncodedAggRequest | None:
    """An :class:`EncodedAggRequest` for this aggregate, or ``None`` when
    any key or argument is not a bare scan column (expressions need the
    decoded path)."""
    available = set(scan_columns)
    if any(key not in available for key in group_keys):
        return None
    args: list[str] = []
    exact: set[str] = set()
    for spec in aggregates:
        if spec.expr is None:  # COUNT(*)
            continue
        if type(spec.expr) is not Column or spec.expr.name not in available:
            return None
        if spec.expr.name not in args:
            args.append(spec.expr.name)
        if spec.func in ("sum", "avg"):
            exact.add(spec.expr.name)
    return EncodedAggRequest(
        keys=tuple(group_keys), args=tuple(args), exact_sum_args=frozenset(exact)
    )


@dataclass
class BitmapProbe:
    """A bitmap filter pushed down onto one scan column."""

    column: str
    bitmap: JoinBitmapFilter


class ColumnStoreScan(BatchOperator):
    """Scan of a columnstore index with pushdown machinery."""

    def __init__(
        self,
        index: ColumnStoreIndex,
        columns: list[str],
        predicate: Expr | None = None,
        bitmap_probes: list[BitmapProbe] | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        include_locators: bool = False,
        encoded_eval: bool = True,
        segment_elimination: bool = True,
        shard: tuple[int, int] | None = None,
    ) -> None:
        self.index = index
        self.columns = list(columns)
        self.predicate = predicate
        self.bitmap_probes = bitmap_probes if bitmap_probes is not None else []
        self.batch_size = batch_size
        self.include_locators = include_locators
        self.encoded_eval = encoded_eval
        self.segment_elimination = segment_elimination
        # (shard_index, shard_count): under exchange parallelism each
        # worker scans the units whose ordinal hashes to its shard.
        self.shard = shard
        self.stats = ScanStats()
        self._reported: dict[str, int] = {}
        self._conjuncts = split_conjuncts(predicate)
        self._ranges = extract_column_ranges(self._conjuncts)
        # Snapshot reads install a pinned unit list (see pin()); when
        # set, batches() never touches the live directory or bitmap.
        self._pinned_units: list[ScanUnit] | None = None

    @property
    def output_names(self) -> list[str]:
        return list(self.columns)

    def describe(self) -> str:
        parts = [f"ColumnStoreScan(cols={self.columns}"]
        if self.predicate is not None:
            parts.append(f", predicate={self.predicate}")
        if self.bitmap_probes:
            parts.append(f", bitmaps={[p.column for p in self.bitmap_probes]}")
        return "".join(parts) + ")"

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def pin(
        self, units: list[ScanUnit] | None = None, epoch: int | None = None
    ) -> None:
        """Pin this scan to a snapshot-stable unit list.

        Called by the concurrency layer at statement start: afterwards
        the scan iterates the pinned units — immutable row groups with
        masks materialized at pin time, frozen delta captures — so
        concurrent DML, the tuple mover, and REBUILD can proceed without
        mutating this scan's view out from under it. ``epoch`` pins the
        committed state as of that MVCC epoch (the lock-free read path);
        ``None`` pins the current state. ``units`` lets exchange shards
        of one parallel scan share a single capture.
        """
        self._pinned_units = (
            units if units is not None else self.index.pin_scan_units(epoch)
        )

    @property
    def pinned(self) -> bool:
        return self._pinned_units is not None

    def batches(self) -> Iterator[Batch]:
        source = (
            self._pinned_units
            if self._pinned_units is not None
            else self.index.scan_units()
        )
        try:
            for ordinal, unit in enumerate(source):
                if self.shard is not None and ordinal % self.shard[1] != self.shard[0]:
                    continue
                # Per-unit checkpoint: an eliminated or fully filtered
                # unit yields nothing, so the per-batch governance
                # wrapper alone would let a selective scan run far past
                # its deadline between emissions.
                governance_checkpoint()
                self.stats.units_seen += 1
                if unit.kind == GROUP:
                    yield from self._scan_group(unit)
                else:
                    yield from self._scan_delta(unit)
        finally:
            self._report_to_registry()

    def _report_to_registry(self) -> None:
        """Publish this scan's counter growth into the metrics registry.

        Delta-based so a scan re-iterated (or abandoned early by a LIMIT)
        never double-counts what it already reported.
        """
        current = vars(self.stats)
        for name, value in current.items():
            grown = value - self._reported.get(name, 0)
            if grown:
                metrics.increment(f"storage.scan.{name}", grown)
        self._reported = dict(current)

    # ------------------------------------------------------------------ #
    # Compressed row groups
    # ------------------------------------------------------------------ #
    def _scan_group(self, unit: ScanUnit) -> Iterator[Batch]:
        group = unit.group
        assert group is not None
        if self.segment_elimination and self._eliminated(group):
            self.stats.units_eliminated += 1
            return
        row_count = group.row_count
        self.stats.rows_scanned += row_count
        keep = self._initial_keep(unit)
        keep, residual = self._encoded_conjunct_pass(group, keep)

        # Phase 2: decode the columns the residual predicate / bitmaps /
        # output need, then evaluate vectorized.
        needed = set(self.columns)
        for conjunct in residual:
            needed |= conjunct.referenced_columns()
        for probe in self.bitmap_probes:
            needed.add(probe.column)
        decoded: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray | None] = {}
        for name in sorted(needed):
            values, null_mask = self.index.decode_segment(group, name)
            decoded[name] = values
            masks[name] = null_mask
            self.stats.columns_decoded += 1
        unit_batch = Batch(columns=decoded, null_masks=masks)

        for conjunct in residual:
            keep &= predicate_mask(conjunct, unit_batch)

        keep = self._apply_bitmaps(unit_batch, keep)

        locators = None
        if self.include_locators:
            locators = _group_locators(group.group_id, row_count)
        yield from self._emit(unit_batch, keep, locators)

    def _initial_keep(self, unit: ScanUnit) -> np.ndarray:
        group = unit.group
        keep = np.ones(group.row_count, dtype=bool)
        if unit.deleted_mask is not None:
            keep &= ~unit.deleted_mask
            self.stats.rows_rejected_deleted += int(unit.deleted_mask.sum())
        return keep

    def _encoded_conjunct_pass(
        self, group, keep: np.ndarray
    ) -> tuple[np.ndarray, list[Expr]]:
        """Phase 1: fold conjuncts into ``keep`` without decoding.

        Dictionary- and run-space evaluation first; conjuncts that fit
        neither are tried against the segment's [min, max] — one provably
        TRUE for every non-NULL row is dropped (only the NULL mask is
        applied), which skips the decode for e.g. bit-packed segments.
        The remainder is returned as the residual for decoded evaluation.
        """
        residual: list[Expr] = []
        for conjunct in self._conjuncts:
            if not self.encoded_eval:
                residual.append(conjunct)
                continue
            mask = self._try_encoded_eval(group, conjunct)
            if mask is not None:
                keep &= mask
                self.stats.encoded_space_conjuncts += 1
                continue
            pruned = self._range_prunes(group, conjunct)
            if pruned is not None:
                segment = group.segment(pruned)
                null_mask = segment.null_mask()
                if null_mask is not None:
                    keep &= ~null_mask  # predicate over NULL is never TRUE
                self.stats.conjuncts_pruned_by_range += 1
                continue
            residual.append(conjunct)
        return keep, residual

    def _range_prunes(self, group, conjunct: Expr) -> str | None:
        """The column name when ``conjunct`` is TRUE for every non-NULL
        row of this unit by its segment's [min, max] alone, else None.

        Containment must account for strict operators, so this checks the
        normalized op directly instead of reusing :class:`ColumnRange`
        (which records bounds inclusively).
        """
        column = single_column_of(conjunct)
        if column is None or column not in group.segments:
            return None
        segment = group.segment(column)
        low, high = segment.min_value, segment.max_value
        if isinstance(conjunct, Comparison):
            name, literal, op = _normalize_comparison(conjunct)
            if name is None:
                return None
            if low is None:
                # All-NULL segment: the conjunct holds for all zero of its
                # non-NULL rows; the NULL mask rejects everything.
                return column
            try:
                if op == "<":
                    return column if high < literal else None
                if op == "<=":
                    return column if high <= literal else None
                if op == ">":
                    return column if low > literal else None
                if op == ">=":
                    return column if low >= literal else None
                if op == "=":
                    return column if low == high == literal else None
            except TypeError:
                return None
            return None
        if isinstance(conjunct, Between):
            if not (
                isinstance(conjunct.operand, Column)
                and isinstance(conjunct.low, Literal)
                and isinstance(conjunct.high, Literal)
            ):
                return None
            lo, hi = conjunct.low.value, conjunct.high.value
            if lo is None or hi is None:
                return None
            if low is None:
                return column
            try:
                return column if low >= lo and high <= hi else None
            except TypeError:
                return None
        return None

    def _eliminated(self, group) -> bool:
        """Row-group elimination via segment [min, max] metadata."""
        for column, rng in self._ranges.items():
            if column not in group.segments:
                continue
            if not group.segment(column).overlaps_range(rng.low, rng.high):
                return True
        return False

    def _try_encoded_eval(self, group, conjunct: Expr) -> np.ndarray | None:
        """Evaluate a single-column conjunct on compressed data.

        Two encoded-space strategies, mirroring the paper's "operate on
        compressed data" scan work:

        * **dictionary segments** — evaluate once per distinct value
          against the dictionary, then map over the code stream;
        * **RLE value-encoded segments** — evaluate once per *run*, then
          expand the per-run verdicts with the run lengths.

        Returns a full-length boolean mask, or None when the conjunct is
        not eligible (multi-column, or the segment encoding fits neither
        strategy).
        """
        column = single_column_of(conjunct)
        if column is None or column not in group.segments:
            return None
        segment = group.segment(column)
        if segment.scheme is Scheme.DICT and not segment.archived:
            # Archived segments decompress per access; evaluating here
            # would pay that twice (dictionary + code stream) on top of
            # the decode the output columns trigger anyway, so they take
            # the decoded path like archived RLE segments do.
            mask = self._dict_space_eval(segment, column, conjunct)
        elif (
            segment.scheme is Scheme.VALUE
            and isinstance(segment.stream, RleBlock)
            and not segment.archived
        ):
            mask = self._run_space_eval(segment, column, conjunct)
        else:
            return None
        null_mask = segment.null_mask()
        if null_mask is not None:
            mask &= ~null_mask  # predicate over NULL is never TRUE
        return mask

    def _dict_space_eval(self, segment, column: str, conjunct: Expr) -> np.ndarray:
        dictionary = segment.live_dictionary()
        if len(dictionary) == 0:
            # Empty dictionary = every row NULL; the code stream is filler
            # zeros with no entry to index, so never reach entry_mask[codes].
            return np.zeros(segment.row_count, dtype=bool)
        entries = np.empty(len(dictionary), dtype=object)
        entries[:] = dictionary.values
        if not isinstance(dictionary.values[0], str):
            entries = np.array(dictionary.values, dtype=segment.dtype.numpy_dtype)
        dict_batch = Batch(columns={column: entries})
        entry_mask = predicate_mask(conjunct, dict_batch)
        codes = segment.codes().astype(np.int64)
        return entry_mask[codes]

    def _run_space_eval(self, segment, column: str, conjunct: Expr) -> np.ndarray:
        run_offsets, run_lengths = segment.stream.runs()
        assert segment.value_enc is not None
        run_values = segment.value_enc.invert(run_offsets, segment.dtype.numpy_dtype)
        run_batch = Batch(columns={column: run_values})
        run_mask = predicate_mask(conjunct, run_batch)
        return np.repeat(run_mask, run_lengths)

    # ------------------------------------------------------------------ #
    # Encoded-space aggregation
    # ------------------------------------------------------------------ #
    def encoded_agg_batches(
        self, request: EncodedAggRequest
    ) -> Iterator[Batch | EncodedAggUnit]:
        """Unit stream for an eligible scan→aggregate subtree.

        Eligible row groups come out as :class:`EncodedAggUnit` — group
        keys still in code space, scalar arguments folded to per-run /
        per-code weights — while delta stores and ineligible groups fall
        back to the ordinary decoded batches, so the consumer merges both
        kinds and mixed units stay bit-identical with the decoded path.

        Only ``batches`` gets the class-creation instrumentation/governance
        wrappers, so this stream checkpoints per unit itself and mirrors
        the per-operator stats accounting for EXPLAIN ANALYZE.
        """
        source = self._encoded_agg_units(request)
        if not opstats.collecting():
            yield from source
            return
        stats = opstats.operator_stats(self)
        while True:
            start = time.perf_counter()
            try:
                batch = next(source)
            except StopIteration:
                stats.wall_seconds += time.perf_counter() - start
                return
            stats.wall_seconds += time.perf_counter() - start
            stats.batches += 1
            stats.rows += batch.active_count
            yield batch

    def _encoded_agg_units(
        self, request: EncodedAggRequest
    ) -> Iterator[Batch | EncodedAggUnit]:
        source = (
            self._pinned_units
            if self._pinned_units is not None
            else self.index.scan_units()
        )
        try:
            for ordinal, unit in enumerate(source):
                if self.shard is not None and ordinal % self.shard[1] != self.shard[0]:
                    continue
                governance_checkpoint()
                self.stats.units_seen += 1
                if unit.kind != GROUP:
                    self.stats.agg_fallbacks += 1
                    yield from self._scan_delta(unit)
                    continue
                encoded = self._encoded_agg_unit(unit, request)
                if encoded is None:
                    self.stats.agg_fallbacks += 1
                    yield from self._scan_group(unit)
                elif encoded.row_count:
                    yield encoded
        finally:
            self._report_to_registry()

    def _encoded_agg_unit(
        self, unit: ScanUnit, request: EncodedAggRequest
    ) -> EncodedAggUnit | None:
        """Fold one row group into an :class:`EncodedAggUnit`.

        ``None`` means the unit is ineligible (archived or non-DICT group
        key, bitmap probes, locators) and must take the decoded path. An
        eliminated or fully filtered unit returns an empty unit instead.
        """
        group = unit.group
        assert group is not None
        if self.bitmap_probes or self.include_locators:
            return None
        key_segments = []
        key_cells = 1
        for name in request.keys:
            if name not in group.segments:
                return None
            segment = group.segment(name)
            if segment.scheme is not Scheme.DICT or segment.archived:
                return None
            key_cells *= len(segment.dictionary) + 1  # +1 for the NULL slot
            if key_cells > _MAX_KEY_CELLS:
                return None
            key_segments.append(segment)

        if self.segment_elimination and self._eliminated(group):
            self.stats.units_eliminated += 1
            return _empty_agg_unit()
        self.stats.rows_scanned += group.row_count
        keep = self._initial_keep(unit)
        keep, residual = self._encoded_conjunct_pass(group, keep)

        # Residual conjuncts force decodes exactly as the plain scan would.
        decoded: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray | None] = {}

        def decode(name: str) -> None:
            if name in decoded:
                return
            values, null_mask = self.index.decode_segment(group, name)
            decoded[name] = values
            masks[name] = null_mask
            self.stats.columns_decoded += 1

        residual_refs: set[str] = set()
        for conjunct in residual:
            residual_refs |= conjunct.referenced_columns()
        for name in sorted(residual_refs):
            decode(name)
        if residual:
            unit_batch = Batch(columns=dict(decoded), null_masks=dict(masks))
            for conjunct in residual:
                keep &= predicate_mask(conjunct, unit_batch)

        surviving = int(keep.sum())
        self.stats.rows_emitted += surviving
        if surviving == 0:
            return _empty_agg_unit()

        keys = [
            CodeSpaceColumn(
                name=name,
                codes=segment.codes().astype(np.int64),
                dictionary=segment.dictionary,
                null_mask=segment.null_mask(),
                numpy_dtype=segment.dtype.numpy_dtype,
                is_string=segment.dtype.kind is TypeKind.VARCHAR,
            )
            for name, segment in zip(request.keys, key_segments)
        ]

        weighted: dict[str, WeightedValues] = {}
        for name in request.args:
            if request.keys:
                # Grouped aggregation accumulates arguments per row (the
                # group ids vary row to row); only the keys stay encoded.
                decode(name)
                continue
            folded = self._weighted_arg(
                group, name, keep, needs_exact_sum=name in request.exact_sum_args
            )
            if folded is not None:
                weighted[name] = folded
            else:
                decode(name)
        return EncodedAggUnit(
            row_count=surviving,
            keep=keep,
            keys=keys,
            columns={name: (decoded[name], masks[name]) for name in decoded},
            weighted=weighted,
        )

    def _weighted_arg(
        self, group, name: str, keep: np.ndarray, needs_exact_sum: bool
    ) -> WeightedValues | None:
        """Fold a scalar-aggregate argument to (values, weights), or
        ``None`` when the segment's encoding or dtype rules it out."""
        if name not in group.segments:
            return None
        segment = group.segment(name)
        if segment.archived:
            return None
        dtype = segment.dtype.numpy_dtype
        int_physical = np.issubdtype(dtype, np.integer) or dtype == np.bool_
        if needs_exact_sum and not int_physical:
            # Float SUM/AVG depends on accumulation order; weighting would
            # change it, so those stay on the per-row decoded path.
            return None
        null_mask = segment.null_mask()
        keep_present = keep if null_mask is None else keep & ~null_mask
        if segment.scheme is Scheme.DICT:
            dictionary = segment.dictionary
            codes = segment.codes()
            weights = code_keep_weights(codes, keep_present, len(dictionary))
            all_codes = np.arange(len(dictionary), dtype=np.int64)
            if segment.dtype.kind is TypeKind.VARCHAR:
                values = dictionary.decode(all_codes)
            else:
                values = dictionary.decode_typed(all_codes, dtype)
            return WeightedValues(values=values, weights=weights)
        if segment.scheme is Scheme.VALUE and isinstance(segment.stream, RleBlock):
            run_offsets, run_lengths = segment.stream.runs()
            assert segment.value_enc is not None
            values = segment.value_enc.invert(run_offsets, dtype)
            weights = run_keep_weights(run_lengths, keep_present)
            self.stats.agg_runs_processed += int(run_lengths.size)
            return WeightedValues(values=values, weights=weights)
        return None

    # ------------------------------------------------------------------ #
    # Delta stores
    # ------------------------------------------------------------------ #
    def _scan_delta(self, unit: ScanUnit) -> Iterator[Batch]:
        delta = unit.delta
        assert delta is not None
        columns, null_masks, row_ids = delta.to_columns()
        n = len(row_ids)
        self.stats.rows_scanned += n
        self.stats.delta_rows_scanned += n
        if n == 0:
            return
        unit_batch = Batch(columns=columns, null_masks=null_masks)
        keep = np.ones(n, dtype=bool)
        for conjunct in self._conjuncts:
            keep &= predicate_mask(conjunct, unit_batch)
        keep = self._apply_bitmaps(unit_batch, keep)
        locators = None
        if self.include_locators:
            locators = _delta_locators(delta.delta_id, row_ids)
        # Restrict the unit batch to output + probe columns like group scans.
        yield from self._emit(unit_batch, keep, locators)

    # ------------------------------------------------------------------ #
    # Shared tail
    # ------------------------------------------------------------------ #
    def _apply_bitmaps(self, unit_batch: Batch, keep: np.ndarray) -> np.ndarray:
        for probe in self.bitmap_probes:
            values = unit_batch.column(probe.column)
            null_mask = unit_batch.null_mask(probe.column)
            passes = probe.bitmap.might_contain(values)
            if null_mask is not None:
                passes = passes & ~null_mask
            rejected = int((keep & ~passes).sum())
            self.stats.rows_rejected_by_bitmap += rejected
            keep = keep & passes
        return keep

    def _emit(
        self,
        unit_batch: Batch,
        keep: np.ndarray,
        locators: np.ndarray | None,
    ) -> Iterator[Batch]:
        indices = np.flatnonzero(keep)
        self.stats.rows_emitted += int(indices.size)
        if indices.size == 0:
            return
        out_columns = {name: unit_batch.column(name)[indices] for name in self.columns}
        out_masks = {}
        for name in self.columns:
            mask = unit_batch.null_mask(name)
            out_masks[name] = mask[indices] if mask is not None else None
        out_locators = locators[indices] if locators is not None else None
        dense = Batch(columns=out_columns, null_masks=out_masks, locators=out_locators)
        total = dense.row_count
        for start in range(0, total, self.batch_size):
            end = min(start + self.batch_size, total)
            yield Batch(
                columns={n: a[start:end] for n, a in dense.columns.items()},
                null_masks={
                    n: (m[start:end] if m is not None else None)
                    for n, m in dense.null_masks.items()
                },
                locators=dense.locators[start:end] if dense.locators is not None else None,
            )


def _empty_agg_unit() -> EncodedAggUnit:
    return EncodedAggUnit(
        row_count=0,
        keep=np.zeros(0, dtype=bool),
        keys=[],
        columns={},
        weighted={},
    )


def _group_locators(group_id: int, row_count: int) -> np.ndarray:
    out = np.empty(row_count, dtype=object)
    out[:] = [RowLocator(GROUP, group_id, position) for position in range(row_count)]
    return out


def _delta_locators(delta_id: int, row_ids: list[int]) -> np.ndarray:
    out = np.empty(len(row_ids), dtype=object)
    out[:] = [RowLocator(DELTA, delta_id, row_id) for row_id in row_ids]
    return out
