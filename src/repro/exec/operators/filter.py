"""Batch-mode filter: narrows the qualifying-rows vector in place."""

from __future__ import annotations

from typing import Iterator

from ..batch import Batch
from ..expressions import Expr, predicate_mask
from .base import BatchOperator


class BatchFilter(BatchOperator):
    """Keeps rows where the predicate is TRUE (SQL three-valued logic).

    Does not copy column data: it only shrinks each batch's selection
    vector, which is the paper's in-batch qualifying-rows design.
    """

    def __init__(self, child: BatchOperator, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def describe(self) -> str:
        return f"BatchFilter({self.predicate})"

    def child_operators(self) -> list[BatchOperator]:
        return [self.child]

    def batches(self) -> Iterator[Batch]:
        for batch in self.child.batches():
            mask = predicate_mask(self.predicate, batch)
            narrowed = batch.narrow(mask)
            if narrowed.active_count:
                yield narrowed
