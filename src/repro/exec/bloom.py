"""Bitmap (Bloom) filters for star-join pushdown.

When a batch hash join builds its hash table on a (filtered) dimension
table, it also builds a bitmap over the join keys. The bitmap is pushed
down into the fact-table scan, discarding non-matching rows before they
reach the join — the paper's bitmap-pushdown enhancement (our E6).

Two representations, chosen automatically as SQL Server does:

* **exact bitmap** when the build keys are integers in a small range —
  one bit per possible key, zero false positives;
* **Bloom filter** otherwise (two hash probes, ~8 bits/key).
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError

# Exact bitmaps are used when the key range is at most this many values.
_EXACT_RANGE_LIMIT = 1 << 22
_BLOOM_BITS_PER_KEY = 8
_MULT1 = np.uint64(0x9E3779B97F4A7C15)
_MULT2 = np.uint64(0xC2B2AE3D27D4EB4F)


class JoinBitmapFilter:
    """A membership filter over the build side's join keys."""

    def __init__(self, kind: str, data: np.ndarray, base: int = 0, n_bits: int = 0) -> None:
        self.kind = kind  # "exact" | "bloom"
        self._bits = data
        self._base = base
        self._n_bits = n_bits

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, keys: np.ndarray) -> "JoinBitmapFilter":
        """Build the appropriate filter for the given build-side keys."""
        if keys.dtype != object and np.issubdtype(keys.dtype, np.integer):
            return cls._build_for_ints(keys.astype(np.int64))
        return cls._build_bloom(_hash_keys(keys))

    @classmethod
    def _build_for_ints(cls, keys: np.ndarray) -> "JoinBitmapFilter":
        if keys.size == 0:
            return cls("exact", np.zeros(1, dtype=bool), base=0, n_bits=1)
        low = int(keys.min())
        high = int(keys.max())
        span = high - low + 1
        if span <= _EXACT_RANGE_LIMIT:
            bits = np.zeros(span, dtype=bool)
            bits[keys - low] = True
            return cls("exact", bits, base=low, n_bits=span)
        return cls._build_bloom(keys.astype(np.uint64))

    @classmethod
    def _build_bloom(cls, hashed: np.ndarray) -> "JoinBitmapFilter":
        n_bits = max(64, int(hashed.size) * _BLOOM_BITS_PER_KEY)
        n_bits = 1 << (n_bits - 1).bit_length()  # power of two for cheap modulo
        bits = np.zeros(n_bits, dtype=bool)
        mask = np.uint64(n_bits - 1)
        h1 = (hashed * _MULT1) & mask
        h2 = ((hashed * _MULT2) >> np.uint64(17)) & mask
        bits[h1] = True
        bits[h2] = True
        return cls("bloom", bits, n_bits=n_bits)

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #
    def might_contain(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized membership test; False is definite, True is 'maybe'."""
        if self.kind == "exact":
            if keys.dtype == object or not np.issubdtype(keys.dtype, np.integer):
                raise ExecutionError("exact bitmap requires integer probe keys")
            offsets = keys.astype(np.int64) - self._base
            in_range = (offsets >= 0) & (offsets < self._n_bits)
            result = np.zeros(keys.shape[0], dtype=bool)
            result[in_range] = self._bits[offsets[in_range]]
            return result
        hashed = _hash_keys(keys)
        mask = np.uint64(self._n_bits - 1)
        h1 = (hashed * _MULT1) & mask
        h2 = ((hashed * _MULT2) >> np.uint64(17)) & mask
        return self._bits[h1] & self._bits[h2]

    @property
    def size_bits(self) -> int:
        return int(self._bits.size)

    @property
    def selectivity_bound(self) -> float:
        """Fraction of the bit space that is set (upper bound on pass rate)."""
        return float(self._bits.mean()) if self._bits.size else 0.0


def _hash_keys(keys: np.ndarray) -> np.ndarray:
    """Map keys of any supported dtype to uint64 hashes."""
    if keys.dtype == object:
        return np.fromiter(
            (hash(v) & 0xFFFFFFFFFFFFFFFF for v in keys.tolist()),
            dtype=np.uint64,
            count=keys.shape[0],
        )
    if np.issubdtype(keys.dtype, np.integer) or keys.dtype == np.bool_:
        return keys.astype(np.uint64)
    if np.issubdtype(keys.dtype, np.floating):
        return keys.astype(np.float64).view(np.uint64)
    raise ExecutionError(f"cannot hash keys of dtype {keys.dtype}")
