"""Scalar expression trees, evaluable in batch (vectorized) and row mode.

The same tree is compiled by both engines: ``eval_batch`` computes a full
column vector per batch (NumPy), ``eval_row`` computes one value per call
(the row-mode baseline's tuple-at-a-time interpretation). NULL semantics
follow SQL three-valued logic: every evaluation returns ``(values,
null_mask)`` in batch mode and ``None``-means-NULL in row mode.
"""

from __future__ import annotations

import abc
import re
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import ExecutionError, TypeMismatchError
from ..types import BOOL, FLOAT, INT, VARCHAR, DataType, TypeKind, common_numeric_type

Resolver = Callable[[str], DataType]
BatchResult = tuple[np.ndarray, "np.ndarray | None"]


def _union_nulls(*masks: np.ndarray | None) -> np.ndarray | None:
    present = [m for m in masks if m is not None]
    if not present:
        return None
    out = present[0].copy()
    for mask in present[1:]:
        out |= mask
    return out


class Expr(abc.ABC):
    """Base class of all scalar expressions."""

    @abc.abstractmethod
    def eval_batch(self, batch) -> BatchResult:
        """Evaluate over a batch, returning full-length (values, null_mask)."""

    @abc.abstractmethod
    def eval_row(self, row: dict[str, Any]) -> Any:
        """Evaluate for one row (a name->value dict); ``None`` means NULL."""

    @abc.abstractmethod
    def infer_dtype(self, resolver: Resolver) -> DataType:
        """Result type given a column-name -> DataType resolver."""

    def referenced_columns(self) -> set[str]:
        """All column names this expression reads."""
        out: set[str] = set()
        self._collect_columns(out)
        return out

    def _collect_columns(self, out: set[str]) -> None:
        for child in self.children():
            child._collect_columns(out)

    def children(self) -> Sequence["Expr"]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return str(self)


class Column(Expr):
    """Reference to a column by name."""

    def __init__(self, name: str) -> None:
        self.name = name

    def eval_batch(self, batch) -> BatchResult:
        return batch.column(self.name), batch.null_mask(self.name)

    def eval_row(self, row: dict[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise ExecutionError(f"row has no column {self.name!r}") from None

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return resolver(self.name)

    def _collect_columns(self, out: set[str]) -> None:
        out.add(self.name)

    def __str__(self) -> str:
        return self.name


class Literal(Expr):
    """A constant in its physical representation."""

    def __init__(self, value: Any, dtype: DataType | None = None) -> None:
        self.value = value
        self.dtype = dtype if dtype is not None else _literal_dtype(value)

    def eval_batch(self, batch) -> BatchResult:
        n = batch.row_count
        if self.value is None:
            return np.zeros(n, dtype=np.int64), np.ones(n, dtype=bool)
        np_dtype = self.dtype.numpy_dtype
        if np_dtype == object:
            arr = np.empty(n, dtype=object)
            arr[:] = [self.value] * n
            return arr, None
        if isinstance(self.value, float) and np.issubdtype(np_dtype, np.integer):
            # A fractional physical value in an integer-backed type (an AVG
            # over decimals embedded as a scalar-subquery literal): keep the
            # float, truncating would silently change the result.
            np_dtype = np.float64
        return np.full(n, self.value, dtype=np_dtype), None

    def eval_row(self, row: dict[str, Any]) -> Any:
        return self.value

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return self.dtype

    def __str__(self) -> str:
        return repr(self.value)


def _literal_dtype(value: Any) -> DataType:
    if value is None:
        return INT  # NULL literal; type refined by context when it matters
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT if -(2**31) <= value < 2**31 else DataType(TypeKind.BIGINT)
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return VARCHAR
    raise TypeMismatchError(f"unsupported literal {value!r}")


_ARITH_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}


class Arithmetic(Expr):
    """Binary arithmetic: + - * / %.

    Division always produces FLOAT (documented divergence from SQL Server's
    integer division); division by zero yields NULL rather than an error so
    vectorized evaluation over non-qualifying rows stays total.
    """

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITH_OPS:
            raise ExecutionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def eval_batch(self, batch) -> BatchResult:
        lv, ln = self.left.eval_batch(batch)
        rv, rn = self.right.eval_batch(batch)
        nulls = _union_nulls(ln, rn)
        if self.op in ("/", "%"):
            lv = lv.astype(np.float64)
            rv = rv.astype(np.float64)
            zero = rv == 0
            if zero.any():
                rv = np.where(zero, 1.0, rv)
                nulls = _union_nulls(nulls, zero)
        with np.errstate(over="ignore", invalid="ignore"):
            values = _ARITH_OPS[self.op](lv, rv)
        return values, nulls

    def eval_row(self, row: dict[str, Any]) -> Any:
        lv = self.left.eval_row(row)
        rv = self.right.eval_row(row)
        if lv is None or rv is None:
            return None
        if self.op == "+":
            return lv + rv
        if self.op == "-":
            return lv - rv
        if self.op == "*":
            return lv * rv
        if rv == 0:
            return None
        if self.op == "/":
            return lv / rv
        return lv % rv

    def infer_dtype(self, resolver: Resolver) -> DataType:
        if self.op in ("/", "%"):
            return FLOAT
        left = self.left.infer_dtype(resolver)
        right = self.right.infer_dtype(resolver)
        return common_numeric_type(left, right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


_COMPARE_OPS = {"=", "!=", "<", "<=", ">", ">="}


class Comparison(Expr):
    """Binary comparison with SQL NULL propagation."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARE_OPS:
            raise ExecutionError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expr]:
        return (self.left, self.right)

    def eval_batch(self, batch) -> BatchResult:
        lv, ln = self.left.eval_batch(batch)
        rv, rn = self.right.eval_batch(batch)
        values = _compare_arrays(self.op, lv, rv)
        return values, _union_nulls(ln, rn)

    def eval_row(self, row: dict[str, Any]) -> Any:
        lv = self.left.eval_row(row)
        rv = self.right.eval_row(row)
        if lv is None or rv is None:
            return None
        if self.op == "=":
            return lv == rv
        if self.op == "!=":
            return lv != rv
        if self.op == "<":
            return lv < rv
        if self.op == "<=":
            return lv <= rv
        if self.op == ">":
            return lv > rv
        return lv >= rv

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return BOOL

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def _compare_arrays(op: str, lv: np.ndarray, rv: np.ndarray) -> np.ndarray:
    if op == "=":
        result = lv == rv
    elif op == "!=":
        result = lv != rv
    elif op == "<":
        result = lv < rv
    elif op == "<=":
        result = lv <= rv
    elif op == ">":
        result = lv > rv
    else:
        result = lv >= rv
    return np.asarray(result, dtype=bool)


class And(Expr):
    """Kleene AND over any number of conjuncts."""

    def __init__(self, *conjuncts: Expr) -> None:
        if not conjuncts:
            raise ExecutionError("AND requires at least one operand")
        self.conjuncts = list(conjuncts)

    def children(self) -> Sequence[Expr]:
        return tuple(self.conjuncts)

    def eval_batch(self, batch) -> BatchResult:
        values: np.ndarray | None = None
        nulls: np.ndarray | None = None
        for conjunct in self.conjuncts:
            cv, cn = conjunct.eval_batch(batch)
            cv = np.asarray(cv, dtype=bool)
            if values is None:
                values, nulls = cv.copy(), (cn.copy() if cn is not None else None)
                continue
            # Kleene AND: a definite FALSE on either side dominates NULL.
            new_nulls = _union_nulls(nulls, cn)
            if new_nulls is not None:
                left_false = ~values & (~nulls if nulls is not None else True)
                right_false = ~cv & (~cn if cn is not None else True)
                new_nulls = new_nulls & ~(left_false | right_false)
            values = values & cv
            nulls = new_nulls
        assert values is not None
        if nulls is not None:
            values = values & ~nulls  # NULL rows must not read as TRUE
        return values, nulls

    def eval_row(self, row: dict[str, Any]) -> Any:
        saw_null = False
        for conjunct in self.conjuncts:
            value = conjunct.eval_row(row)
            if value is None:
                saw_null = True
            elif not value:
                return False
        return None if saw_null else True

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return BOOL

    def __str__(self) -> str:
        return "(" + " AND ".join(str(c) for c in self.conjuncts) + ")"


class Or(Expr):
    """Kleene OR over any number of disjuncts."""

    def __init__(self, *disjuncts: Expr) -> None:
        if not disjuncts:
            raise ExecutionError("OR requires at least one operand")
        self.disjuncts = list(disjuncts)

    def children(self) -> Sequence[Expr]:
        return tuple(self.disjuncts)

    def eval_batch(self, batch) -> BatchResult:
        values: np.ndarray | None = None
        nulls: np.ndarray | None = None
        for disjunct in self.disjuncts:
            dv, dn = disjunct.eval_batch(batch)
            dv = np.asarray(dv, dtype=bool)
            if values is None:
                values, nulls = dv.copy(), (dn.copy() if dn is not None else None)
                continue
            # Kleene OR: a definite TRUE on either side dominates NULL.
            new_nulls = _union_nulls(nulls, dn)
            if new_nulls is not None:
                left_true = values & (~nulls if nulls is not None else True)
                right_true = dv & (~dn if dn is not None else True)
                new_nulls = new_nulls & ~(left_true | right_true)
            values = values | dv
            nulls = new_nulls
        assert values is not None
        return values, nulls

    def eval_row(self, row: dict[str, Any]) -> Any:
        saw_null = False
        for disjunct in self.disjuncts:
            value = disjunct.eval_row(row)
            if value is None:
                saw_null = True
            elif value:
                return True
        return None if saw_null else False

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return BOOL

    def __str__(self) -> str:
        return "(" + " OR ".join(str(d) for d in self.disjuncts) + ")"


class Not(Expr):
    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def eval_batch(self, batch) -> BatchResult:
        values, nulls = self.operand.eval_batch(batch)
        return ~np.asarray(values, dtype=bool), nulls

    def eval_row(self, row: dict[str, Any]) -> Any:
        value = self.operand.eval_row(row)
        return None if value is None else not value

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return BOOL

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


class IsNull(Expr):
    """IS NULL / IS NOT NULL — never returns NULL itself."""

    def __init__(self, operand: Expr, negated: bool = False) -> None:
        self.operand = operand
        self.negated = negated

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def eval_batch(self, batch) -> BatchResult:
        _, nulls = self.operand.eval_batch(batch)
        if nulls is None:
            result = np.zeros(batch.row_count, dtype=bool)
        else:
            result = nulls.copy()
        if self.negated:
            result = ~result
        return result, None

    def eval_row(self, row: dict[str, Any]) -> Any:
        is_null = self.operand.eval_row(row) is None
        return not is_null if self.negated else is_null

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return BOOL

    def __str__(self) -> str:
        return f"({self.operand} IS {'NOT ' if self.negated else ''}NULL)"


class Between(Expr):
    """value BETWEEN low AND high (inclusive both ends)."""

    def __init__(self, operand: Expr, low: Expr, high: Expr) -> None:
        self.operand = operand
        self.low = low
        self.high = high

    def children(self) -> Sequence[Expr]:
        return (self.operand, self.low, self.high)

    def eval_batch(self, batch) -> BatchResult:
        values, vn = self.operand.eval_batch(batch)
        low, ln = self.low.eval_batch(batch)
        high, hn = self.high.eval_batch(batch)
        result = np.asarray((values >= low) & (values <= high), dtype=bool)
        return result, _union_nulls(vn, ln, hn)

    def eval_row(self, row: dict[str, Any]) -> Any:
        value = self.operand.eval_row(row)
        low = self.low.eval_row(row)
        high = self.high.eval_row(row)
        if value is None or low is None or high is None:
            return None
        return low <= value <= high

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return BOOL

    def __str__(self) -> str:
        return f"({self.operand} BETWEEN {self.low} AND {self.high})"


class InList(Expr):
    """value IN (c1, c2, ...) over constant lists, with SQL 3VL.

    ``values`` must not contain None — the binder strips NULL entries and
    passes ``has_null=True`` instead. Semantics: a match is TRUE; no match
    is NULL when the list had a NULL or the operand is NULL (the
    comparison to the unknown member is unknown), otherwise FALSE. An
    empty list is FALSE for every operand, NULL ones included.
    """

    def __init__(
        self, operand: Expr, values: Sequence[Any], has_null: bool = False
    ) -> None:
        self.operand = operand
        self.values = [v for v in values if v is not None]
        self.has_null = has_null or any(v is None for v in values)
        self._value_set = set(self.values)

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def eval_batch(self, batch) -> BatchResult:
        values, nulls = self.operand.eval_batch(batch)
        if not self.values:
            result = np.zeros(values.shape[0], dtype=bool)
            # Empty list: FALSE everywhere... unless the list held a NULL,
            # in which case every answer is unknown.
            if not self.has_null:
                return result, None
            return result, np.ones(values.shape[0], dtype=bool)
        if values.dtype == object:
            result = np.fromiter(
                (v in self._value_set for v in values.tolist()),
                dtype=bool,
                count=values.shape[0],
            )
        else:
            result = np.isin(values, np.array(self.values))
        if self.has_null:
            # Non-matches are unknown, matches stay TRUE.
            nulls = _union_nulls(nulls, ~result)
        return result, nulls

    def eval_row(self, row: dict[str, Any]) -> Any:
        if not self.values and not self.has_null:
            return False
        value = self.operand.eval_row(row)
        if value is None:
            return None
        if value in self._value_set:
            return True
        return None if self.has_null else False

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return BOOL

    def __str__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        if self.has_null:
            inner = f"{inner}, NULL" if inner else "NULL"
        return f"({self.operand} IN ({inner}))"


class Like(Expr):
    """SQL LIKE with % (any run) and _ (any single character)."""

    def __init__(self, operand: Expr, pattern: str, negated: bool = False) -> None:
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self._regex = compile_like(pattern)

    def children(self) -> Sequence[Expr]:
        return (self.operand,)

    def matches(self, value: str) -> bool:
        hit = self._regex.match(value) is not None
        return not hit if self.negated else hit

    def eval_batch(self, batch) -> BatchResult:
        values, nulls = self.operand.eval_batch(batch)
        regex = self._regex
        result = np.fromiter(
            (regex.match(v) is not None for v in values.tolist()),
            dtype=bool,
            count=values.shape[0],
        )
        if self.negated:
            result = ~result
        return result, nulls

    def eval_row(self, row: dict[str, Any]) -> Any:
        value = self.operand.eval_row(row)
        if value is None:
            return None
        return self.matches(value)

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return BOOL

    def __str__(self) -> str:
        return f"({self.operand} {'NOT ' if self.negated else ''}LIKE {self.pattern!r})"


def compile_like(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern to an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out) + r"\Z", re.DOTALL)


class Case(Expr):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    def __init__(
        self, branches: Sequence[tuple[Expr, Expr]], default: Expr | None = None
    ) -> None:
        if not branches:
            raise ExecutionError("CASE requires at least one WHEN branch")
        self.branches = list(branches)
        self.default = default

    def children(self) -> Sequence[Expr]:
        out: list[Expr] = []
        for cond, value in self.branches:
            out.extend((cond, value))
        if self.default is not None:
            out.append(self.default)
        return tuple(out)

    def eval_batch(self, batch) -> BatchResult:
        n = batch.row_count
        decided = np.zeros(n, dtype=bool)
        result: np.ndarray | None = None
        nulls = np.zeros(n, dtype=bool)
        for cond, value in self.branches:
            cv, cn = cond.eval_batch(batch)
            takes = np.asarray(cv, dtype=bool) & ~decided
            if cn is not None:
                takes &= ~cn
            vv, vn = value.eval_batch(batch)
            if result is None:
                result = np.zeros(n, dtype=vv.dtype) if vv.dtype != object else np.empty(n, dtype=object)
                if vv.dtype == object:
                    result[:] = [""] * n
                nulls = np.ones(n, dtype=bool)  # undecided rows default to NULL
            result = _assign_where(result, vv, takes)
            nulls[takes] = vn[takes] if vn is not None else False
            decided |= takes
        if self.default is not None:
            remaining = ~decided
            dv, dn = self.default.eval_batch(batch)
            assert result is not None
            result = _assign_where(result, dv, remaining)
            nulls[remaining] = dn[remaining] if dn is not None else False
        assert result is not None
        return result, nulls if nulls.any() else None

    def eval_row(self, row: dict[str, Any]) -> Any:
        for cond, value in self.branches:
            if self.cond_true(cond, row):
                return value.eval_row(row)
        if self.default is not None:
            return self.default.eval_row(row)
        return None

    @staticmethod
    def cond_true(cond: Expr, row: dict[str, Any]) -> bool:
        value = cond.eval_row(row)
        return bool(value) and value is not None

    def infer_dtype(self, resolver: Resolver) -> DataType:
        return self.branches[0][1].infer_dtype(resolver)

    def __str__(self) -> str:
        parts = [f"WHEN {cond} THEN {value}" for cond, value in self.branches]
        if self.default is not None:
            parts.append(f"ELSE {self.default}")
        return "CASE " + " ".join(parts) + " END"


def _assign_where(target: np.ndarray, source: np.ndarray, mask: np.ndarray) -> np.ndarray:
    if target.dtype != source.dtype and target.dtype != object:
        promoted = np.promote_types(target.dtype, source.dtype)
        target = target.astype(promoted)
    target[mask] = source[mask]
    return target


# ---------------------------------------------------------------------- #
# Scalar functions
# ---------------------------------------------------------------------- #
def _days_to_years(days: np.ndarray) -> np.ndarray:
    return days.astype("datetime64[D]").astype("datetime64[Y]").astype(np.int64) + 1970


def _days_to_months(days: np.ndarray) -> np.ndarray:
    months = days.astype("datetime64[D]").astype("datetime64[M]").astype(np.int64)
    return months % 12 + 1


def _days_to_dom(days: np.ndarray) -> np.ndarray:
    d = days.astype("datetime64[D]")
    return (d - d.astype("datetime64[M]")).astype(np.int64) + 1


_FUNCTIONS: dict[str, dict[str, Any]] = {
    "year": {
        "batch": lambda a: _days_to_years(a),
        "row": lambda v: (np.datetime64(0, "D") + np.timedelta64(v, "D")).astype(object).year,
        "dtype": lambda arg: INT,
    },
    "month": {
        "batch": lambda a: _days_to_months(a),
        "row": lambda v: (np.datetime64(0, "D") + np.timedelta64(v, "D")).astype(object).month,
        "dtype": lambda arg: INT,
    },
    "day": {
        "batch": lambda a: _days_to_dom(a),
        "row": lambda v: (np.datetime64(0, "D") + np.timedelta64(v, "D")).astype(object).day,
        "dtype": lambda arg: INT,
    },
    "abs": {
        "batch": lambda a: np.abs(a),
        "row": lambda v: abs(v),
        "dtype": lambda arg: arg,
    },
    "upper": {
        "batch": lambda a: _map_strings(a, str.upper),
        "row": lambda v: v.upper(),
        "dtype": lambda arg: VARCHAR,
    },
    "lower": {
        "batch": lambda a: _map_strings(a, str.lower),
        "row": lambda v: v.lower(),
        "dtype": lambda arg: VARCHAR,
    },
    "length": {
        "batch": lambda a: np.fromiter((len(v) for v in a.tolist()), dtype=np.int64, count=a.shape[0]),
        "row": lambda v: len(v),
        "dtype": lambda arg: INT,
    },
}


def _map_strings(arr: np.ndarray, fn: Callable[[str], str]) -> np.ndarray:
    out = np.empty(arr.shape[0], dtype=object)
    out[:] = [fn(v) for v in arr.tolist()]
    return out


# N-ary functions: (min_args, max_args). Unary functions live in
# _FUNCTIONS; these have bespoke evaluation below.
_NARY_FUNCTIONS: dict[str, tuple[int, int]] = {
    "coalesce": (1, 64),
    "concat": (1, 64),
    "substr": (2, 3),
    "round": (1, 2),
}


class FunctionCall(Expr):
    """A scalar function call.

    Unary functions (YEAR, MONTH, DAY, ABS, UPPER, LOWER, LENGTH) come
    from the ``_FUNCTIONS`` table; COALESCE, CONCAT, SUBSTR and ROUND are
    n-ary with bespoke NULL semantics (CONCAT treats NULL as '', like SQL
    Server's CONCAT; SUBSTR is 1-based).
    """

    def __init__(self, name: str, *operands: Expr) -> None:
        key = name.lower()
        if key in _FUNCTIONS:
            if len(operands) != 1:
                raise ExecutionError(f"{name} takes exactly one argument")
        elif key in _NARY_FUNCTIONS:
            lo, hi = _NARY_FUNCTIONS[key]
            if not lo <= len(operands) <= hi:
                raise ExecutionError(
                    f"{name} takes {lo}..{hi} arguments, got {len(operands)}"
                )
        else:
            raise ExecutionError(f"unknown function {name!r}")
        self.name = key
        self.operands = list(operands)

    @property
    def operand(self) -> Expr:
        """The sole operand of a unary call (kept for rewrite passes)."""
        return self.operands[0]

    def children(self) -> Sequence[Expr]:
        return tuple(self.operands)

    # ------------------------------------------------------------------ #
    def eval_batch(self, batch) -> BatchResult:
        if self.name in _FUNCTIONS:
            values, nulls = self.operands[0].eval_batch(batch)
            return _FUNCTIONS[self.name]["batch"](values), nulls
        parts = [operand.eval_batch(batch) for operand in self.operands]
        if self.name == "coalesce":
            return self._coalesce_batch(batch, parts)
        if self.name == "concat":
            return self._concat_batch(batch, parts)
        if self.name == "substr":
            return self._substr_batch(parts)
        return self._round_batch(parts)

    def _coalesce_batch(self, batch, parts) -> BatchResult:
        values, nulls = parts[0]
        result = values.copy()
        missing = nulls.copy() if nulls is not None else np.zeros(batch.row_count, dtype=bool)
        for part_values, part_nulls in parts[1:]:
            if not missing.any():
                break
            take = missing.copy()
            if part_nulls is not None:
                take &= ~part_nulls
            result = _assign_where(result, part_values, take)
            missing &= ~take
        return result, missing if missing.any() else None

    def _concat_batch(self, batch, parts) -> BatchResult:
        n = batch.row_count
        columns = []
        for part_values, part_nulls in parts:
            strings = [_as_str(v) for v in part_values.tolist()]
            if part_nulls is not None:
                flags = part_nulls.tolist()
                strings = ["" if flag else s for s, flag in zip(strings, flags)]
            columns.append(strings)
        out = np.empty(n, dtype=object)
        out[:] = ["".join(cells) for cells in zip(*columns)]
        return out, None

    def _substr_batch(self, parts) -> BatchResult:
        values, nulls = parts[0]
        starts, start_nulls = parts[1]
        nulls = _union_nulls(nulls, start_nulls)
        if len(parts) == 3:
            lengths, length_nulls = parts[2]
            nulls = _union_nulls(nulls, length_nulls)
            triples = zip(values.tolist(), starts.tolist(), lengths.tolist())
            result = [_substr(s, int(p), int(l)) for s, p, l in triples]
        else:
            result = [
                _substr(s, int(p), None)
                for s, p in zip(values.tolist(), starts.tolist())
            ]
        out = np.empty(values.shape[0], dtype=object)
        out[:] = result
        return out, nulls

    def _round_batch(self, parts) -> BatchResult:
        values, nulls = parts[0]
        digits = 0
        if len(parts) == 2:
            digit_values, _ = parts[1]
            digits = int(digit_values[0]) if digit_values.size else 0
        return np.round(values.astype(np.float64), digits), nulls

    # ------------------------------------------------------------------ #
    def eval_row(self, row: dict[str, Any]) -> Any:
        if self.name in _FUNCTIONS:
            value = self.operands[0].eval_row(row)
            if value is None:
                return None
            return _FUNCTIONS[self.name]["row"](value)
        args = [operand.eval_row(row) for operand in self.operands]
        if self.name == "coalesce":
            return next((a for a in args if a is not None), None)
        if self.name == "concat":
            return "".join("" if a is None else _as_str(a) for a in args)
        if self.name == "substr":
            if args[0] is None or args[1] is None:
                return None
            length = args[2] if len(args) == 3 else None
            if len(args) == 3 and length is None:
                return None
            return _substr(args[0], int(args[1]), None if length is None else int(length))
        if args[0] is None:
            return None
        digits = int(args[1]) if len(args) == 2 and args[1] is not None else 0
        return round(float(args[0]), digits)

    def infer_dtype(self, resolver: Resolver) -> DataType:
        if self.name in _FUNCTIONS:
            return _FUNCTIONS[self.name]["dtype"](self.operands[0].infer_dtype(resolver))
        if self.name == "coalesce":
            return self.operands[0].infer_dtype(resolver)
        if self.name in ("concat", "substr"):
            return VARCHAR
        return FLOAT

    def __str__(self) -> str:
        inner = ", ".join(str(o) for o in self.operands)
        return f"{self.name.upper()}({inner})"


def _as_str(value: Any) -> str:
    if isinstance(value, (bool, np.bool_)):
        return "true" if value else "false"
    if isinstance(value, (float, np.floating)):
        return f"{float(value):g}"
    return str(value)


def _substr(s: str, start: int, length: int | None) -> str:
    """SQL SUBSTR: 1-based start; negative/zero starts clamp like SQLite."""
    begin = max(0, start - 1)
    if length is None:
        return s[begin:]
    if length <= 0:
        return ""
    return s[begin : begin + length]


# ---------------------------------------------------------------------- #
# Predicate truth helpers
# ---------------------------------------------------------------------- #
def predicate_mask(expr: Expr, batch) -> np.ndarray:
    """Full-length boolean mask of rows where ``expr`` is TRUE (not NULL)."""
    values, nulls = expr.eval_batch(batch)
    mask = np.asarray(values, dtype=bool)
    if nulls is not None:
        mask = mask & ~nulls
    return mask


def predicate_true(expr: Expr, row: dict[str, Any]) -> bool:
    """Row-mode WHERE truth: TRUE only (NULL/FALSE both reject)."""
    value = expr.eval_row(row)
    return value is not None and bool(value)


# Convenience constructors, used by the query-builder API and tests.
def col(name: str) -> Column:
    return Column(name)


def lit(value: Any, dtype: DataType | None = None) -> Literal:
    return Literal(value, dtype)
