"""Spill files for hash join and hash aggregation.

When an operator's memory grant runs out it partitions its input by key
hash and writes partitions to spill files, then processes partitions one at
a time — the paper's graceful-degradation behaviour. Spill files are real
temporary files (pickled dense batches), so spilling has a genuine I/O and
serialization cost in benchmarks.
"""

from __future__ import annotations

import os
import pickle
import tempfile

import numpy as np

from ..errors import ExecutionError
from ..observability import registry as metrics
from .batch import Batch


class SpillFile:
    """An append-then-read-back stream of dense batches on disk.

    Every file creation and append reports into the metrics registry
    (``exec.spill.files`` / ``batches`` / ``rows`` / ``bytes_written``),
    and :attr:`bytes_written` lets the owning operator attribute spill
    volume to itself for EXPLAIN ANALYZE.
    """

    def __init__(self) -> None:
        fd, self._path = tempfile.mkstemp(prefix="repro-spill-", suffix=".bin")
        self._file = os.fdopen(fd, "w+b")
        self._n_batches = 0
        self._rows = 0
        self._bytes_written = 0
        self._closed = False
        metrics.increment("exec.spill.files")

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def n_batches(self) -> int:
        return self._n_batches

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    def append(self, batch: Batch) -> None:
        if self._closed:
            raise ExecutionError("spill file is closed")
        dense = batch.compact()
        if dense.row_count == 0:
            return
        payload = pickle.dumps(
            (dense.columns, dense.null_masks), protocol=pickle.HIGHEST_PROTOCOL
        )
        self._file.write(len(payload).to_bytes(8, "little"))
        self._file.write(payload)
        self._n_batches += 1
        self._rows += dense.row_count
        written = len(payload) + 8
        self._bytes_written += written
        metrics.increment("exec.spill.batches")
        metrics.increment("exec.spill.rows", dense.row_count)
        metrics.increment("exec.spill.bytes_written", written)

    def read_back(self):
        """Yield the spilled batches in write order."""
        if self._closed:
            raise ExecutionError("spill file is closed")
        self._file.flush()
        self._file.seek(0)
        for _ in range(self._n_batches):
            header = self._file.read(8)
            if len(header) != 8:
                raise ExecutionError("truncated spill file")
            length = int.from_bytes(header, "little")
            columns, null_masks = pickle.loads(self._file.read(length))
            yield Batch(columns=columns, null_masks=null_masks)
        self._file.seek(0, os.SEEK_END)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._file.close()
            try:
                os.unlink(self._path)
            except OSError:
                pass

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        self.close()


def partition_of(keys: np.ndarray, n_partitions: int) -> np.ndarray:
    """Deterministic hash partition of key values into ``n_partitions``."""
    from .bloom import _hash_keys

    hashed = _hash_keys(keys)
    return ((hashed * np.uint64(0x9E3779B97F4A7C15)) >> np.uint64(32)).astype(
        np.int64
    ) % n_partitions
