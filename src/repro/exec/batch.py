"""The batch: unit of data flow in batch-mode execution.

Mirrors the paper's batch layout: a set of column vectors plus a
*qualifying rows* vector. Filters shrink the qualifying vector without
copying column data; operators that materialize output (joins, aggregates)
compact first. The default batch size follows the paper's ~1k rows
(they use ~900; we use 1024).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

import numpy as np

from ..errors import ExecutionError

DEFAULT_BATCH_SIZE = 1024


@dataclass
class Batch:
    """Column vectors + null masks + qualifying-row selection.

    ``columns`` maps column name to a full-length vector; ``null_masks``
    maps name to a boolean mask (or ``None`` when the column has no NULLs).
    ``selection`` holds the indices of qualifying rows in ascending order,
    or ``None`` meaning *all rows qualify*.

    ``locators`` optionally carries row addresses (for DML): a pair of
    object arrays (kinds+container ids are folded into one object per row).
    """

    columns: dict[str, np.ndarray]
    null_masks: dict[str, np.ndarray | None] = field(default_factory=dict)
    selection: np.ndarray | None = None
    locators: np.ndarray | None = None  # object array of RowLocator, optional

    def __post_init__(self) -> None:
        lengths = {arr.shape[0] for arr in self.columns.values()}
        if len(lengths) > 1:
            raise ExecutionError(f"batch column lengths differ: {sorted(lengths)}")
        for name in self.columns:
            self.null_masks.setdefault(name, None)

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def row_count(self) -> int:
        """Physical length of the column vectors."""
        if not self.columns:
            return 0
        return next(iter(self.columns.values())).shape[0]

    @property
    def active_count(self) -> int:
        """Number of qualifying rows."""
        if self.selection is None:
            return self.row_count
        return int(self.selection.size)

    @property
    def names(self) -> list[str]:
        return list(self.columns)

    def active_indices(self) -> np.ndarray:
        """Indices of qualifying rows (always materialized)."""
        if self.selection is None:
            return np.arange(self.row_count, dtype=np.int64)
        return self.selection

    # ------------------------------------------------------------------ #
    # Column access
    # ------------------------------------------------------------------ #
    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(f"batch has no column {name!r}") from None

    def null_mask(self, name: str) -> np.ndarray | None:
        if name not in self.columns:
            raise ExecutionError(f"batch has no column {name!r}")
        return self.null_masks.get(name)

    # ------------------------------------------------------------------ #
    # Selection manipulation
    # ------------------------------------------------------------------ #
    def narrow(self, qualifying: np.ndarray) -> "Batch":
        """New batch whose selection keeps only rows where ``qualifying``
        (a full-length boolean mask) is True among currently active rows."""
        active = self.active_indices()
        kept = active[qualifying[active]]
        return Batch(
            columns=self.columns,
            null_masks=self.null_masks,
            selection=kept,
            locators=self.locators,
        )

    def compact(self) -> "Batch":
        """Materialize the selection: copy qualifying rows to dense vectors."""
        if self.selection is None:
            return self
        idx = self.selection
        columns = {name: arr[idx] for name, arr in self.columns.items()}
        null_masks = {
            name: (mask[idx] if mask is not None else None)
            for name, mask in self.null_masks.items()
        }
        locators = self.locators[idx] if self.locators is not None else None
        return Batch(columns=columns, null_masks=null_masks, selection=None, locators=locators)

    def project(self, names: list[str]) -> "Batch":
        """Keep only the named columns (no copying)."""
        return Batch(
            columns={name: self.column(name) for name in names},
            null_masks={name: self.null_masks.get(name) for name in names},
            selection=self.selection,
            locators=self.locators,
        )

    def with_column(
        self, name: str, values: np.ndarray, null_mask: np.ndarray | None = None
    ) -> "Batch":
        """New batch with one column added or replaced."""
        if values.shape[0] != self.row_count:
            raise ExecutionError(
                f"column {name!r} has {values.shape[0]} rows, batch has {self.row_count}"
            )
        columns = dict(self.columns)
        columns[name] = values
        null_masks = dict(self.null_masks)
        null_masks[name] = null_mask
        return Batch(
            columns=columns,
            null_masks=null_masks,
            selection=self.selection,
            locators=self.locators,
        )

    # ------------------------------------------------------------------ #
    # Conversion
    # ------------------------------------------------------------------ #
    def to_rows(self) -> list[tuple[Any, ...]]:
        """Qualifying rows as Python tuples (None for NULLs)."""
        dense = self.compact()
        names = dense.names
        n = dense.row_count
        out: list[tuple[Any, ...]] = []
        raw_columns = []
        for name in names:
            arr = dense.columns[name]
            mask = dense.null_masks.get(name)
            raw_columns.append((arr, mask))
        for i in range(n):
            row = []
            for arr, mask in raw_columns:
                if mask is not None and mask[i]:
                    row.append(None)
                else:
                    value = arr[i]
                    row.append(value.item() if hasattr(value, "item") else value)
            out.append(tuple(row))
        return out

    @classmethod
    def from_pydict(
        cls, data: Mapping[str, list[Any]], dtypes: Mapping[str, np.dtype] | None = None
    ) -> "Batch":
        """Build a batch from Python lists; ``None`` entries become NULLs."""
        columns: dict[str, np.ndarray] = {}
        null_masks: dict[str, np.ndarray | None] = {}
        for name, values in data.items():
            mask = np.array([v is None for v in values], dtype=bool)
            has_nulls = bool(mask.any())
            dtype = (dtypes or {}).get(name)
            if dtype is None:
                sample = next((v for v in values if v is not None), None)
                if sample is None:
                    # All-NULL column with no declared type: use a numeric
                    # vector so comparisons on (masked) filler stay total.
                    dtype = np.dtype(np.int64)
                elif isinstance(sample, str):
                    dtype = np.dtype(object)
                elif isinstance(sample, bool):
                    dtype = np.dtype(np.bool_)
                elif isinstance(sample, int):
                    dtype = np.dtype(np.int64)
                else:
                    dtype = np.dtype(np.float64)
            if dtype == object:
                arr = np.empty(len(values), dtype=object)
                arr[:] = ["" if v is None else v for v in values]
            else:
                fill: Any = False if dtype == np.bool_ else 0
                arr = np.array([fill if v is None else v for v in values], dtype=dtype)
            columns[name] = arr
            null_masks[name] = mask if has_nulls else None
        return cls(columns=columns, null_masks=null_masks)


@dataclass
class CodeSpaceColumn:
    """A dictionary-encoded group key kept in code space (never decoded).

    ``codes`` indexes ``dictionary`` for every row of the unit; NULL rows
    carry filler code 0 and are flagged by ``null_mask``. The dictionary
    is duck-typed (a storage ``LocalDictionary``) so this module keeps no
    storage imports. :meth:`decode_codes` reproduces exactly what the
    segment's own decode would emit for those codes, so late decoding of
    surviving group keys stays bit-identical with the decoded path.
    """

    name: str
    codes: np.ndarray  # int64, full unit length
    dictionary: Any
    null_mask: np.ndarray | None
    numpy_dtype: np.dtype
    is_string: bool

    @property
    def n_codes(self) -> int:
        return len(self.dictionary)

    def decode_codes(self, codes: np.ndarray) -> np.ndarray:
        if self.is_string:
            return self.dictionary.decode(codes)
        return self.dictionary.decode_typed(codes, self.numpy_dtype)


@dataclass
class WeightedValues:
    """Distinct values with surviving-row multiplicities.

    One entry per dictionary code or RLE run; ``weights[i]`` counts the
    surviving non-NULL rows carrying ``values[i]``. Weight-safe for
    COUNT/MIN/MAX on any dtype and for SUM/AVG only on integer-physical
    dtypes (int64 wraparound addition is associative, so a dot product
    matches per-row accumulation bit for bit; float addition is not).
    """

    values: np.ndarray
    weights: np.ndarray  # int64, aligned with values


@dataclass
class EncodedAggUnit:
    """One scan unit handed to the aggregate without full decoding.

    ``keep`` is the full-length qualifying mask (deletes + predicate
    already folded in); ``row_count`` counts its True entries. ``keys``
    holds each group key as a :class:`CodeSpaceColumn`; ``weighted``
    holds scalar-aggregate arguments folded to (values, weights); and
    ``columns`` carries any argument that had to be decoded anyway as
    full-length (values, null_mask) pairs.
    """

    row_count: int
    keep: np.ndarray
    keys: list[CodeSpaceColumn]
    columns: dict[str, tuple[np.ndarray, np.ndarray | None]]
    weighted: dict[str, WeightedValues]

    @property
    def active_count(self) -> int:
        """Qualifying rows, mirroring :attr:`Batch.active_count` so the
        per-operator instrumentation counts both stream kinds alike."""
        return self.row_count


def concat_batches(batches: list[Batch]) -> Batch | None:
    """Concatenate compacted batches (None when the list is empty)."""
    dense = [b.compact() for b in batches if b.active_count]
    if not dense:
        return None
    names = dense[0].names
    columns: dict[str, np.ndarray] = {}
    null_masks: dict[str, np.ndarray | None] = {}
    for name in names:
        columns[name] = np.concatenate([b.columns[name] for b in dense])
        if any(b.null_masks.get(name) is not None for b in dense):
            null_masks[name] = np.concatenate(
                [
                    b.null_masks[name]
                    if b.null_masks.get(name) is not None
                    else np.zeros(b.row_count, dtype=bool)
                    for b in dense
                ]
            )
        else:
            null_masks[name] = None
    return Batch(columns=columns, null_masks=null_masks)


def slice_into_batches(batch: Batch, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
    """Split a large dense batch into engine-sized batches."""
    dense = batch.compact()
    total = dense.row_count
    for start in range(0, total, batch_size):
        end = min(start + batch_size, total)
        columns = {name: arr[start:end] for name, arr in dense.columns.items()}
        null_masks = {
            name: (mask[start:end] if mask is not None else None)
            for name, mask in dense.null_masks.items()
        }
        locators = dense.locators[start:end] if dense.locators is not None else None
        yield Batch(columns=columns, null_masks=null_masks, locators=locators)
