"""Execution engines: batch (vectorized) mode and row mode.

Batch mode is the paper's core query-processing contribution: operators
exchange :class:`~repro.exec.batch.Batch` objects (column vectors plus a
qualifying-rows vector) instead of single rows, amortizing interpretation
overhead across ~1k rows. The row-mode engine
(:mod:`repro.exec.row_engine`) is the tuple-at-a-time baseline the paper
compares against.
"""

from .batch import Batch

__all__ = ["Batch"]
