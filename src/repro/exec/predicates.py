"""Predicate analysis shared by the scan operator and the planner.

Splits predicates into conjuncts, extracts per-column value ranges for
segment elimination, and classifies which conjuncts can be evaluated in
encoded (dictionary-code) space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .expressions import And, Between, Column, Comparison, Expr, InList, Literal


def split_conjuncts(expr: Expr | None) -> list[Expr]:
    """Flatten nested ANDs into a conjunct list (empty for None)."""
    if expr is None:
        return []
    if isinstance(expr, And):
        out: list[Expr] = []
        for conjunct in expr.conjuncts:
            out.extend(split_conjuncts(conjunct))
        return out
    return [expr]


def combine_conjuncts(conjuncts: list[Expr]) -> Expr | None:
    """Inverse of :func:`split_conjuncts`."""
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return And(*conjuncts)


@dataclass
class ColumnRange:
    """Accumulated [low, high] bounds for one column (None = unbounded)."""

    low: Any = None
    high: Any = None

    def tighten_low(self, value: Any) -> None:
        if self.low is None or value > self.low:
            self.low = value

    def tighten_high(self, value: Any) -> None:
        if self.high is None or value < self.high:
            self.high = value


def extract_column_ranges(conjuncts: list[Expr]) -> dict[str, ColumnRange]:
    """Per-column [low, high] bounds implied by simple conjuncts.

    Understands ``col <op> literal`` (either side), ``col BETWEEN a AND b``
    and ``col IN (...)``. Used for segment elimination: a segment whose
    [min, max] misses the range cannot contain qualifying rows.
    """
    ranges: dict[str, ColumnRange] = {}

    def bounds_for(name: str) -> ColumnRange:
        return ranges.setdefault(name, ColumnRange())

    for conjunct in conjuncts:
        if isinstance(conjunct, Comparison):
            column, literal, op = _normalize_comparison(conjunct)
            if column is None:
                continue
            rng = bounds_for(column)
            if op == "=":
                rng.tighten_low(literal)
                rng.tighten_high(literal)
            elif op in ("<", "<="):
                rng.tighten_high(literal)
            elif op in (">", ">="):
                rng.tighten_low(literal)
            # != contributes no useful range
        elif isinstance(conjunct, Between):
            if (
                isinstance(conjunct.operand, Column)
                and isinstance(conjunct.low, Literal)
                and isinstance(conjunct.high, Literal)
                and conjunct.low.value is not None
                and conjunct.high.value is not None
            ):
                rng = bounds_for(conjunct.operand.name)
                rng.tighten_low(conjunct.low.value)
                rng.tighten_high(conjunct.high.value)
        elif isinstance(conjunct, InList):
            if isinstance(conjunct.operand, Column) and conjunct.values:
                non_null = [v for v in conjunct.values if v is not None]
                if non_null:
                    rng = bounds_for(conjunct.operand.name)
                    rng.tighten_low(min(non_null))
                    rng.tighten_high(max(non_null))
    return ranges


def _normalize_comparison(comparison: Comparison) -> tuple[str | None, Any, str]:
    """Return (column, literal, op) with the column on the left, or
    (None, ..) when the shape is not column-vs-literal."""
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
    left, right = comparison.left, comparison.right
    if isinstance(left, Column) and isinstance(right, Literal) and right.value is not None:
        return left.name, right.value, comparison.op
    if isinstance(left, Literal) and isinstance(right, Column) and left.value is not None:
        return right.name, left.value, flip[comparison.op]
    return None, None, comparison.op


def single_column_of(expr: Expr) -> str | None:
    """The only column an expression references, or None if not exactly one."""
    refs = expr.referenced_columns()
    if len(refs) == 1:
        return next(iter(refs))
    return None
