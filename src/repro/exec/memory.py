"""Memory grants for batch operators.

The paper's enhanced hash join and hash aggregate spill gracefully when
their memory grant is exhausted instead of failing the query. We model the
grant as byte accounting over the NumPy buffers an operator retains; when a
reservation would exceed the grant, the operator must spill (or the grant
raises, if spilling is disabled).

Grants are also the seam where per-query governance plugs in: a grant
created while a :class:`~repro.governance.QueryContext` is active charges
every reservation against that context too. The context's *soft* budget
turns an over-budget reservation into a spill signal (``try_reserve``
returns False, exactly like grant exhaustion), its *hard* limit and the
process-wide :class:`~repro.governance.MemoryGovernor` cap raise a
retryable :class:`~repro.errors.ResourceExhaustedError`. Ungoverned
callers (no active context) behave exactly as before.
"""

from __future__ import annotations

import numpy as np

from ..errors import SpillBudgetError
from ..governance import RESERVE_OK
from ..governance import context as _gov

DEFAULT_GRANT_BYTES = 64 * 1024 * 1024


def batch_bytes(columns: dict[str, np.ndarray]) -> int:
    """Approximate retained size of a set of column vectors."""
    total = 0
    for arr in columns.values():
        if arr.dtype == object:
            total += sum(len(v) + 50 for v in arr.tolist() if isinstance(v, str))
            total += arr.shape[0] * 8
        else:
            total += arr.nbytes
    return total


class MemoryGrant:
    """Byte budget shared by the operators of one query.

    Binds to the governing :class:`QueryContext` active on the thread
    that *constructs* the grant (the planner thread), so reservations and
    releases from exchange worker threads are still charged to the right
    query even before the worker has activated the context itself.
    """

    def __init__(
        self,
        budget_bytes: int = DEFAULT_GRANT_BYTES,
        allow_spill: bool = True,
        context=None,
    ) -> None:
        self.budget_bytes = budget_bytes
        self.allow_spill = allow_spill
        self.reserved_bytes = 0
        self.peak_bytes = 0
        self._ctx = context if context is not None else _gov.current()

    def try_reserve(self, n_bytes: int) -> bool:
        """Reserve if it fits; returns False when the operator must spill.

        Order of checks: the grant's own budget first (preserves the
        ungoverned behavior bit for bit), then the governing context —
        whose hard violations raise ResourceExhaustedError rather than
        returning False.
        """
        if self.reserved_bytes + n_bytes > self.budget_bytes:
            if not self.allow_spill:
                raise SpillBudgetError(
                    f"memory grant of {self.budget_bytes} bytes exhausted "
                    f"({self.reserved_bytes} reserved, {n_bytes} requested) "
                    "and spilling is disabled"
                )
            return False
        if self._ctx is not None:
            if self._ctx.try_reserve(n_bytes) != RESERVE_OK:
                # Over the query's soft budget: degrade to spilling, same
                # contract as grant exhaustion.
                if not self.allow_spill:
                    raise SpillBudgetError(
                        f"query memory budget of "
                        f"{self._ctx.memory_budget_bytes} bytes exhausted "
                        f"({self._ctx.reserved_bytes} reserved, {n_bytes} "
                        "requested) and spilling is disabled"
                    )
                return False
        self.reserved_bytes += n_bytes
        self.peak_bytes = max(self.peak_bytes, self.reserved_bytes)
        return True

    def release(self, n_bytes: int) -> None:
        released = min(n_bytes, self.reserved_bytes)
        self.reserved_bytes -= released
        if self._ctx is not None and released:
            self._ctx.release(released)

    @property
    def available_bytes(self) -> int:
        return max(0, self.budget_bytes - self.reserved_bytes)
