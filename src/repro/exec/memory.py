"""Memory grants for batch operators.

The paper's enhanced hash join and hash aggregate spill gracefully when
their memory grant is exhausted instead of failing the query. We model the
grant as byte accounting over the NumPy buffers an operator retains; when a
reservation would exceed the grant, the operator must spill (or the grant
raises, if spilling is disabled).
"""

from __future__ import annotations

import numpy as np

from ..errors import SpillBudgetError

DEFAULT_GRANT_BYTES = 64 * 1024 * 1024


def batch_bytes(columns: dict[str, np.ndarray]) -> int:
    """Approximate retained size of a set of column vectors."""
    total = 0
    for arr in columns.values():
        if arr.dtype == object:
            total += sum(len(v) + 50 for v in arr.tolist() if isinstance(v, str))
            total += arr.shape[0] * 8
        else:
            total += arr.nbytes
    return total


class MemoryGrant:
    """Byte budget shared by the operators of one query."""

    def __init__(self, budget_bytes: int = DEFAULT_GRANT_BYTES, allow_spill: bool = True) -> None:
        self.budget_bytes = budget_bytes
        self.allow_spill = allow_spill
        self.reserved_bytes = 0
        self.peak_bytes = 0

    def try_reserve(self, n_bytes: int) -> bool:
        """Reserve if it fits; returns False when the grant is exhausted."""
        if self.reserved_bytes + n_bytes > self.budget_bytes:
            if not self.allow_spill:
                raise SpillBudgetError(
                    f"memory grant of {self.budget_bytes} bytes exhausted "
                    f"({self.reserved_bytes} reserved, {n_bytes} requested) "
                    "and spilling is disabled"
                )
            return False
        self.reserved_bytes += n_bytes
        self.peak_bytes = max(self.peak_bytes, self.reserved_bytes)
        return True

    def release(self, n_bytes: int) -> None:
        self.reserved_bytes = max(0, self.reserved_bytes - n_bytes)

    @property
    def available_bytes(self) -> int:
        return max(0, self.budget_bytes - self.reserved_bytes)
