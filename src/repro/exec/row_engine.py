"""Row-mode execution: the tuple-at-a-time Volcano baseline.

Every operator pulls one row (a name -> value dict) at a time from its
child and interprets expressions per row — the classical engine whose
per-row overhead batch mode amortizes away. The paper's headline numbers
(10x-100x) compare exactly this engine over a row store against batch mode
over a columnstore; benchmark E3/E4 reproduce that comparison.

The engine deliberately shares the expression tree and aggregate specs
with batch mode, so both engines compute identical results.
"""

from __future__ import annotations

import abc
import heapq
from typing import Any, Iterator

from ..errors import ExecutionError
from ..governance.context import checkpoint as governance_checkpoint
from ..governance.context import governed_rows
from ..observability.opstats import OperatorStats, instrument_rows, operator_stats
from ..rowstore.table import RowStoreTable
from ..storage.columnstore import ColumnStoreIndex
from .batch import DEFAULT_BATCH_SIZE, Batch
from .expressions import Expr, predicate_true
from .operators.base import BatchOperator
from .operators.hash_aggregate import COUNT_STAR, AggregateSpec
from .operators.sort import _NullsLast
from .operators.window import WindowSpec, compute_window_columns

RID_COLUMN = "__rid__"

# Source scans re-check governance every this many *scanned* rows (the
# emission wrappers only see rows that survive the predicate).
_SCAN_CHECK_INTERVAL = 256


class RowOperator(abc.ABC):
    """A pull-based tuple-at-a-time operator.

    Like :class:`BatchOperator`, every concrete ``rows`` implementation is
    wrapped with the observability instrumented iterator at class-creation
    time, so batch-vs-row comparisons report runtime stats on both sides —
    and with the governance wrapper, so a governed statement hits a
    cancellation checkpoint every few dozen emitted rows.
    """

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        rows = cls.__dict__.get("rows")
        if rows is not None and not getattr(rows, "_instrumented", False):
            cls.rows = instrument_rows(governed_rows(rows))

    @property
    @abc.abstractmethod
    def output_names(self) -> list[str]:
        """Names of the fields each produced row dict carries."""

    @abc.abstractmethod
    def rows(self) -> Iterator[dict[str, Any]]:
        """Produce output rows one at a time."""

    @property
    def op_stats(self) -> OperatorStats:
        """Runtime counters (filled while stats collection is on)."""
        return operator_stats(self)

    def explain_lines(self, depth: int = 0) -> list[str]:
        pad = "  " * depth
        lines = [f"{pad}{self.describe()}"]
        for child in self.child_operators():
            lines.extend(child.explain_lines(depth + 1))
        return lines

    def describe(self) -> str:
        return type(self).__name__

    def child_operators(self) -> list["RowOperator"]:
        return []


class RowTableScan(RowOperator):
    """Heap scan of a row-store table with a residual predicate."""

    def __init__(
        self,
        table: RowStoreTable,
        columns: list[str],
        predicate: Expr | None = None,
        include_rids: bool = False,
    ) -> None:
        self.table = table
        self.columns = list(columns)
        self.predicate = predicate
        self.include_rids = include_rids
        self._positions = [table.schema.position(c) for c in columns]
        self._all_names = table.schema.names

    @property
    def output_names(self) -> list[str]:
        return self.columns + ([RID_COLUMN] if self.include_rids else [])

    def describe(self) -> str:
        return f"RowTableScan(cols={self.columns}, predicate={self.predicate})"

    def rows(self) -> Iterator[dict[str, Any]]:
        names = self._all_names
        predicate = self.predicate
        # Checkpoint on *scanned* rows, not emitted ones: a selective
        # predicate can reject thousands of rows between yields, and the
        # emission-side governance wrapper never runs while we filter.
        for scanned, (rid, row) in enumerate(self.table.scan()):
            if scanned % _SCAN_CHECK_INTERVAL == 0:
                governance_checkpoint()
            row_map = dict(zip(names, row))
            if predicate is not None and not predicate_true(predicate, row_map):
                continue
            out = {c: row_map[c] for c in self.columns}
            if self.include_rids:
                out[RID_COLUMN] = rid
            yield out


class RowIndexSeek(RowOperator):
    """B+tree index seek on a row-store table.

    Seeks the index on its leading column's [low, high] bounds, fetches
    the base rows, and applies the residual predicate — the classical
    OLTP access path the optimizer prefers over a heap scan when a
    selective sargable predicate matches an index.
    """

    def __init__(
        self,
        table: RowStoreTable,
        index,
        columns: list[str],
        low: Any,
        high: Any,
        predicate: Expr | None = None,
        include_rids: bool = False,
    ) -> None:
        self.table = table
        self.index = index
        self.columns = list(columns)
        self.low = low
        self.high = high
        self.predicate = predicate
        self.include_rids = include_rids
        self._all_names = table.schema.names

    @property
    def output_names(self) -> list[str]:
        return self.columns + ([RID_COLUMN] if self.include_rids else [])

    def describe(self) -> str:
        bounds = f"[{self.low!r}..{self.high!r}]"
        return (
            f"RowIndexSeek(index=({', '.join(self.index.columns)}), "
            f"range={bounds}, residual={self.predicate})"
        )

    def rows(self) -> Iterator[dict[str, Any]]:
        names = self._all_names
        predicate = self.predicate
        low_key = (self.low,) if self.low is not None else None
        high_key = (self.high,) if self.high is not None else None
        for scanned, rid in enumerate(self.index.seek_range(low_key, high_key)):
            if scanned % _SCAN_CHECK_INTERVAL == 0:
                governance_checkpoint()
            row = self.table.get(rid)
            if row is None:
                continue
            row_map = dict(zip(names, row))
            if predicate is not None and not predicate_true(predicate, row_map):
                continue
            out = {c: row_map[c] for c in self.columns}
            if self.include_rids:
                out[RID_COLUMN] = rid
            yield out


class RowColumnStoreScan(RowOperator):
    """Row-mode scan over a columnstore index (mixed-mode plans).

    Decompresses row groups and feeds rows one at a time — storage is
    columnar but execution pays full per-row interpretation, isolating the
    batch-execution benefit in benchmark E4.
    """

    def __init__(
        self,
        index: ColumnStoreIndex,
        columns: list[str],
        predicate: Expr | None = None,
    ) -> None:
        self.index = index
        self.columns = list(columns)
        self.predicate = predicate
        self._all_names = index.schema.names
        self._pinned_units = None

    @property
    def output_names(self) -> list[str]:
        return list(self.columns)

    def describe(self) -> str:
        return f"RowColumnStoreScan(cols={self.columns}, predicate={self.predicate})"

    def pin(self, units=None, epoch: int | None = None) -> None:
        """Pin to a snapshot-stable unit list (same contract as
        :meth:`ColumnStoreScan.pin`): row-mode columnstore scans are
        pinnable too, so a mixed-mode plan over a columnstore can run
        lock-free against a snapshot while per-table latch writers
        mutate the live structures.
        """
        self._pinned_units = (
            units if units is not None else self.index.pin_scan_units(epoch)
        )

    @property
    def pinned(self) -> bool:
        return self._pinned_units is not None

    def rows(self) -> Iterator[dict[str, Any]]:
        names = self._all_names
        predicate = self.predicate
        source = (
            self.index.iter_unit_rows(self._pinned_units)
            if self._pinned_units is not None
            else self.index._iter_live_rows()
        )
        for scanned, row in enumerate(source):
            if scanned % _SCAN_CHECK_INTERVAL == 0:
                governance_checkpoint()
            row_map = dict(zip(names, row))
            if predicate is not None and not predicate_true(predicate, row_map):
                continue
            yield {c: row_map[c] for c in self.columns}


class RowFilter(RowOperator):
    def __init__(self, child: RowOperator, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def describe(self) -> str:
        return f"RowFilter({self.predicate})"

    def child_operators(self) -> list[RowOperator]:
        return [self.child]

    def rows(self) -> Iterator[dict[str, Any]]:
        predicate = self.predicate
        for row in self.child.rows():
            if predicate_true(predicate, row):
                yield row


class RowProject(RowOperator):
    def __init__(self, child: RowOperator, projections: list[tuple[str, Expr]]) -> None:
        self.child = child
        self.projections = list(projections)

    @property
    def output_names(self) -> list[str]:
        return [name for name, _ in self.projections]

    def describe(self) -> str:
        inner = ", ".join(f"{n}={e}" for n, e in self.projections)
        return f"RowProject({inner})"

    def child_operators(self) -> list[RowOperator]:
        return [self.child]

    def rows(self) -> Iterator[dict[str, Any]]:
        for row in self.child.rows():
            yield {name: expr.eval_row(row) for name, expr in self.projections}


class RowHashJoin(RowOperator):
    """Tuple-at-a-time hash join (inner / left / semi / anti)."""

    def __init__(
        self,
        build: RowOperator,
        probe: RowOperator,
        build_keys: list[str],
        probe_keys: list[str],
        join_type: str = "inner",
    ) -> None:
        if join_type not in ("inner", "left", "right", "full", "semi", "anti"):
            raise ExecutionError(f"unknown join type {join_type!r}")
        overlap = set(build.output_names) & set(probe.output_names)
        if overlap and join_type not in ("semi", "anti"):
            raise ExecutionError(f"join children share column names {sorted(overlap)}")
        self.build_child = build
        self.probe_child = probe
        self.build_keys = list(build_keys)
        self.probe_keys = list(probe_keys)
        self.join_type = join_type

    @property
    def output_names(self) -> list[str]:
        if self.join_type in ("semi", "anti"):
            return self.probe_child.output_names
        return self.probe_child.output_names + self.build_child.output_names

    def describe(self) -> str:
        return f"RowHashJoin({self.join_type}, {self.build_keys}<->{self.probe_keys})"

    def child_operators(self) -> list[RowOperator]:
        return [self.probe_child, self.build_child]

    def rows(self) -> Iterator[dict[str, Any]]:
        table: dict[tuple, list[dict[str, Any]]] = {}
        unmatched_build: list[dict[str, Any]] = []
        preserve_build = self.join_type in ("right", "full")
        for row in self.build_child.rows():
            key = tuple(row[k] for k in self.build_keys)
            if any(v is None for v in key):
                if preserve_build:
                    unmatched_build.append(row)
                continue
            table.setdefault(key, []).append(row)
        matched_keys: set[tuple] = set()
        build_names = self.build_child.output_names
        probe_null_row = {name: None for name in self.probe_child.output_names}
        null_row = {name: None for name in build_names}
        for probe_row in self.probe_child.rows():
            key = tuple(probe_row[k] for k in self.probe_keys)
            matches = table.get(key) if not any(v is None for v in key) else None
            if matches and preserve_build:
                matched_keys.add(key)
            if self.join_type in ("inner", "right"):
                for build_row in matches or ():
                    yield {**probe_row, **build_row}
            elif self.join_type in ("left", "full"):
                if matches:
                    for build_row in matches:
                        yield {**probe_row, **build_row}
                else:
                    yield {**probe_row, **null_row}
            elif self.join_type == "semi":
                if matches:
                    yield probe_row
            elif self.join_type == "anti":
                if not matches:
                    yield probe_row
        if preserve_build:
            for key, rows in table.items():
                if key in matched_keys:
                    continue
                unmatched_build.extend(rows)
            for build_row in unmatched_build:
                yield {**probe_null_row, **build_row}


class RowHashAggregate(RowOperator):
    """Tuple-at-a-time hash aggregation sharing AggregateSpec with batch."""

    def __init__(
        self,
        child: RowOperator,
        group_keys: list[str],
        aggregates: list[AggregateSpec],
    ) -> None:
        self.child = child
        self.group_keys = list(group_keys)
        self.aggregates = list(aggregates)

    @property
    def output_names(self) -> list[str]:
        return [*self.group_keys, *(s.name for s in self.aggregates)]

    def describe(self) -> str:
        aggs = ", ".join(f"{s.func} AS {s.name}" for s in self.aggregates)
        return f"RowHashAggregate(keys={self.group_keys}, aggs=[{aggs}])"

    def child_operators(self) -> list[RowOperator]:
        return [self.child]

    def rows(self) -> Iterator[dict[str, Any]]:
        # state per group: [count_per_spec, value_per_spec]
        groups: dict[tuple, list[list[Any]]] = {}
        order: list[tuple] = []
        for row in self.child.rows():
            key = tuple(row[k] for k in self.group_keys)
            state = groups.get(key)
            if state is None:
                state = [[0] * len(self.aggregates), [None] * len(self.aggregates)]
                groups[key] = state
                order.append(key)
            counts, values = state
            for i, spec in enumerate(self.aggregates):
                if spec.func == COUNT_STAR:
                    counts[i] += 1
                    continue
                value = spec.expr.eval_row(row)
                if value is None:
                    continue
                counts[i] += 1
                if spec.func == "count":
                    continue
                current = values[i]
                if current is None:
                    values[i] = value
                elif spec.func == "min":
                    values[i] = min(current, value)
                elif spec.func == "max":
                    values[i] = max(current, value)
                else:  # sum / avg
                    values[i] = current + value
        if not groups and not self.group_keys:
            groups[()] = [[0] * len(self.aggregates), [None] * len(self.aggregates)]
            order.append(())
        for key in order:
            counts, values = groups[key]
            out = dict(zip(self.group_keys, key))
            for i, spec in enumerate(self.aggregates):
                if spec.func in (COUNT_STAR, "count"):
                    out[spec.name] = counts[i]
                elif spec.func == "avg":
                    out[spec.name] = values[i] / counts[i] if counts[i] else None
                else:
                    out[spec.name] = values[i] if counts[i] else None
            yield out


class RowWindow(RowOperator):
    """Window computation, tuple-at-a-time surface: materializes the
    child, computes every spec per partition (shared helper with batch
    mode), then re-emits rows in input order with the window columns
    appended."""

    def __init__(self, child: RowOperator, specs: list[WindowSpec]) -> None:
        if not specs:
            raise ExecutionError("window requires at least one spec")
        self.child = child
        self.specs = list(specs)

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names + [spec.name for spec in self.specs]

    def describe(self) -> str:
        inner = ", ".join(f"{s.func} AS {s.name}" for s in self.specs)
        return f"RowWindow({inner})"

    def child_operators(self) -> list[RowOperator]:
        return [self.child]

    def rows(self) -> Iterator[dict[str, Any]]:
        materialized = [dict(row) for row in self.child.rows()]
        computed = compute_window_columns(materialized, self.specs)
        for i, row in enumerate(materialized):
            for spec in self.specs:
                row[spec.name] = computed[spec.name][i]
            yield row


class RowSort(RowOperator):
    def __init__(self, child: RowOperator, keys: list[tuple[str, bool]]) -> None:
        if not keys:
            raise ExecutionError("sort requires at least one key")
        self.child = child
        self.keys = list(keys)

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def describe(self) -> str:
        return f"RowSort({self.keys})"

    def child_operators(self) -> list[RowOperator]:
        return [self.child]

    def rows(self) -> Iterator[dict[str, Any]]:
        materialized = list(self.child.rows())
        for name, descending in reversed(self.keys):
            materialized.sort(key=lambda r: _NullsLast(r[name]), reverse=descending)
        yield from materialized


class RowTop(RowOperator):
    """TOP-N / LIMIT over rows (bounded heap when ordered)."""

    def __init__(
        self,
        child: RowOperator,
        limit: int,
        keys: list[tuple[str, bool]] | None = None,
    ) -> None:
        if limit < 0:
            raise ExecutionError("LIMIT must be non-negative")
        self.child = child
        self.limit = limit
        self.keys = list(keys) if keys else []

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def describe(self) -> str:
        return f"RowTop(limit={self.limit}, keys={self.keys})"

    def child_operators(self) -> list[RowOperator]:
        return [self.child]

    def rows(self) -> Iterator[dict[str, Any]]:
        if self.limit == 0:
            return
        if not self.keys:
            for i, row in enumerate(self.child.rows()):
                if i >= self.limit:
                    return
                yield row
            return
        # Ordered TOP-N: full sort then head (simple and correct; the
        # batch engine is the performance path).
        sorter = RowSort(self.child, self.keys)
        for i, row in enumerate(sorter.rows()):
            if i >= self.limit:
                return
            yield row


# ---------------------------------------------------------------------- #
# Mode adapters (mixed-mode plans)
# ---------------------------------------------------------------------- #
class RowsToBatches(BatchOperator):
    """Adapter: wraps a row operator so batch operators can consume it."""

    def __init__(self, child: RowOperator, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        self.child = child
        self.batch_size = batch_size

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def describe(self) -> str:
        return "RowsToBatches"

    def child_operators(self) -> list:
        return [self.child]

    def batches(self) -> Iterator[Batch]:
        names = self.child.output_names
        buffer: list[dict[str, Any]] = []
        for row in self.child.rows():
            buffer.append(row)
            if len(buffer) >= self.batch_size:
                yield _rows_to_batch(names, buffer)
                buffer = []
        if buffer:
            yield _rows_to_batch(names, buffer)


class BatchesToRows(RowOperator):
    """Adapter: row operators over a batch child."""

    def __init__(self, child: BatchOperator) -> None:
        self.child = child

    @property
    def output_names(self) -> list[str]:
        return self.child.output_names

    def describe(self) -> str:
        return "BatchesToRows"

    def child_operators(self) -> list:
        return [self.child]

    def rows(self) -> Iterator[dict[str, Any]]:
        names = self.child.output_names
        for batch in self.child.batches():
            for row in batch.to_rows():
                yield dict(zip(names, row))


def _rows_to_batch(names: list[str], buffered: list[dict[str, Any]]) -> Batch:
    data = {name: [row[name] for row in buffered] for name in names}
    return Batch.from_pydict(data)
