"""Entry point: ``python -m repro [database-dir]`` starts the SQL shell."""

from .cli import main

raise SystemExit(main())
