"""The public database facade.

:class:`Database` ties everything together: DDL, DML (trickle and bulk),
querying via SQL or via logical plans, EXPLAIN, and the maintenance
operations the paper describes (tuple mover, REBUILD, archival toggles).

>>> from repro import Database, types
>>> db = Database()
>>> db.sql("CREATE TABLE t (a INT, b VARCHAR)")
>>> db.sql("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
>>> db.sql("SELECT a FROM t WHERE b = 'x'").rows
[(1,)]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..errors import CatalogError, PlanningError
from ..exec.expressions import Column, Expr
from ..exec.operators.scan import ColumnStoreScan
from ..exec.row_engine import RID_COLUMN, RowTableScan
from ..observability import ExecutionStats
from ..planner.logical import LogicalNode, LogicalScan
from ..planner.optimizer import Optimizer, PhysicalPlan
from ..planner.schema_infer import infer_output_dtypes
from ..schema import TableSchema
from ..storage.config import StoreConfig
from ..types import DataType
from .catalog import Catalog, StorageKind, Table


@dataclass
class Result:
    """A query result: column names, types and presented Python rows.

    ``stats`` is the :class:`~repro.observability.ExecutionStats` handle
    when the query ran with ``stats=True`` (per-operator runtime counters
    plus the storage-counter delta), else ``None``.
    """

    columns: list[str]
    dtypes: list[DataType]
    rows: list[tuple[Any, ...]]
    stats: ExecutionStats | None = field(default=None, compare=False)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def to_pydict(self) -> dict[str, list[Any]]:
        return {
            name: [row[i] for row in self.rows] for i, name in enumerate(self.columns)
        }

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise PlanningError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Result(columns={self.columns}, rows={len(self.rows)})"


class Database:
    """An in-process analytic database with columnstore + batch mode."""

    def __init__(self, default_config: StoreConfig | None = None) -> None:
        self.catalog = Catalog()
        self.optimizer = Optimizer(self.catalog)
        self.default_config = default_config or StoreConfig()

    # ------------------------------------------------------------------ #
    # DDL
    # ------------------------------------------------------------------ #
    def create_table(
        self,
        name: str,
        schema: TableSchema,
        storage: StorageKind | str = StorageKind.COLUMNSTORE,
        config: StoreConfig | None = None,
    ) -> Table:
        if isinstance(storage, str):
            storage = StorageKind(storage)
        return self.catalog.create_table(
            name, schema, storage, config or self.default_config
        )

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # ------------------------------------------------------------------ #
    # DML
    # ------------------------------------------------------------------ #
    def insert(self, table: str, rows: Sequence[Sequence[Any]]) -> int:
        """Trickle-insert rows (columnstores route through delta stores)."""
        return self.catalog.table(table).insert_rows(rows)

    def bulk_load(self, table: str, rows: Sequence[Sequence[Any]]) -> int:
        """Bulk-load rows (large loads compress directly into row groups)."""
        return self.catalog.table(table).bulk_load(rows)

    def delete_where(self, table: str, predicate: Expr | None) -> int:
        """DELETE ... WHERE: runs the predicate against every storage."""
        target = self.catalog.table(table)
        deleted = 0
        if target.rowstore is not None:
            rids = self._matching_rids(target, predicate)
            deleted = target.delete_by_locators(rids)
        if target.columnstore is not None:
            locators = self._matching_locators(target, predicate)
            cs_deleted = target.delete_by_locators(locators)
            if target.rowstore is None:
                deleted = cs_deleted
        return deleted

    def update_where(
        self,
        table: str,
        assignments: dict[str, Expr],
        predicate: Expr | None,
    ) -> int:
        """UPDATE ... SET ... WHERE, executed as delete + insert."""
        target = self.catalog.table(table)
        names = target.schema.names
        unknown = set(assignments) - set(names)
        if unknown:
            raise CatalogError(f"unknown columns in SET: {sorted(unknown)}")
        matched = self._matching_rows(target, predicate)
        if not matched:
            return 0

        def resolver(column: str):
            return target.schema.dtype(column)

        # Each assignment expression presents through ITS inferred type:
        # e.g. `amount * 2` was descaled by the binder and is already a
        # user-space float, while a bare column reference is physical.
        expr_dtypes: dict[str, DataType] = {}
        for name, expr in assignments.items():
            try:
                expr_dtypes[name] = expr.infer_dtype(resolver)
            except Exception:
                expr_dtypes[name] = target.schema.dtype(name)
        new_rows = []
        for row in matched:
            row_map = dict(zip(names, row))
            new_row = []
            for name in names:
                if name in assignments:
                    physical = assignments[name].eval_row(row_map)
                    new_row.append(expr_dtypes[name].present(physical))
                else:
                    new_row.append(target.schema.dtype(name).present(row_map[name]))
            new_rows.append(tuple(new_row))
        self.delete_where(table, predicate)
        target.insert_rows(new_rows)
        return len(new_rows)

    def _matching_rids(self, target: Table, predicate: Expr | None) -> list[Any]:
        assert target.rowstore is not None
        scan = RowTableScan(
            target.rowstore,
            target.schema.names,
            predicate=predicate,
            include_rids=True,
        )
        return [row[RID_COLUMN] for row in scan.rows()]

    def _matching_locators(self, target: Table, predicate: Expr | None) -> list[Any]:
        assert target.columnstore is not None
        scan = ColumnStoreScan(
            target.columnstore,
            target.schema.names,
            predicate=predicate,
            include_locators=True,
        )
        locators: list[Any] = []
        for batch in scan.batches():
            dense = batch.compact()
            if dense.locators is not None:
                locators.extend(dense.locators.tolist())
        return locators

    def _matching_rows(self, target: Table, predicate: Expr | None) -> list[tuple]:
        if target.rowstore is not None:
            scan = RowTableScan(target.rowstore, target.schema.names, predicate=predicate)
            names = target.schema.names
            return [tuple(row[n] for n in names) for row in scan.rows()]
        assert target.columnstore is not None
        scan = ColumnStoreScan(
            target.columnstore, target.schema.names, predicate=predicate
        )
        rows: list[tuple] = []
        for batch in scan.batches():
            rows.extend(batch.to_rows())
        return rows

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def scan_plan(self, table: str, columns: list[str] | None = None) -> LogicalScan:
        """A logical scan of a table (start of a hand-built plan)."""
        target = self.catalog.table(table)
        names = columns if columns is not None else target.schema.names
        return LogicalScan(
            table=target.name,
            projections={name: target.schema.column(name).name for name in names},
        )

    def compile(self, plan: LogicalNode, **options: Any) -> PhysicalPlan:
        """Optimize + build a physical plan (see Optimizer.compile)."""
        return self.optimizer.compile(plan, **options)

    def execute(self, plan: LogicalNode, stats: bool = False, **options: Any) -> Result:
        """Run a logical plan and present results as Python values.

        With ``stats=True`` the plan executes under per-operator stats
        collection and the returned :class:`Result` carries an
        :class:`~repro.observability.ExecutionStats` handle — collection
        never changes the produced rows, only observes them.
        """
        dtypes_by_name = infer_output_dtypes(plan, self.catalog)
        physical = self.optimizer.compile(plan, **options)
        dtypes = [dtypes_by_name[name] for name in physical.columns]
        execution_stats: ExecutionStats | None = None
        if stats:
            raw_rows, execution_stats = physical.run_with_stats()
        else:
            raw_rows = physical.rows()
        rows = [
            tuple(dtype.present(value) for dtype, value in zip(dtypes, row))
            for row in raw_rows
        ]
        return Result(
            columns=physical.columns, dtypes=dtypes, rows=rows, stats=execution_stats
        )

    def sql(self, text: str, **options: Any) -> Result | None:
        """Execute a SQL statement; queries return a :class:`Result`."""
        from ..sql.runner import run_statement

        return run_statement(self, text, **options)

    def explain(self, text_or_plan: str | LogicalNode, **options: Any) -> str:
        """The optimized logical + physical plan as text."""
        if isinstance(text_or_plan, str):
            from ..sql.runner import plan_query

            plan = plan_query(self, text_or_plan)
        else:
            plan = text_or_plan
        return self.optimizer.compile(plan, **options).explain()

    def explain_analyze(self, text_or_plan: str | LogicalNode, **options: Any) -> str:
        """Execute a query and render the plan with runtime operator stats."""
        if isinstance(text_or_plan, str):
            from ..sql.runner import plan_query

            plan = plan_query(self, text_or_plan)
        else:
            plan = text_or_plan
        return self.optimizer.compile(plan, **options).explain_analyze()

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str, disk=None) -> None:
        """Persist the whole database to a directory, crash-safely.

        Compressed segments are written as immutable blobs (one file per
        segment, the paper's LOB model); delta stores, delete bitmaps and
        row-store heaps are serialized row-wise; the catalog is JSON.

        Every save is a fresh checksummed snapshot committed by a single
        atomic manifest rename (:mod:`repro.storage.snapshot`): a crash
        at any point leaves either the previous save or this one — never
        a hybrid. ``disk`` is the I/O abstraction (tests inject a
        :class:`~repro.storage.diskio.FaultyDisk`).
        """
        import json
        from pathlib import Path

        from ..storage import persist
        from ..storage.diskio import DiskIO
        from ..storage.snapshot import SnapshotWriter

        writer = SnapshotWriter(disk or DiskIO(), Path(path))
        catalog_entries = []
        for name in self.catalog.table_names():
            table = self.catalog.table(name)
            entry = {
                "name": table.name,
                "schema": persist.schema_to_json(table.schema),
                "storage": table.storage_kind.value,
                "config": persist.config_to_json(table.config),
                "indexes": {
                    index_name: index.columns
                    for index_name, index in table.indexes.items()
                },
            }
            catalog_entries.append(entry)
            if table.columnstore is not None:
                persist.save_columnstore(table.columnstore, writer, table.name)
            if table.rowstore is not None:
                rows = [row for _, row in table.rowstore.scan()]
                writer.write(
                    f"{table.name}/rowstore.rows",
                    persist.serialize_rows(table.schema, rows),
                )
        writer.write(
            "catalog.json", json.dumps(catalog_entries, indent=1).encode("utf-8")
        )
        writer.commit()

    @classmethod
    def load(cls, path: str, disk=None) -> "Database":
        """Reopen a database saved with :meth:`save`.

        Locates the newest complete manifest, verifies every file's size
        and CRC-32C before deserializing a byte, garbage-collects files
        left behind by interrupted saves, and raises structured
        :class:`~repro.errors.CorruptBlobError` /
        :class:`~repro.errors.RecoveryError` naming the offending path
        on any corruption. Pre-manifest directories load unverified.
        """
        import json
        from pathlib import Path

        from ..errors import RecoveryError
        from ..storage import persist
        from ..storage.diskio import DiskIO
        from ..storage.snapshot import open_database_reader

        reader = open_database_reader(disk or DiskIO(), Path(path))
        try:
            catalog_entries = json.loads(reader.read("catalog.json").decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RecoveryError(f"unreadable catalog.json: {exc}") from exc
        db = cls()
        for entry in catalog_entries:
            table_schema = persist.schema_from_json(entry["schema"])
            config = persist.config_from_json(entry["config"])
            table = db.create_table(
                entry["name"], table_schema, storage=entry["storage"], config=config
            )
            if table.columnstore is not None:
                table.columnstore = persist.load_columnstore(
                    table_schema, config, reader, table.name
                )
            if table.rowstore is not None:
                rows = persist.deserialize_rows(
                    table_schema, reader.read(f"{table.name}/rowstore.rows")
                )
                table.rowstore.insert_many(rows)
            for index_name, columns in entry["indexes"].items():
                table.create_index(index_name, columns)
        return db

    @staticmethod
    def check(path: str, disk=None):
        """Integrity-scan a saved database without opening it.

        Returns an :class:`~repro.storage.snapshot.IntegrityReport` with
        a per-file verdict (``ok`` / ``missing`` / ``size-mismatch`` /
        ``checksum-mismatch`` / ``undecodable``). Never raises on
        corruption — corruption is the result being reported. Exposed on
        the CLI as ``repro check <dir>`` and the shell's ``\\check``.
        """
        from pathlib import Path

        from ..storage.diskio import DiskIO
        from ..storage.snapshot import check_database

        return check_database(disk or DiskIO(), Path(path))

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def run_tuple_mover(self, table: str, include_open: bool = False):
        return self.catalog.table(table).run_tuple_mover(include_open)

    def rebuild(self, table: str) -> None:
        self.catalog.table(table).rebuild_columnstore()

    def set_archival(self, table: str, enabled: bool) -> None:
        self.catalog.table(table).set_archival(enabled)
